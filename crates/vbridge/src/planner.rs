//! Cost-based walk planning for plan-mode extraction.
//!
//! The ViewCL side lowers a pane program into a walk-plan IR
//! (`viewcl::plan`); this module owns the pieces that belong to the
//! bridge: which execution mode a session runs in ([`ExecMode`]), how a
//! plan is scheduled against a given backend ([`PlanMode`]), and the
//! latency-profile-driven span merging that replaces the distillers'
//! ad-hoc `Target::prefetch` hints ([`SpanPlanner`]).
//!
//! The cost model is the same one Table 4 is built on: a wire packet
//! costs `base_ns + len * per_byte_ns`. Two byte ranges are worth
//! fetching as one span exactly when the gap between them is cheaper to
//! ship than a second round trip, i.e. when
//! `gap_bytes * per_byte_ns < base_ns`. On a high-latency KGDB link
//! (`base_ns` = 4.9 ms) that threshold is ~408 bytes; on the QEMU gdb
//! stub (~85 us) it is ~2.8 KiB; on the free profile merging is
//! unconstrained and only the span cap applies.

use crate::profile::LatencyProfile;

/// How a session turns ViewCL source into a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The classic recursive interpreter walk (default).
    Interp,
    /// Plan-mode: compile a walk-plan, warm the cache with scheduled
    /// spans, then run the same interpreter over the warm cache.
    Plan,
}

impl ExecMode {
    /// Stable wire name, used in `.vrec` capture meta.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecMode::Interp => "interp",
            ExecMode::Plan => "plan",
        }
    }

    /// Parse a wire name back; `None` for unknown strings.
    pub fn from_str_opt(s: &str) -> Option<ExecMode> {
        match s {
            "interp" => Some(ExecMode::Interp),
            "plan" => Some(ExecMode::Plan),
            _ => None,
        }
    }
}

/// How the plan executor schedules walks against the active backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Discovery walks run concurrently over a `Sync` view of the
    /// backend (overlapped round trips); all metered traffic — root
    /// resolution and the scheduled span fetches — stays sequential in
    /// deterministic node order. SimBackend only.
    Parallel,
    /// Discovery reads go through the metered target one at a time in
    /// node order, so the wire sequence is fully deterministic and
    /// `.vrec` captures replay exactly. Used for Record/Replay.
    Serialized,
    /// No cache to warm: plan execution degrades to the plain
    /// interpreter walk (graphs and stats identical to interp mode).
    Disabled,
}

impl PlanMode {
    /// Pick the scheduling mode for a target: parallel needs both a
    /// block cache to warm and a `Sync`-capable backend; a cache alone
    /// gets the serializing mode; no cache disables planning.
    pub fn choose(cache_enabled: bool, has_sync_view: bool) -> PlanMode {
        if !cache_enabled {
            PlanMode::Disabled
        } else if has_sync_view {
            PlanMode::Parallel
        } else {
            PlanMode::Serialized
        }
    }

    /// Short display name (`parallel` / `serialized` / `off`).
    pub fn as_str(self) -> &'static str {
        match self {
            PlanMode::Parallel => "parallel",
            PlanMode::Serialized => "serialized",
            PlanMode::Disabled => "off",
        }
    }
}

/// Merges the byte ranges a plan node will touch into wire spans, gap
/// threshold chosen from the active [`LatencyProfile`].
#[derive(Debug, Clone, Copy)]
pub struct SpanPlanner {
    /// Merge two ranges when the gap between them is at most this many
    /// bytes (`base_ns / per_byte_ns`).
    pub gap_threshold: u64,
    /// Never grow a merged span beyond this many bytes.
    pub span_cap: u64,
}

/// Matches `Target`'s `MAX_PREFETCH`: one scheduled span never pulls
/// more than a page worth of blocks.
const DEFAULT_SPAN_CAP: u64 = 4096;

impl SpanPlanner {
    /// Derive the merge threshold from a latency profile. A free wire
    /// (`per_byte_ns == 0`) merges without a gap limit — fewer packets
    /// always wins when bytes are free.
    pub fn for_profile(profile: &LatencyProfile) -> SpanPlanner {
        let gap_threshold = profile
            .base_ns
            .checked_div(profile.per_byte_ns)
            .unwrap_or(u64::MAX);
        SpanPlanner {
            gap_threshold,
            span_cap: DEFAULT_SPAN_CAP,
        }
    }

    /// Merge `(addr, len)` ranges into fetch spans: sort, drop empties,
    /// then fold neighbours whose gap is within the threshold as long
    /// as the merged span stays under the cap. Deterministic for a
    /// given input set regardless of input order.
    pub fn merge(&self, mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        ranges.retain(|&(_, len)| len > 0);
        ranges.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::new();
        for (addr, len) in ranges {
            let end = addr.saturating_add(len);
            if let Some(last) = out.last_mut() {
                let last_end = last.0.saturating_add(last.1);
                let merged_len = end.saturating_sub(last.0);
                if addr <= last_end.saturating_add(self.gap_threshold)
                    && merged_len <= self.span_cap
                {
                    if merged_len > last.1 {
                        last.1 = merged_len;
                    }
                    continue;
                }
            }
            out.push((addr, len));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_mode_round_trips_through_wire_names() {
        for mode in [ExecMode::Interp, ExecMode::Plan] {
            assert_eq!(ExecMode::from_str_opt(mode.as_str()), Some(mode));
        }
        assert_eq!(ExecMode::from_str_opt("warp"), None);
    }

    #[test]
    fn plan_mode_selection_matches_backend_capabilities() {
        assert_eq!(PlanMode::choose(false, true), PlanMode::Disabled);
        assert_eq!(PlanMode::choose(false, false), PlanMode::Disabled);
        assert_eq!(PlanMode::choose(true, true), PlanMode::Parallel);
        assert_eq!(PlanMode::choose(true, false), PlanMode::Serialized);
    }

    #[test]
    fn kgdb_threshold_merges_near_ranges_only() {
        // kgdb_rpi400: 4_900_000 / 12_000 = 408 bytes.
        let p = SpanPlanner::for_profile(&LatencyProfile::kgdb_rpi400());
        assert_eq!(p.gap_threshold, 408);
        let spans = p.merge(vec![(0x1000, 8), (0x1100, 8), (0x2000, 8)]);
        // 0x1000..0x1108 merge (gap 248 <= 408); 0x2000 is its own span.
        assert_eq!(spans, vec![(0x1000, 0x108), (0x2000, 8)]);
    }

    #[test]
    fn free_profile_merges_up_to_the_cap() {
        let p = SpanPlanner::for_profile(&LatencyProfile::free());
        assert_eq!(p.gap_threshold, u64::MAX);
        let spans = p.merge(vec![(0, 8), (100_000, 8)]);
        // 100 KB apart but the merged span would exceed the 4 KiB cap.
        assert_eq!(spans.len(), 2);
        let spans = p.merge(vec![(0, 8), (2048, 8)]);
        assert_eq!(spans, vec![(0, 2056)]);
    }

    #[test]
    fn merge_is_order_insensitive_and_dedups_overlaps() {
        let p = SpanPlanner {
            gap_threshold: 0,
            span_cap: 4096,
        };
        let a = p.merge(vec![(0x10, 16), (0x20, 16), (0x18, 8)]);
        let b = p.merge(vec![(0x18, 8), (0x10, 16), (0x20, 16)]);
        assert_eq!(a, b);
        assert_eq!(a, vec![(0x10, 0x20)]);
    }
}
