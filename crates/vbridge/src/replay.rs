//! Deterministic replay of a `.vrec` wire capture.
//!
//! A [`ReplayBackend`] serves the recorded tape strictly in order: every
//! wire operation the metering layer issues must match the next event in
//! the capture, and gets back exactly the recorded result — bytes or
//! fault. Because the layers above the backend (metering, cache,
//! coalescing, distillation) are deterministic, an identical session
//! issues an identical operation sequence, and replay reproduces graphs
//! and [`TargetStats`](crate::TargetStats) bit-for-bit with *zero* image
//! access.
//!
//! Any divergence — an operation the capture does not contain next, or a
//! read past the end of a truncated capture — is a loud
//! [`BackendError::Capture`] diagnostic naming the event position, what
//! was asked, and what the capture holds. Divergence also *poisons* the
//! state: later operations keep failing with the original diagnostic
//! rather than resyncing onto wrong data.

use std::cell::{Cell, RefCell};

use kmem::MemError;

use crate::backend::{BackendError, BackendKind, TargetBackend};
use crate::profile::LatencyProfile;
use crate::record::{Capture, WireEvent};

/// Replay cursor over a capture. Owned by the session (it outlives each
/// per-extraction [`ReplayBackend`]) so the position and poison survive
/// across extractions and resume boundaries.
#[derive(Debug)]
pub struct ReplayState {
    capture: Capture,
    pos: Cell<usize>,
    poison: RefCell<Option<String>>,
    mode_note: RefCell<Option<String>>,
}

impl ReplayState {
    /// Start replaying `capture` from the first event.
    pub fn new(capture: Capture) -> Self {
        ReplayState {
            capture,
            pos: Cell::new(0),
            poison: RefCell::new(None),
            mode_note: RefCell::new(None),
        }
    }

    /// Note that the replaying session runs a different execution mode
    /// (interp vs plan) than the one recorded in the capture header.
    /// The modes issue wire operations in different orders, so any
    /// divergence or exhaustion diagnostic will name the mismatch as
    /// the likely cause.
    pub fn note_mode_mismatch(&self, session_mode: &str, capture_mode: &str) {
        *self.mode_note.borrow_mut() = Some(format!(
            "execution-mode mismatch: session runs {session_mode}-mode \
             but the capture was recorded under {capture_mode}-mode"
        ));
    }

    /// The capture being replayed.
    pub fn capture(&self) -> &Capture {
        &self.capture
    }

    /// Events consumed so far.
    pub fn position(&self) -> usize {
        self.pos.get()
    }

    /// Events remaining on the tape.
    pub fn remaining(&self) -> usize {
        self.capture.events.len() - self.pos.get()
    }

    /// The sticky divergence diagnostic, if replay has failed.
    pub fn poisoned(&self) -> Option<String> {
        self.poison.borrow().clone()
    }

    fn fail(&self, mut msg: String) -> BackendError {
        if let Some(note) = self.mode_note.borrow().as_ref() {
            msg.push_str(" (");
            msg.push_str(note);
            msg.push(')');
        }
        let mut poison = self.poison.borrow_mut();
        if poison.is_none() {
            *poison = Some(msg.clone());
        }
        BackendError::Capture(msg)
    }

    /// Pull the next event, requiring it to satisfy `matches` (described
    /// by `want` on divergence). The cursor only advances on a match.
    fn next_matching(
        &self,
        want: &str,
        matches: impl FnOnce(&WireEvent) -> bool,
    ) -> Result<&WireEvent, BackendError> {
        if let Some(msg) = self.poison.borrow().as_ref() {
            return Err(BackendError::Capture(msg.clone()));
        }
        let i = self.pos.get();
        match self.capture.events.get(i) {
            None => Err(self.fail(format!(
                "capture exhausted at event {i}: replay issued {want} but the \
                 capture has no more events (truncated or divergent session?)"
            ))),
            Some(ev) if matches(ev) => {
                self.pos.set(i + 1);
                Ok(ev)
            }
            Some(ev) => Err(self.fail(format!(
                "replay divergence at event {i}: session issued {want} but the \
                 capture recorded {}",
                ev.describe()
            ))),
        }
    }

    /// Consume a resume boundary (called by the session when the replayed
    /// kernel "resumes"). A mismatch poisons the state so the next read
    /// reports the divergence.
    pub fn consume_resume(&self) -> Result<(), BackendError> {
        self.next_matching("resume", |ev| matches!(ev, WireEvent::Resume))
            .map(|_| ())
    }

    /// Consume the dirty set recorded at the upcoming resume boundary,
    /// if the capture holds one. Unlike the strict read path this
    /// *peeks*: captures recorded before dirty tracking existed (or by
    /// non-incremental sessions) simply have no `Dirty` event before the
    /// `Resume` marker, and the session then degrades to a full re-walk
    /// — the same thing the recording session did.
    pub fn consume_dirty(&self) -> crate::backend::DirtyInfo {
        use crate::backend::{DirtyInfo, DirtySet};
        if self.poison.borrow().is_some() {
            return DirtyInfo::Unknown;
        }
        let i = self.pos.get();
        match self.capture.events.get(i) {
            Some(WireEvent::Dirty { ranges }) => {
                self.pos.set(i + 1);
                DirtyInfo::Known(DirtySet::from_ranges(ranges.iter().copied()))
            }
            _ => DirtyInfo::Unknown,
        }
    }

    /// Advance the cursor over `n` events without serving them — used
    /// when an identical sibling session already walked this span and
    /// published both the result and the span bounds, so re-reading the
    /// tape would only reproduce bytes the caller already holds. Fails
    /// (without advancing) if the state is poisoned or the tape is too
    /// short.
    pub fn skip_events(&self, n: usize) -> Result<(), BackendError> {
        if let Some(msg) = self.poison.borrow().as_ref() {
            return Err(BackendError::Capture(msg.clone()));
        }
        let i = self.pos.get();
        if i + n > self.capture.events.len() {
            return Err(self.fail(format!(
                "cannot skip {n} events at position {i}: the capture holds \
                 only {} (truncated or divergent span bounds?)",
                self.capture.events.len()
            )));
        }
        self.pos.set(i + n);
        Ok(())
    }
}

/// A backend serving a recorded capture in strict order.
pub struct ReplayBackend<'a> {
    state: &'a ReplayState,
}

impl<'a> ReplayBackend<'a> {
    /// Serve from `state`'s cursor.
    pub fn new(state: &'a ReplayState) -> Self {
        ReplayBackend { state }
    }
}

impl TargetBackend for ReplayBackend<'_> {
    fn kind(&self) -> BackendKind {
        BackendKind::Replay
    }

    fn describe(&self) -> String {
        format!(
            "replay of {} capture ({} events, {} consumed)",
            self.state.capture.origin,
            self.state.capture.events.len(),
            self.state.pos.get()
        )
    }

    fn read(&self, addr: u64, out: &mut [u8]) -> Result<(), BackendError> {
        let want = format!("read addr={addr:#x} len={}", out.len());
        let ev = self.state.next_matching(&want, |ev| {
            matches!(ev, WireEvent::Read { addr: a, len, .. }
                     if *a == addr && *len == out.len() as u64)
        })?;
        match ev {
            WireEvent::Read {
                result: Ok(data), ..
            } => {
                out.copy_from_slice(data);
                Ok(())
            }
            WireEvent::Read {
                result: Err(fault), ..
            } => Err(BackendError::Mem(MemError::Unmapped { addr: *fault })),
            _ => unreachable!("next_matching returned a non-read event"),
        }
    }

    fn probe(&self, addr: u64) -> Result<bool, BackendError> {
        let want = format!("probe addr={addr:#x}");
        let ev = self.state.next_matching(
            &want,
            |ev| matches!(ev, WireEvent::Probe { addr: a, .. } if *a == addr),
        )?;
        match ev {
            WireEvent::Probe { mapped, .. } => Ok(*mapped),
            _ => unreachable!("next_matching returned a non-probe event"),
        }
    }

    fn read_cstr(&self, addr: u64, max: usize) -> Result<String, BackendError> {
        let want = format!("cstr addr={addr:#x} max={max}");
        let ev = self.state.next_matching(&want, |ev| {
            matches!(ev, WireEvent::Cstr { addr: a, max: m, .. }
                     if *a == addr && *m == max as u64)
        })?;
        match ev {
            WireEvent::Cstr { result: Ok(s), .. } => Ok(s.clone()),
            WireEvent::Cstr {
                result: Err(fault), ..
            } => Err(BackendError::Mem(MemError::Unmapped { addr: *fault })),
            _ => unreachable!("next_matching returned a non-cstr event"),
        }
    }

    fn resume_dirty(&self, _observed: crate::backend::DirtyInfo) -> crate::backend::DirtyInfo {
        // Replay has no live image to observe; the tape is the truth.
        self.state.consume_dirty()
    }

    fn native_profile(&self) -> Option<LatencyProfile> {
        Some(self.state.capture.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::VREC_VERSION;
    use serde_json::Value;

    fn tape(events: Vec<WireEvent>) -> ReplayState {
        ReplayState::new(Capture {
            version: VREC_VERSION,
            origin: BackendKind::Sim,
            profile: LatencyProfile::free(),
            cache: None,
            meta: Value::Null,
            events,
        })
    }

    #[test]
    fn replay_serves_recorded_results_in_order() {
        let st = tape(vec![
            WireEvent::Read {
                addr: 0x1000,
                len: 4,
                result: Ok(vec![1, 2, 3, 4]),
            },
            WireEvent::Probe {
                addr: 0x1000,
                mapped: true,
            },
            WireEvent::Cstr {
                addr: 0x2000,
                max: 8,
                result: Ok("ok".into()),
            },
            WireEvent::Resume,
            WireEvent::Read {
                addr: 0x3000,
                len: 2,
                result: Err(0x3000),
            },
        ]);
        let b = ReplayBackend::new(&st);
        let mut buf = [0u8; 4];
        b.read(0x1000, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        assert!(b.probe(0x1000).unwrap());
        assert_eq!(b.read_cstr(0x2000, 8).unwrap(), "ok");
        st.consume_resume().unwrap();
        let mut buf2 = [0u8; 2];
        assert!(matches!(
            b.read(0x3000, &mut buf2),
            Err(BackendError::Mem(MemError::Unmapped { addr: 0x3000 }))
        ));
        assert_eq!(st.remaining(), 0);
        assert!(st.poisoned().is_none());
    }

    #[test]
    fn divergent_read_errors_loudly_and_poisons() {
        let st = tape(vec![WireEvent::Read {
            addr: 0x1000,
            len: 4,
            result: Ok(vec![0; 4]),
        }]);
        let b = ReplayBackend::new(&st);
        let mut buf = [0u8; 8];
        let err = b.read(0x9999, &mut buf).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("divergence at event 0"), "{msg}");
        assert!(msg.contains("0x9999"), "{msg}");
        assert!(msg.contains("0x1000"), "{msg}");
        // Poisoned: even the originally-recorded operation now fails.
        let mut ok_buf = [0u8; 4];
        let err2 = b.read(0x1000, &mut ok_buf).unwrap_err();
        assert_eq!(format!("{err2}"), msg);
        assert!(st.poisoned().is_some());
    }

    #[test]
    fn exhausted_capture_diagnoses_truncation() {
        let st = tape(vec![]);
        let b = ReplayBackend::new(&st);
        let err = b.read_cstr(0x4000, 16).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("exhausted at event 0"), "{msg}");
        assert!(msg.contains("truncated"), "{msg}");
    }

    #[test]
    fn mode_mismatch_is_named_in_divergence_diagnostics() {
        let st = tape(vec![WireEvent::Read {
            addr: 0x1000,
            len: 4,
            result: Ok(vec![0; 4]),
        }]);
        st.note_mode_mismatch("plan", "interp");
        let b = ReplayBackend::new(&st);
        let mut buf = [0u8; 8];
        let err = b.read(0x9999, &mut buf).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("divergence at event 0"), "{msg}");
        assert!(msg.contains("execution-mode mismatch"), "{msg}");
        assert!(msg.contains("plan-mode"), "{msg}");
        assert!(msg.contains("recorded under interp-mode"), "{msg}");
    }

    #[test]
    fn consume_dirty_peeks_and_tolerates_dirty_free_captures() {
        use crate::backend::{DirtyInfo, DirtySet};
        // A capture with a taped dirty set before the resume marker.
        let st = tape(vec![
            WireEvent::Dirty {
                ranges: vec![(0x2000, 8), (0x1000, 4)],
            },
            WireEvent::Resume,
        ]);
        let b = ReplayBackend::new(&st);
        assert_eq!(
            b.resume_dirty(DirtyInfo::Unknown),
            DirtyInfo::Known(DirtySet::from_ranges(vec![(0x1000, 4), (0x2000, 8)]))
        );
        st.consume_resume().unwrap();
        assert_eq!(st.remaining(), 0);

        // A pre-dirty capture: the peek finds the resume marker instead,
        // reports Unknown, and does NOT advance the cursor.
        let st = tape(vec![WireEvent::Resume]);
        assert_eq!(st.consume_dirty(), DirtyInfo::Unknown);
        assert_eq!(st.position(), 0);
        st.consume_resume().unwrap();
    }

    #[test]
    fn resume_mismatch_poisons_later_reads() {
        let st = tape(vec![WireEvent::Probe {
            addr: 0x1,
            mapped: false,
        }]);
        assert!(st.consume_resume().is_err());
        let b = ReplayBackend::new(&st);
        assert!(matches!(b.probe(0x1), Err(BackendError::Capture(_))));
    }

    #[test]
    fn native_profile_comes_from_the_capture_header() {
        let st = tape(vec![]);
        let b = ReplayBackend::new(&st);
        assert_eq!(b.native_profile(), Some(LatencyProfile::free()));
        assert_eq!(b.kind(), BackendKind::Replay);
        assert!(b.describe().contains("replay of sim capture"));
    }
}
