//! Snapshot block cache for the debugger bridge.
//!
//! A stopped kernel is a snapshot: until the target resumes, every byte the
//! debugger fetched stays valid. The bridge exploits that by caching target
//! memory in aligned blocks — a read that misses fetches the *whole* block
//! as one metered packet, and every later read inside the block is free.
//! This is the optimization real debugger front-ends (and the paper's GDB
//! bridge) lean on to survive slow transports like KGDB-over-serial, where
//! each round-trip costs milliseconds.
//!
//! Consistency is epoch-based: [`BlockCache::bump_epoch`] (called by
//! `core::Session` when the simulated kernel resumes) invalidates every
//! block, because resumed execution may have rewritten any of them.
//!
//! Blocks are powers of two no larger than the 4 KiB page, so a block never
//! spans a page boundary. Since the memory image maps whole pages, a block
//! is either fully mapped or fully unmapped — which is what lets the cached
//! read path fault at exactly the same address an uncached read would.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Block cache tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Block size in bytes: a power of two in `[8, 4096]`.
    pub block_size: u64,
    /// Capacity in blocks; the oldest block is evicted beyond this (FIFO).
    pub max_blocks: usize,
    /// Merge batched reads (`Target::read_many`) into minimal wire spans.
    /// Off, each request pays its own packet (ablation knob).
    pub coalesce: bool,
    /// Honor `Target::prefetch` hints. Off, hints are ignored
    /// (ablation knob).
    pub prefetch: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            block_size: 256,
            max_blocks: 4096,
            coalesce: true,
            prefetch: true,
        }
    }
}

impl CacheConfig {
    /// Default configuration with a different block size.
    pub fn with_block_size(block_size: u64) -> Self {
        CacheConfig {
            block_size,
            ..CacheConfig::default()
        }
    }

    fn validate(&self) {
        assert!(
            self.block_size.is_power_of_two() && (8..=4096).contains(&self.block_size),
            "cache block size must be a power of two in [8, 4096], got {}",
            self.block_size
        );
        assert!(self.max_blocks >= 1, "cache needs at least one block");
    }
}

/// `SessionBuilder::cache(16)` sugar: a bare number is a block size.
impl From<u64> for CacheConfig {
    fn from(block_size: u64) -> Self {
        CacheConfig::with_block_size(block_size)
    }
}

/// The shared snapshot cache. One per attached session; `Target`s borrow
/// it so cached blocks survive across extractions while the kernel stays
/// stopped. Interior-mutable for the same reason `Target`'s meters are:
/// reading a stopped target does not change it.
#[derive(Debug)]
pub struct BlockCache {
    cfg: CacheConfig,
    blocks: RefCell<HashMap<u64, Box<[u8]>>>,
    order: RefCell<VecDeque<u64>>,
    epoch: Cell<u64>,
}

impl Default for BlockCache {
    fn default() -> Self {
        BlockCache::new(CacheConfig::default())
    }
}

impl BlockCache {
    /// Create an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        BlockCache {
            cfg,
            blocks: RefCell::new(HashMap::new()),
            order: RefCell::new(VecDeque::new()),
            epoch: Cell::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.cfg.block_size
    }

    /// The base address of the block containing `addr`.
    pub fn base_of(&self, addr: u64) -> u64 {
        addr & !(self.cfg.block_size - 1)
    }

    /// Current snapshot epoch (bumped on every resume).
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Invalidate everything: the target resumed, so any cached byte may
    /// be stale.
    pub fn bump_epoch(&self) {
        self.epoch.set(self.epoch.get() + 1);
        self.blocks.borrow_mut().clear();
        self.order.borrow_mut().clear();
    }

    /// Selective invalidation: the target resumed, but the backend knows
    /// exactly which byte ranges it mutated. Drops only the resident
    /// blocks intersecting a dirty span and advances the epoch; every
    /// clean block keeps serving reads for free across the resume —
    /// which is what makes an incremental re-walk cost packets
    /// proportional to the mutation instead of the view. Returns the
    /// number of blocks dropped.
    pub fn invalidate_spans(&self, spans: &[(u64, u64)]) -> usize {
        self.epoch.set(self.epoch.get() + 1);
        let bs = self.cfg.block_size;
        let mut blocks = self.blocks.borrow_mut();
        let before = blocks.len();
        blocks.retain(|&base, _| {
            !spans.iter().any(|&(addr, len)| {
                len > 0 && addr < base.saturating_add(bs) && addr.saturating_add(len) > base
            })
        });
        self.order
            .borrow_mut()
            .retain(|base| blocks.contains_key(base));
        before - blocks.len()
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.blocks.borrow().len()
    }

    /// Whether no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.blocks.borrow().is_empty()
    }

    /// Whether the block at `base` is resident.
    pub fn contains(&self, base: u64) -> bool {
        self.blocks.borrow().contains_key(&base)
    }

    /// Insert a fetched block, evicting the oldest beyond capacity.
    pub(crate) fn insert(&self, base: u64, data: Box<[u8]>) {
        debug_assert_eq!(base, self.base_of(base));
        debug_assert_eq!(data.len() as u64, self.cfg.block_size);
        let mut blocks = self.blocks.borrow_mut();
        let mut order = self.order.borrow_mut();
        if blocks.insert(base, data).is_none() {
            order.push_back(base);
            while blocks.len() > self.cfg.max_blocks {
                if let Some(old) = order.pop_front() {
                    blocks.remove(&old);
                }
            }
        }
    }

    /// Copy `dst.len()` bytes out of the resident block at `base`,
    /// starting `off` bytes in. Panics if the block is absent or the
    /// range leaves the block — callers establish residency first.
    pub(crate) fn copy_from(&self, base: u64, off: usize, dst: &mut [u8]) {
        let blocks = self.blocks.borrow();
        let block = blocks
            .get(&base)
            .expect("copy_from requires a resident block");
        dst.copy_from_slice(&block[off..off + dst.len()]);
    }

    /// Export the resident blocks as a `Send + Sync` [`CacheSnapshot`]
    /// that another session's cache can adopt with
    /// [`BlockCache::warm_from`]. The snapshot shares the block payloads
    /// (`Arc`), so taking one is cheap relative to re-fetching the spans
    /// over the wire.
    pub fn snapshot(&self) -> CacheSnapshot {
        let blocks = self.blocks.borrow();
        CacheSnapshot {
            block_size: self.cfg.block_size,
            blocks: blocks
                .iter()
                .map(|(base, data)| (*base, Arc::from(&data[..])))
                .collect(),
        }
    }

    /// Adopt every snapshot block not already resident, as if the spans
    /// had been fetched over the wire for free. Returns the number of
    /// blocks adopted; a block-size mismatch adopts nothing (the span
    /// geometry would not line up).
    ///
    /// Only sound while both caches describe the *same stopped machine
    /// state*: the caller (e.g. the fleet's share groups) must key
    /// snapshots by stop generation. Never warm a replay session — its
    /// tape must observe every fetch in recorded order.
    pub fn warm_from(&self, snap: &CacheSnapshot) -> usize {
        if snap.block_size != self.cfg.block_size {
            return 0;
        }
        let mut adopted = 0;
        for (base, data) in &snap.blocks {
            if !self.contains(*base) {
                self.insert(*base, data[..].into());
                adopted += 1;
            }
        }
        adopted
    }
}

/// A thread-safe view of a cache's resident blocks at one stop
/// generation — the unit of cross-session span sharing (`vfleet`). Plain
/// shared data: safe to pass between engine threads.
#[derive(Debug, Clone)]
pub struct CacheSnapshot {
    block_size: u64,
    blocks: Vec<(u64, Arc<[u8]>)>,
}

impl CacheSnapshot {
    /// Block size the blocks were fetched under.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Number of blocks captured.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the snapshot holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_and_alignment() {
        let c = BlockCache::new(CacheConfig::default());
        assert_eq!(c.base_of(0x1234), 0x1200);
        assert!(!c.contains(0x1200));
        c.insert(0x1200, vec![7u8; 256].into_boxed_slice());
        assert!(c.contains(0x1200));
        let mut out = [0u8; 4];
        c.copy_from(0x1200, 0x34, &mut out);
        assert_eq!(out, [7; 4]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn bump_epoch_invalidates() {
        let c = BlockCache::new(CacheConfig::default());
        c.insert(0, vec![0u8; 256].into_boxed_slice());
        assert_eq!((c.epoch(), c.len()), (0, 1));
        c.bump_epoch();
        assert_eq!((c.epoch(), c.len()), (1, 0));
        assert!(!c.contains(0));
    }

    #[test]
    fn invalidate_spans_drops_only_intersecting_blocks() {
        let c = BlockCache::new(CacheConfig::default());
        for base in [0x000u64, 0x100, 0x200, 0x300] {
            c.insert(base, vec![base as u8; 256].into_boxed_slice());
        }
        // A span straddling the 0x100/0x200 boundary kills both blocks;
        // 0x000 and 0x300 survive the resume.
        assert_eq!(c.invalidate_spans(&[(0x1f8, 16)]), 2);
        assert_eq!(c.epoch(), 1, "selective invalidation is still a resume");
        assert!(c.contains(0x000) && c.contains(0x300));
        assert!(!c.contains(0x100) && !c.contains(0x200));
        // Empty spans touch nothing; eviction order stays consistent.
        assert_eq!(c.invalidate_spans(&[(0x80, 0)]), 0);
        assert_eq!(c.len(), 2);
        c.insert(0x400, vec![1u8; 256].into_boxed_slice());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn fifo_eviction_beyond_capacity() {
        let c = BlockCache::new(CacheConfig {
            block_size: 256,
            max_blocks: 2,
            ..CacheConfig::default()
        });
        for i in 0..3u64 {
            c.insert(i * 256, vec![0u8; 256].into_boxed_slice());
        }
        assert_eq!(c.len(), 2);
        assert!(!c.contains(0), "oldest block evicted first");
        assert!(c.contains(256) && c.contains(512));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_block_size() {
        BlockCache::new(CacheConfig::with_block_size(100));
    }

    #[test]
    fn snapshot_warms_a_sibling_cache() {
        let a = BlockCache::new(CacheConfig::default());
        a.insert(0x100, vec![3u8; 256].into_boxed_slice());
        a.insert(0x200, vec![4u8; 256].into_boxed_slice());
        let snap = a.snapshot();
        assert_eq!((snap.block_size(), snap.len()), (256, 2));

        let b = BlockCache::new(CacheConfig::default());
        b.insert(0x100, vec![9u8; 256].into_boxed_slice());
        assert_eq!(b.warm_from(&snap), 1, "only the absent block is adopted");
        let mut out = [0u8; 2];
        b.copy_from(0x100, 0, &mut out);
        assert_eq!(out, [9; 2], "resident blocks are never overwritten");
        b.copy_from(0x200, 0, &mut out);
        assert_eq!(out, [4; 2]);

        let c = BlockCache::new(CacheConfig::with_block_size(64));
        assert_eq!(c.warm_from(&snap), 0, "block-size mismatch adopts nothing");
    }
}
