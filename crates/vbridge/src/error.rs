//! Bridge error type.

use crate::backend::BackendError;

/// Stable classification of a [`BridgeError`].
///
/// `kind()` gives callers a match-friendly tag that stays stable even as
/// variants grow payload fields; dashboards and tests should branch on
/// this rather than on `Display` text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// A target memory access failed.
    Mem,
    /// A type-system operation failed.
    Type,
    /// A C expression failed to parse.
    Parse,
    /// A C expression parsed but could not be evaluated.
    Eval,
    /// An identifier did not resolve.
    UnknownIdent,
    /// A called function is not a registered helper.
    UnknownHelper,
    /// The wire backend itself failed (e.g. replay divergence).
    Capture,
}

impl ErrorKind {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Mem => "mem",
            ErrorKind::Type => "type",
            ErrorKind::Parse => "parse",
            ErrorKind::Eval => "eval",
            ErrorKind::UnknownIdent => "unknown-ident",
            ErrorKind::UnknownHelper => "unknown-helper",
            ErrorKind::Capture => "capture",
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors surfaced while debugging the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BridgeError {
    /// A target memory access failed (e.g. a dangling pointer).
    Mem(kmem::MemError),
    /// A type-system operation failed.
    Type(ktypes::TypeError),
    /// A C expression failed to parse.
    Parse {
        /// The offending expression text.
        expr: String,
        /// What went wrong.
        msg: String,
    },
    /// A C expression parsed but could not be evaluated.
    Eval(String),
    /// An identifier did not resolve to a symbol, constant or binding.
    UnknownIdent(String),
    /// A called function is not a registered helper.
    UnknownHelper(String),
    /// The wire backend failed: a replay read diverged from or ran past
    /// its capture. Distinct from [`BridgeError::Mem`] — the *target*
    /// did not fault, the tooling did.
    Capture(String),
}

impl BridgeError {
    /// The stable [`ErrorKind`] of this error.
    pub fn kind(&self) -> ErrorKind {
        match self {
            BridgeError::Mem(_) => ErrorKind::Mem,
            BridgeError::Type(_) => ErrorKind::Type,
            BridgeError::Parse { .. } => ErrorKind::Parse,
            BridgeError::Eval(_) => ErrorKind::Eval,
            BridgeError::UnknownIdent(_) => ErrorKind::UnknownIdent,
            BridgeError::UnknownHelper(_) => ErrorKind::UnknownHelper,
            BridgeError::Capture(_) => ErrorKind::Capture,
        }
    }
}

impl std::fmt::Display for BridgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BridgeError::Mem(e) => write!(f, "target memory error: {e}"),
            BridgeError::Type(e) => write!(f, "type error: {e}"),
            BridgeError::Parse { expr, msg } => write!(f, "parse error in `{expr}`: {msg}"),
            BridgeError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            BridgeError::UnknownIdent(n) => write!(f, "unknown identifier `{n}`"),
            BridgeError::UnknownHelper(n) => write!(f, "unknown helper function `{n}`"),
            BridgeError::Capture(msg) => write!(f, "capture error: {msg}"),
        }
    }
}

impl std::error::Error for BridgeError {}

impl From<kmem::MemError> for BridgeError {
    fn from(e: kmem::MemError) -> Self {
        BridgeError::Mem(e)
    }
}

impl From<ktypes::TypeError> for BridgeError {
    fn from(e: ktypes::TypeError) -> Self {
        BridgeError::Type(e)
    }
}

impl From<BackendError> for BridgeError {
    fn from(e: BackendError) -> Self {
        match e {
            BackendError::Mem(m) => BridgeError::Mem(m),
            BackendError::Capture(msg) => BridgeError::Capture(msg),
        }
    }
}

/// Result alias for bridge operations.
pub type Result<T> = std::result::Result<T, BridgeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_stable_kind() {
        let cases: Vec<(BridgeError, ErrorKind)> = vec![
            (
                BridgeError::Mem(kmem::MemError::Unmapped { addr: 0 }),
                ErrorKind::Mem,
            ),
            (
                BridgeError::Parse {
                    expr: "x".into(),
                    msg: "bad".into(),
                },
                ErrorKind::Parse,
            ),
            (BridgeError::Eval("e".into()), ErrorKind::Eval),
            (
                BridgeError::UnknownIdent("i".into()),
                ErrorKind::UnknownIdent,
            ),
            (
                BridgeError::UnknownHelper("h".into()),
                ErrorKind::UnknownHelper,
            ),
            (BridgeError::Capture("c".into()), ErrorKind::Capture),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind, "{err}");
        }
    }

    #[test]
    fn backend_errors_convert_preserving_payload() {
        let e: BridgeError = BackendError::Mem(kmem::MemError::Unmapped { addr: 7 }).into();
        assert_eq!(e, BridgeError::Mem(kmem::MemError::Unmapped { addr: 7 }));
        let e: BridgeError = BackendError::Capture("boom".into()).into();
        assert_eq!(e.kind(), ErrorKind::Capture);
        assert!(format!("{e}").contains("boom"));
    }
}
