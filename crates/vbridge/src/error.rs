//! Bridge error type.

/// Errors surfaced while debugging the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BridgeError {
    /// A target memory access failed (e.g. a dangling pointer).
    Mem(kmem::MemError),
    /// A type-system operation failed.
    Type(ktypes::TypeError),
    /// A C expression failed to parse.
    Parse {
        /// The offending expression text.
        expr: String,
        /// What went wrong.
        msg: String,
    },
    /// A C expression parsed but could not be evaluated.
    Eval(String),
    /// An identifier did not resolve to a symbol, constant or binding.
    UnknownIdent(String),
    /// A called function is not a registered helper.
    UnknownHelper(String),
}

impl std::fmt::Display for BridgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BridgeError::Mem(e) => write!(f, "target memory error: {e}"),
            BridgeError::Type(e) => write!(f, "type error: {e}"),
            BridgeError::Parse { expr, msg } => write!(f, "parse error in `{expr}`: {msg}"),
            BridgeError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            BridgeError::UnknownIdent(n) => write!(f, "unknown identifier `{n}`"),
            BridgeError::UnknownHelper(n) => write!(f, "unknown helper function `{n}`"),
        }
    }
}

impl std::error::Error for BridgeError {}

impl From<kmem::MemError> for BridgeError {
    fn from(e: kmem::MemError) -> Self {
        BridgeError::Mem(e)
    }
}

impl From<ktypes::TypeError> for BridgeError {
    fn from(e: ktypes::TypeError) -> Self {
        BridgeError::Type(e)
    }
}

/// Result alias for bridge operations.
pub type Result<T> = std::result::Result<T, BridgeError>;
