//! Latency cost models for the two debugging transports of the paper.

/// Virtual-time cost of target memory accesses.
///
/// The paper's Table 4 compares plotting cost on two transports; their
/// ratio is dominated by per-read round trips ("even retrieving a uint64
/// via KGDB costs approximately 5ms"). A profile charges
/// `base_ns + len * per_byte_ns` per read, in *virtual* nanoseconds, so
/// benchmarks are deterministic and machine-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Human-readable transport name.
    pub name: &'static str,
    /// Fixed cost per read request (packet round trip + ptrace overhead).
    pub base_ns: u64,
    /// Marginal cost per byte transferred.
    pub per_byte_ns: u64,
}

impl LatencyProfile {
    /// GDB attached to a localhost QEMU (TCG) guest — the paper's fast
    /// scenario. Calibrated so that per-object costs land in Table 4's
    /// 0.1–1.1 ms band for the evaluation workload.
    pub fn gdb_qemu() -> Self {
        LatencyProfile {
            name: "GDB (QEMU)",
            base_ns: 85_000,
            per_byte_ns: 30,
        }
    }

    /// KGDB over serial on a Raspberry Pi 400 — the paper's slow scenario:
    /// a uint64 retrieval costs ~5 ms, making it ~50–90× slower per object.
    pub fn kgdb_rpi400() -> Self {
        LatencyProfile {
            name: "KGDB (rpi-400)",
            base_ns: 4_900_000,
            per_byte_ns: 12_000,
        }
    }

    /// Zero-cost profile for correctness tests.
    pub fn free() -> Self {
        LatencyProfile {
            name: "free",
            base_ns: 0,
            per_byte_ns: 0,
        }
    }

    /// Cost of one read of `len` bytes.
    pub fn cost_ns(&self, len: u64) -> u64 {
        self.base_ns + len * self.per_byte_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kgdb_uint64_costs_about_5ms() {
        let p = LatencyProfile::kgdb_rpi400();
        let ms = p.cost_ns(8) as f64 / 1e6;
        assert!((4.0..6.5).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn kgdb_is_tens_of_times_slower_than_qemu() {
        let q = LatencyProfile::gdb_qemu();
        let k = LatencyProfile::kgdb_rpi400();
        let ratio = k.cost_ns(8) as f64 / q.cost_ns(8) as f64;
        assert!((30.0..120.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn free_profile_is_free() {
        assert_eq!(LatencyProfile::free().cost_ns(4096), 0);
    }
}
