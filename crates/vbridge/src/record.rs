//! Wire capture: the `.vrec` format and the recording backend.
//!
//! A [`RecordBackend`] wraps any other backend and writes every wire
//! operation — successful reads *and* faults, probes, C-string pulls, and
//! resume boundaries — onto a shared [`Recorder`] tape. The finished tape
//! serializes as a [`Capture`] (`.vrec`): a self-describing JSON document
//! carrying the capture's origin backend, latency profile, cache
//! configuration and metadata, so a [`crate::ReplayBackend`] can later
//! serve the exact same session with zero image access.
//!
//! The format is deliberately simple: events are compact JSON arrays
//! tagged by a one-letter opcode (`r`ead, `rf` read-fault, `p`robe,
//! `c`str, `cf` cstr-fault, `z` resume), with read payloads hex-encoded
//! and addresses as plain JSON integers (the vendored parser preserves
//! full `u64` precision).

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

use kmem::MemError;
use serde_json::{Map, Number, Value};

use crate::backend::{BackendError, BackendKind, TargetBackend};
use crate::cache::CacheConfig;
use crate::profile::LatencyProfile;

/// Current `.vrec` format version.
pub const VREC_VERSION: u64 = 1;

/// One wire operation with its observed result. Faults store the exact
/// faulting address (the only fault the simulated wire produces is an
/// unmapped access), so replay reproduces error values byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireEvent {
    /// A span read: `Ok` carries the bytes served, `Err` the fault address.
    Read {
        /// Requested address.
        addr: u64,
        /// Requested length in bytes.
        len: u64,
        /// Served bytes, or the faulting address.
        result: std::result::Result<Vec<u8>, u64>,
    },
    /// A mapped-address probe and its answer.
    Probe {
        /// Probed address.
        addr: u64,
        /// Whether the address was mapped.
        mapped: bool,
    },
    /// A C-string pull: `Ok` carries the string, `Err` the fault address.
    Cstr {
        /// Requested address.
        addr: u64,
        /// Maximum string length requested.
        max: u64,
        /// The string read, or the faulting address.
        result: std::result::Result<String, u64>,
    },
    /// The dirty set the live side observed at a resume boundary:
    /// normalized `(addr, len)` ranges mutated since the previous stop.
    /// Recorded immediately before the [`Resume`](Self::Resume) marker
    /// so replay reproduces incremental-refresh decisions exactly.
    Dirty {
        /// Normalized dirty ranges.
        ranges: Vec<(u64, u64)>,
    },
    /// The target resumed (snapshot epoch boundary).
    Resume,
}

impl WireEvent {
    /// Short human description (used in replay divergence diagnostics).
    pub fn describe(&self) -> String {
        match self {
            WireEvent::Read { addr, len, .. } => format!("read addr={addr:#x} len={len}"),
            WireEvent::Probe { addr, .. } => format!("probe addr={addr:#x}"),
            WireEvent::Cstr { addr, max, .. } => format!("cstr addr={addr:#x} max={max}"),
            WireEvent::Dirty { ranges } => {
                let bytes: u64 = ranges.iter().map(|&(_, len)| len).sum();
                format!("dirty [{} ranges, {bytes} bytes]", ranges.len())
            }
            WireEvent::Resume => "resume".to_string(),
        }
    }
}

/// The shared capture tape. Owned by the session (one per recording
/// attach) and shared with each per-extraction [`RecordBackend`] via
/// `Rc`, so events accumulate across extractions and resume boundaries.
#[derive(Debug, Default)]
pub struct Recorder {
    events: RefCell<Vec<WireEvent>>,
}

impl Recorder {
    /// An empty tape.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Append one event.
    pub fn push(&self, ev: WireEvent) {
        self.events.borrow_mut().push(ev);
    }

    /// Append a resume (epoch boundary) marker.
    pub fn note_resume(&self) {
        self.push(WireEvent::Resume);
    }

    /// Number of recorded events so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Snapshot the tape into a serializable [`Capture`]. The tape keeps
    /// recording; calling again later yields a longer capture.
    pub fn capture(
        &self,
        origin: BackendKind,
        profile: LatencyProfile,
        cache: Option<CacheConfig>,
        meta: Value,
    ) -> Capture {
        Capture {
            version: VREC_VERSION,
            origin,
            profile,
            cache,
            meta,
            events: self.events.borrow().clone(),
        }
    }
}

/// A backend that records every wire operation of an inner backend.
pub struct RecordBackend<'a> {
    inner: Box<dyn TargetBackend + 'a>,
    tape: Rc<Recorder>,
}

impl<'a> RecordBackend<'a> {
    /// Wrap `inner`, appending every operation to `tape`.
    pub fn new(inner: Box<dyn TargetBackend + 'a>, tape: Rc<Recorder>) -> Self {
        RecordBackend { inner, tape }
    }

    /// The kind of the wrapped backend (what the capture originates from).
    pub fn origin(&self) -> BackendKind {
        self.inner.kind()
    }
}

/// Extract the fault address from a wire error, if it is the recordable
/// kind (an unmapped access — the only fault the simulated wire emits).
fn fault_addr(e: &BackendError) -> Option<u64> {
    match e {
        BackendError::Mem(MemError::Unmapped { addr }) => Some(*addr),
        _ => None,
    }
}

impl TargetBackend for RecordBackend<'_> {
    fn kind(&self) -> BackendKind {
        BackendKind::Record
    }

    fn describe(&self) -> String {
        format!("record over {}", self.inner.describe())
    }

    fn read(&self, addr: u64, out: &mut [u8]) -> Result<(), BackendError> {
        let res = self.inner.read(addr, out);
        match &res {
            Ok(()) => self.tape.push(WireEvent::Read {
                addr,
                len: out.len() as u64,
                result: Ok(out.to_vec()),
            }),
            Err(e) => {
                if let Some(fault) = fault_addr(e) {
                    self.tape.push(WireEvent::Read {
                        addr,
                        len: out.len() as u64,
                        result: Err(fault),
                    });
                }
            }
        }
        res
    }

    fn probe(&self, addr: u64) -> Result<bool, BackendError> {
        let res = self.inner.probe(addr)?;
        self.tape.push(WireEvent::Probe { addr, mapped: res });
        Ok(res)
    }

    fn read_cstr(&self, addr: u64, max: usize) -> Result<String, BackendError> {
        let res = self.inner.read_cstr(addr, max);
        match &res {
            Ok(s) => self.tape.push(WireEvent::Cstr {
                addr,
                max: max as u64,
                result: Ok(s.clone()),
            }),
            Err(e) => {
                if let Some(fault) = fault_addr(e) {
                    self.tape.push(WireEvent::Cstr {
                        addr,
                        max: max as u64,
                        result: Err(fault),
                    });
                }
            }
        }
        res
    }

    fn resume_dirty(&self, observed: crate::backend::DirtyInfo) -> crate::backend::DirtyInfo {
        let info = self.inner.resume_dirty(observed);
        if let crate::backend::DirtyInfo::Known(set) = &info {
            // Tape the set so replay reproduces the same refresh
            // decisions; Unknown tapes nothing, keeping non-incremental
            // captures byte-identical to the pre-dirty format.
            self.tape.push(WireEvent::Dirty {
                ranges: set.ranges().to_vec(),
            });
        }
        info
    }

    fn native_profile(&self) -> Option<LatencyProfile> {
        self.inner.native_profile()
    }
}

/// A finished wire capture: the `.vrec` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Capture {
    /// Format version ([`VREC_VERSION`]).
    pub version: u64,
    /// The backend kind the capture was recorded over.
    pub origin: BackendKind,
    /// The latency profile the recording session metered under.
    pub profile: LatencyProfile,
    /// The cache configuration of the recording session, if cached.
    pub cache: Option<CacheConfig>,
    /// Free-form metadata (workload config, per-figure manifests, …).
    pub meta: Value,
    /// The recorded wire events, in order.
    pub events: Vec<WireEvent>,
}

fn num(n: u64) -> Value {
    Value::Number(Number::from_u64(n))
}

fn hex_encode(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex payload ({} chars)", s.len()));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16);
        let lo = (pair[1] as char).to_digit(16);
        match (hi, lo) {
            (Some(h), Some(l)) => out.push(((h << 4) | l) as u8),
            _ => return Err(format!("bad hex pair `{}`", String::from_utf8_lossy(pair))),
        }
    }
    Ok(out)
}

fn get_u64(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer `{key}`"))
}

fn get_str<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{ctx}: missing or non-string `{key}`"))
}

fn profile_to_value(p: &LatencyProfile) -> Value {
    let mut m = Map::new();
    m.insert("name".into(), Value::String(p.name.to_string()));
    m.insert("base_ns".into(), num(p.base_ns));
    m.insert("per_byte_ns".into(), num(p.per_byte_ns));
    Value::Object(m)
}

fn profile_from_value(v: &Value) -> Result<LatencyProfile, String> {
    let name = get_str(v, "name", "profile")?;
    let base_ns = get_u64(v, "base_ns", "profile")?;
    let per_byte_ns = get_u64(v, "per_byte_ns", "profile")?;
    // Profile names are `&'static str`; map back to the known transports,
    // falling back to a generic label when the numbers match none of them.
    for known in [
        LatencyProfile::gdb_qemu(),
        LatencyProfile::kgdb_rpi400(),
        LatencyProfile::free(),
    ] {
        if known.name == name && known.base_ns == base_ns && known.per_byte_ns == per_byte_ns {
            return Ok(known);
        }
    }
    Ok(LatencyProfile {
        name: "captured",
        base_ns,
        per_byte_ns,
    })
}

fn event_to_value(ev: &WireEvent) -> Value {
    let arr = match ev {
        WireEvent::Read {
            addr,
            len,
            result: Ok(data),
        } => vec![
            Value::String("r".into()),
            num(*addr),
            num(*len),
            Value::String(hex_encode(data)),
        ],
        WireEvent::Read {
            addr,
            len,
            result: Err(fault),
        } => vec![
            Value::String("rf".into()),
            num(*addr),
            num(*len),
            num(*fault),
        ],
        WireEvent::Probe { addr, mapped } => {
            vec![Value::String("p".into()), num(*addr), Value::Bool(*mapped)]
        }
        WireEvent::Cstr {
            addr,
            max,
            result: Ok(s),
        } => vec![
            Value::String("c".into()),
            num(*addr),
            num(*max),
            Value::String(s.clone()),
        ],
        WireEvent::Cstr {
            addr,
            max,
            result: Err(fault),
        } => vec![
            Value::String("cf".into()),
            num(*addr),
            num(*max),
            num(*fault),
        ],
        WireEvent::Dirty { ranges } => vec![
            Value::String("d".into()),
            Value::Array(
                ranges
                    .iter()
                    .map(|&(addr, len)| Value::Array(vec![num(addr), num(len)]))
                    .collect(),
            ),
        ],
        WireEvent::Resume => vec![Value::String("z".into())],
    };
    Value::Array(arr)
}

fn event_from_value(i: usize, v: &Value) -> Result<WireEvent, String> {
    let ctx = format!("event {i}");
    let arr = v.as_array().ok_or_else(|| format!("{ctx}: not an array"))?;
    let op = arr
        .first()
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{ctx}: missing opcode"))?;
    let u = |idx: usize, what: &str| -> Result<u64, String> {
        arr.get(idx)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{ctx} ({op}): missing or non-integer {what}"))
    };
    let s = |idx: usize, what: &str| -> Result<String, String> {
        arr.get(idx)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{ctx} ({op}): missing or non-string {what}"))
    };
    match op {
        "r" => Ok(WireEvent::Read {
            addr: u(1, "addr")?,
            len: u(2, "len")?,
            result: Ok(hex_decode(&s(3, "data")?).map_err(|e| format!("{ctx}: {e}"))?),
        }),
        "rf" => Ok(WireEvent::Read {
            addr: u(1, "addr")?,
            len: u(2, "len")?,
            result: Err(u(3, "fault")?),
        }),
        "p" => Ok(WireEvent::Probe {
            addr: u(1, "addr")?,
            mapped: arr
                .get(2)
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("{ctx} (p): missing or non-bool mapped"))?,
        }),
        "c" => Ok(WireEvent::Cstr {
            addr: u(1, "addr")?,
            max: u(2, "max")?,
            result: Ok(s(3, "string")?),
        }),
        "cf" => Ok(WireEvent::Cstr {
            addr: u(1, "addr")?,
            max: u(2, "max")?,
            result: Err(u(3, "fault")?),
        }),
        "d" => {
            let ranges_v = arr
                .get(1)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("{ctx} (d): missing or non-array ranges"))?;
            let mut ranges = Vec::with_capacity(ranges_v.len());
            for (j, r) in ranges_v.iter().enumerate() {
                let pair = r
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("{ctx} (d): range {j} is not an [addr, len] pair"))?;
                let addr = pair[0]
                    .as_u64()
                    .ok_or_else(|| format!("{ctx} (d): range {j} has a non-integer addr"))?;
                let len = pair[1]
                    .as_u64()
                    .ok_or_else(|| format!("{ctx} (d): range {j} has a non-integer len"))?;
                ranges.push((addr, len));
            }
            Ok(WireEvent::Dirty { ranges })
        }
        "z" => Ok(WireEvent::Resume),
        other => Err(format!("{ctx}: unknown opcode `{other}`")),
    }
}

impl Capture {
    /// The corpus scenario this capture was recorded from, as stamped in
    /// the header meta: (`meta.scenario`, `meta.scenario_fingerprint`).
    /// `None` for captures not recorded from a corpus scenario.
    pub fn scenario(&self) -> Option<(&str, u64)> {
        let name = self.meta.get("scenario")?.as_str()?;
        let fp = self.meta.get("scenario_fingerprint")?.as_u64()?;
        Some((name, fp))
    }

    /// Serialize as a compact `.vrec` JSON document.
    pub fn to_json(&self) -> String {
        let mut root = Map::new();
        root.insert("version".into(), num(self.version));
        root.insert("origin".into(), Value::String(self.origin.as_str().into()));
        root.insert("profile".into(), profile_to_value(&self.profile));
        root.insert(
            "cache".into(),
            match &self.cache {
                None => Value::Null,
                Some(c) => {
                    let mut m = Map::new();
                    m.insert("block_size".into(), num(c.block_size));
                    m.insert("max_blocks".into(), num(c.max_blocks as u64));
                    m.insert("coalesce".into(), Value::Bool(c.coalesce));
                    m.insert("prefetch".into(), Value::Bool(c.prefetch));
                    Value::Object(m)
                }
            },
        );
        root.insert("meta".into(), self.meta.clone());
        root.insert(
            "events".into(),
            Value::Array(self.events.iter().map(event_to_value).collect()),
        );
        serde_json::to_string(&Value::Object(root)).expect("capture serialization is infallible")
    }

    /// Parse a `.vrec` document. Every malformation — truncated text, a
    /// missing header field, a corrupt event — comes back as a diagnostic
    /// string; this function never panics.
    pub fn from_json(text: &str) -> Result<Capture, String> {
        let root: Value =
            serde_json::from_str(text).map_err(|e| format!("capture is not valid JSON: {e}"))?;
        if root.as_object().is_none() {
            return Err("capture root is not a JSON object".to_string());
        }
        let version = get_u64(&root, "version", "capture header")?;
        if version != VREC_VERSION {
            return Err(format!(
                "unsupported capture version {version} (this build reads version {VREC_VERSION})"
            ));
        }
        let origin_name = get_str(&root, "origin", "capture header")?;
        let origin = BackendKind::from_str_opt(origin_name)
            .ok_or_else(|| format!("capture header: unknown origin backend `{origin_name}`"))?;
        let profile = profile_from_value(
            root.get("profile")
                .ok_or_else(|| "capture header: missing `profile`".to_string())?,
        )?;
        let cache =
            match root.get("cache") {
                None | Some(Value::Null) => None,
                Some(c) => {
                    let block_size = get_u64(c, "block_size", "cache config")?;
                    let max_blocks = get_u64(c, "max_blocks", "cache config")? as usize;
                    let coalesce = c.get("coalesce").and_then(Value::as_bool).ok_or_else(|| {
                        "cache config: missing or non-bool `coalesce`".to_string()
                    })?;
                    let prefetch = c.get("prefetch").and_then(Value::as_bool).ok_or_else(|| {
                        "cache config: missing or non-bool `prefetch`".to_string()
                    })?;
                    Some(CacheConfig {
                        block_size,
                        max_blocks,
                        coalesce,
                        prefetch,
                    })
                }
            };
        let meta = root.get("meta").cloned().unwrap_or(Value::Null);
        let events_v = root
            .get("events")
            .and_then(Value::as_array)
            .ok_or_else(|| "capture: missing or non-array `events`".to_string())?;
        let mut events = Vec::with_capacity(events_v.len());
        for (i, ev) in events_v.iter().enumerate() {
            events.push(event_from_value(i, ev)?);
        }
        Ok(Capture {
            version,
            origin,
            profile,
            cache,
            meta,
            events,
        })
    }

    /// Write the capture to `path` as a `.vrec` file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read and parse a `.vrec` file.
    pub fn load(path: &Path) -> Result<Capture, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read capture {}: {e}", path.display()))?;
        Capture::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_capture() -> Capture {
        Capture {
            version: VREC_VERSION,
            origin: BackendKind::Sim,
            profile: LatencyProfile::kgdb_rpi400(),
            cache: Some(CacheConfig::default()),
            meta: Value::Null,
            events: vec![
                WireEvent::Read {
                    addr: 0xffff_8880_0123_4560,
                    len: 8,
                    result: Ok(vec![1, 2, 3, 4, 5, 6, 7, 0xff]),
                },
                WireEvent::Read {
                    addr: 0xdead_0000_0000,
                    len: 8,
                    result: Err(0xdead_0000_0000),
                },
                WireEvent::Probe {
                    addr: 0x1000,
                    mapped: true,
                },
                WireEvent::Cstr {
                    addr: 0x2000,
                    max: 16,
                    result: Ok("swapper/0".into()),
                },
                WireEvent::Cstr {
                    addr: 0x3000,
                    max: 16,
                    result: Err(0x3004),
                },
                WireEvent::Dirty {
                    ranges: vec![(0xffff_8880_0123_4560, 8), (0x5000, 4)],
                },
                WireEvent::Resume,
            ],
        }
    }

    #[test]
    fn capture_round_trips_through_json() {
        let cap = sample_capture();
        let text = cap.to_json();
        let back = Capture::from_json(&text).unwrap();
        assert_eq!(back, cap);
        // Full-width u64 addresses survive exactly.
        match &back.events[0] {
            WireEvent::Read { addr, .. } => assert_eq!(*addr, 0xffff_8880_0123_4560),
            other => panic!("wrong event {other:?}"),
        }
    }

    #[test]
    fn malformed_captures_diagnose_without_panicking() {
        for (text, needle) in [
            ("", "not valid JSON"),
            ("[]", "root is not a JSON object"),
            ("{}", "missing or non-integer `version`"),
            (r#"{"version":99}"#, "unsupported capture version 99"),
            (
                r#"{"version":1,"origin":"gdb"}"#,
                "unknown origin backend `gdb`",
            ),
            (
                r#"{"version":1,"origin":"sim","profile":{"name":"free","base_ns":0,"per_byte_ns":0},"cache":null,"meta":null,"events":[["q"]]}"#,
                "unknown opcode `q`",
            ),
            (
                r#"{"version":1,"origin":"sim","profile":{"name":"free","base_ns":0,"per_byte_ns":0},"cache":null,"meta":null,"events":[["r",1,2,"abc"]]}"#,
                "odd-length hex",
            ),
            (
                r#"{"version":1,"origin":"sim","profile":{"name":"free","base_ns":0,"per_byte_ns":0},"cache":null,"meta":null,"events":[["d"]]}"#,
                "missing or non-array ranges",
            ),
            (
                r#"{"version":1,"origin":"sim","profile":{"name":"free","base_ns":0,"per_byte_ns":0},"cache":null,"meta":null,"events":[["d",[[1]]]]}"#,
                "not an [addr, len] pair",
            ),
            (
                r#"{"version":1,"origin":"sim","profile":{"name":"free","base_ns":0,"per_byte_ns":0},"cache":null,"meta":null,"events":[["d",[[1,"x"]]]]}"#,
                "non-integer len",
            ),
        ] {
            let err = Capture::from_json(text).unwrap_err();
            assert!(err.contains(needle), "for {text:?}: got {err:?}");
        }
    }

    #[test]
    fn recorder_tapes_reads_probes_and_faults() {
        use kmem::Mem;
        let mut mem = Mem::new();
        mem.map(0x1000, 4096);
        mem.write_cstr(0x1100, "hello");
        let tape = Rc::new(Recorder::new());
        let b = RecordBackend::new(Box::new(crate::SimBackend::new(&mem)), tape.clone());
        let mut buf = [0u8; 4];
        b.read(0x1000, &mut buf).unwrap();
        assert!(b.read(0xdead_0000, &mut buf).is_err());
        assert!(b.probe(0x1000).unwrap());
        assert_eq!(b.read_cstr(0x1100, 16).unwrap(), "hello");
        assert!(b.read_cstr(0xbeef_0000, 16).is_err());
        tape.note_resume();
        let cap = tape.capture(BackendKind::Sim, LatencyProfile::free(), None, Value::Null);
        assert_eq!(cap.events.len(), 6);
        assert!(matches!(
            &cap.events[1],
            WireEvent::Read { result: Err(_), .. }
        ));
        assert!(matches!(
            &cap.events[4],
            WireEvent::Cstr { result: Err(_), .. }
        ));
        assert_eq!(cap.events[5], WireEvent::Resume);
        assert_eq!(b.kind(), BackendKind::Record);
        assert!(b.describe().contains("record over"));
    }

    #[test]
    fn record_backend_tapes_known_dirty_sets_only() {
        use crate::backend::{DirtyInfo, DirtySet};
        use kmem::Mem;
        let mem = Mem::new();
        let tape = Rc::new(Recorder::new());
        let b = RecordBackend::new(Box::new(crate::SimBackend::new(&mem)), tape.clone());
        // Unknown leaves the tape untouched (pre-dirty capture shape).
        assert_eq!(b.resume_dirty(DirtyInfo::Unknown), DirtyInfo::Unknown);
        assert!(tape.is_empty());
        // Known is taped and forwarded through the sim unchanged.
        let known = DirtyInfo::Known(DirtySet::from_ranges(vec![(0x100, 8), (0x200, 4)]));
        assert_eq!(b.resume_dirty(known.clone()), known);
        tape.note_resume();
        let cap = tape.capture(BackendKind::Sim, LatencyProfile::free(), None, Value::Null);
        assert_eq!(
            cap.events,
            vec![
                WireEvent::Dirty {
                    ranges: vec![(0x100, 8), (0x200, 4)]
                },
                WireEvent::Resume,
            ]
        );
        assert!(cap.events[0].describe().contains("2 ranges, 12 bytes"));
    }

    #[test]
    fn unknown_profile_numbers_load_as_captured() {
        let text = r#"{"version":1,"origin":"sim","profile":{"name":"exotic","base_ns":123,"per_byte_ns":4},"cache":null,"meta":null,"events":[]}"#;
        let cap = Capture::from_json(text).unwrap();
        assert_eq!(cap.profile.name, "captured");
        assert_eq!(cap.profile.base_ns, 123);
        assert_eq!(cap.profile.per_byte_ns, 4);
    }
}
