//! The metered debug target.

use std::cell::Cell;

use kmem::{Mem, SymbolTable};
use ktypes::{CValue, TypeId, TypeKind, TypeRegistry};

use crate::profile::LatencyProfile;
use crate::{BridgeError, Result};

/// Cumulative access statistics (virtual time, reads, bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TargetStats {
    /// Number of read requests issued.
    pub reads: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Accumulated virtual time in nanoseconds.
    pub virtual_ns: u64,
}

/// A debugger's view of the stopped kernel.
///
/// Couples the raw memory image with its debug info and symbol table, and
/// meters every access through a [`LatencyProfile`]. All reads take
/// `&self`; the counters are interior-mutable, mirroring how observing a
/// stopped target does not change it.
pub struct Target<'a> {
    mem: &'a Mem,
    /// Type registry (the debug info).
    pub types: &'a TypeRegistry,
    /// Symbol table.
    pub symbols: &'a SymbolTable,
    profile: LatencyProfile,
    reads: Cell<u64>,
    bytes: Cell<u64>,
    virtual_ns: Cell<u64>,
}

impl<'a> Target<'a> {
    /// Attach to an image with the given latency profile.
    pub fn new(
        mem: &'a Mem,
        types: &'a TypeRegistry,
        symbols: &'a SymbolTable,
        profile: LatencyProfile,
    ) -> Self {
        Target {
            mem,
            types,
            symbols,
            profile,
            reads: Cell::new(0),
            bytes: Cell::new(0),
            virtual_ns: Cell::new(0),
        }
    }

    /// The active latency profile.
    pub fn profile(&self) -> LatencyProfile {
        self.profile
    }

    /// Snapshot the access statistics.
    pub fn stats(&self) -> TargetStats {
        TargetStats {
            reads: self.reads.get(),
            bytes: self.bytes.get(),
            virtual_ns: self.virtual_ns.get(),
        }
    }

    /// Reset the access statistics (e.g. between benchmark plots).
    pub fn reset_stats(&self) {
        self.reads.set(0);
        self.bytes.set(0);
        self.virtual_ns.set(0);
    }

    fn account(&self, len: u64) {
        self.reads.set(self.reads.get() + 1);
        self.bytes.set(self.bytes.get() + len);
        self.virtual_ns
            .set(self.virtual_ns.get() + self.profile.cost_ns(len));
    }

    /// Read raw bytes (metered).
    pub fn read(&self, addr: u64, out: &mut [u8]) -> Result<()> {
        self.account(out.len() as u64);
        self.mem.read(addr, out).map_err(BridgeError::from)
    }

    /// Read an unsigned little-endian integer of `size` bytes (metered).
    pub fn read_uint(&self, addr: u64, size: usize) -> Result<u64> {
        self.account(size as u64);
        self.mem.read_uint(addr, size).map_err(BridgeError::from)
    }

    /// Read a signed integer (metered).
    pub fn read_int(&self, addr: u64, size: usize) -> Result<i64> {
        self.account(size as u64);
        self.mem.read_int(addr, size).map_err(BridgeError::from)
    }

    /// Read a NUL-terminated C string, metered as one packet per chunk.
    pub fn read_cstr(&self, addr: u64, max: usize) -> Result<String> {
        self.account((max as u64).min(64));
        self.mem.read_cstr(addr, max).map_err(BridgeError::from)
    }

    /// Whether `addr` is mapped (metered as a 1-byte probe).
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.account(1);
        self.mem.is_mapped(addr)
    }

    /// Load a value of type `ty` from `addr`, decoding scalars and
    /// returning aggregates as lvalues.
    pub fn load(&self, addr: u64, ty: TypeId) -> Result<CValue> {
        match &self.types.get(ty).kind {
            TypeKind::Prim(p) => {
                let size = p.size() as usize;
                if size == 0 {
                    return Ok(CValue::Int { value: 0, ty });
                }
                let v = if p.signed() {
                    self.read_int(addr, size)?
                } else {
                    self.read_uint(addr, size)? as i64
                };
                Ok(CValue::Int { value: v, ty })
            }
            TypeKind::Enum(e) => {
                let v = self.read_int(addr, e.size as usize)?;
                Ok(CValue::Int { value: v, ty })
            }
            TypeKind::Pointer(_) => {
                let v = self.read_uint(addr, 8)?;
                Ok(CValue::Ptr { addr: v, ty })
            }
            TypeKind::Struct(_) | TypeKind::Array { .. } => Ok(CValue::LValue { addr, ty }),
            TypeKind::Func(_) => Ok(CValue::Ptr { addr, ty }),
        }
    }

    /// Resolve a global symbol to an lvalue of its declared type.
    pub fn symbol_value(&self, name: &str) -> Result<CValue> {
        let sym = self
            .symbols
            .lookup(name)
            .ok_or_else(|| BridgeError::UnknownIdent(name.to_string()))?;
        match sym.ty {
            Some(ty) => Ok(CValue::LValue { addr: sym.addr, ty }),
            None => Ok(CValue::Int {
                value: sym.addr as i64,
                ty: self.u64_type()?,
            }),
        }
    }

    fn u64_type(&self) -> Result<TypeId> {
        self.types
            .find("unsigned long")
            .ok_or_else(|| BridgeError::Eval("u64 type not interned".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::workload::{self, WorkloadConfig};

    #[test]
    fn reads_accumulate_virtual_time() {
        let (img, _t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let target = Target::new(
            &img.mem,
            &img.types,
            &img.symbols,
            LatencyProfile::kgdb_rpi400(),
        );
        let _ = target.read_uint(roots.init_task, 8).unwrap();
        let s = target.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes, 8);
        assert!(s.virtual_ns >= 4_900_000);
        target.reset_stats();
        assert_eq!(target.stats(), TargetStats::default());
    }

    #[test]
    fn symbol_value_gives_typed_lvalue() {
        let (img, t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let target = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        let v = target.symbol_value("init_task").unwrap();
        assert_eq!(v.address(), Some(roots.init_task));
        assert_eq!(v.type_id(), Some(t.task.task_struct));
        assert!(matches!(
            target.symbol_value("no_such_global"),
            Err(BridgeError::UnknownIdent(_))
        ));
    }

    #[test]
    fn load_decodes_scalars_by_type() {
        let (img, t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let target = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        let (pid_off, pid_ty) = img.types.field_path(t.task.task_struct, "pid").unwrap();
        let v = target.load(roots.init_task + pid_off, pid_ty).unwrap();
        assert_eq!(v.as_int(), Some(0));
        // Aggregates come back as lvalues.
        let v = target.load(roots.init_task, t.task.task_struct).unwrap();
        assert!(matches!(v, CValue::LValue { .. }));
    }

    #[test]
    fn dangling_pointer_read_faults() {
        let (img, _t, _roots) = workload::build(&WorkloadConfig::default()).finish();
        let target = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        assert!(matches!(
            target.read_uint(0xdead_0000_0000, 8),
            Err(BridgeError::Mem(_))
        ));
    }
}
