//! The metered debug target.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use kmem::{Mem, MemError, SymbolTable};
use ktypes::{CValue, TypeId, TypeKind, TypeRegistry};
use vtrace::Tracer;

use crate::backend::{BackendError, BackendKind, SimBackend, TargetBackend};
use crate::cache::BlockCache;
use crate::profile::LatencyProfile;
use crate::{BridgeError, Result};

/// C strings travel in 64-byte chunks, mirroring GDB's remote-protocol
/// habit of pulling strings in small fixed reads.
const CSTR_CHUNK: u64 = 64;

/// Largest span a single prefetch hint will pull (one page).
const MAX_PREFETCH: u64 = 4096;

/// Cumulative access statistics (virtual time, reads, bytes).
///
/// `reads` counts *wire packets* and `bytes` counts *wire bytes*: with the
/// block cache enabled a cache hit costs neither, while a miss pays for a
/// whole block. Without a cache every call is one packet, as before.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TargetStats {
    /// Which backend kind served the wire (identity only — all counters
    /// are byte-identical between a live run and its replay).
    pub backend: BackendKind,
    /// Number of read packets issued over the (virtual) wire.
    pub reads: u64,
    /// Total bytes transferred over the wire.
    pub bytes: u64,
    /// Accumulated virtual time in nanoseconds.
    pub virtual_ns: u64,
    /// Block lookups served from the snapshot cache.
    pub cache_hits: u64,
    /// Block fetches caused by cache misses.
    pub cache_misses: u64,
    /// Round-trips avoided: requests served without any wire packet, plus
    /// packets merged away by read coalescing.
    pub packets_saved: u64,
    /// Reads that faulted on unmapped memory — wild pointers chased by a
    /// distiller or checker over a corrupted image.
    pub faults: u64,
    /// Walk-plan IR nodes executed by plan-mode extraction (0 under the
    /// plain interpreter).
    pub plan_nodes: u64,
    /// Subwalks skipped because an identical traversal (same kind, same
    /// root) already ran earlier in the plan.
    pub dedup_walks: u64,
    /// Scheduler waves that ran two or more discovery walks concurrently.
    /// Derived from the plan's wave structure, never from thread timing,
    /// so it is deterministic across runs.
    pub parallel_batches: u64,
    /// Panes served from their retained graph because the dirty set
    /// missed every span they touched (incremental refresh hits).
    pub vincr_hits: u64,
    /// Panes re-walked because the dirty set intersected their touched
    /// spans — or because the backend reported an unknown dirty set.
    pub vincr_rewalks: u64,
    /// Total mutated bytes reported by the backend across resumes
    /// (0 whenever dirty information was unknown).
    pub dirty_bytes: u64,
}

/// A batch of reads to be coalesced into minimal wire spans.
///
/// Adjacent and overlapping requests merge into one span; disjoint ones
/// stay separate. [`Target::read_many`] turns each span into a single
/// packet when the cache is enabled.
#[derive(Debug, Clone, Default)]
pub struct ReadPlan {
    reqs: Vec<(u64, u64)>,
}

impl ReadPlan {
    /// An empty plan.
    pub fn new() -> Self {
        ReadPlan::default()
    }

    /// Queue a read of `len` bytes at `addr`.
    pub fn add(&mut self, addr: u64, len: u64) {
        if len > 0 {
            self.reqs.push((addr, len));
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Whether no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// The minimal `(addr, len)` spans covering every queued request:
    /// sorted, with adjacent/overlapping requests merged.
    pub fn spans(&self) -> Vec<(u64, u64)> {
        let mut sorted = self.reqs.clone();
        sorted.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
        for (addr, len) in sorted {
            match out.last_mut() {
                Some((last_addr, last_len)) if addr <= *last_addr + *last_len => {
                    let end = (addr + len).max(*last_addr + *last_len);
                    *last_len = end - *last_addr;
                }
                _ => out.push((addr, len)),
            }
        }
        out
    }
}

/// A debugger's view of the stopped kernel.
///
/// Couples the raw memory image with its debug info and symbol table, and
/// meters every access through a [`LatencyProfile`]. All reads take
/// `&self`; the counters are interior-mutable, mirroring how observing a
/// stopped target does not change it.
///
/// With [`Target::with_cache`] the target additionally routes reads
/// through a shared [`BlockCache`]: misses fetch whole aligned blocks as
/// one packet each, hits are free, and results — values *and* faults —
/// are byte-identical to the uncached path.
pub struct Target<'a> {
    backend: Box<dyn TargetBackend + 'a>,
    /// Type registry (the debug info).
    pub types: &'a TypeRegistry,
    /// Symbol table.
    pub symbols: &'a SymbolTable,
    profile: LatencyProfile,
    cache: Option<&'a BlockCache>,
    reads: Cell<u64>,
    bytes: Cell<u64>,
    virtual_ns: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    packets_saved: Cell<u64>,
    faults: Cell<u64>,
    plan_nodes: Cell<u64>,
    dedup_walks: Cell<u64>,
    parallel_batches: Cell<u64>,
    vincr_hits: Cell<u64>,
    vincr_rewalks: Cell<u64>,
    dirty_bytes: Cell<u64>,
    plan_mode: Cell<bool>,
    track_touched: Cell<bool>,
    touched: RefCell<Vec<(u64, u64)>>,
    tracer: Option<Rc<Tracer>>,
}

impl<'a> Target<'a> {
    /// Attach to a live image with the given latency profile (uncached).
    /// Equivalent to [`Target::over`] with a [`SimBackend`].
    pub fn new(
        mem: &'a Mem,
        types: &'a TypeRegistry,
        symbols: &'a SymbolTable,
        profile: LatencyProfile,
    ) -> Self {
        Target::over(Box::new(SimBackend::new(mem)), types, symbols, profile)
    }

    /// Attach to a live image with a shared snapshot block cache. The
    /// cache outlives the target, so blocks persist across extractions
    /// until the session resumes the kernel and bumps the epoch.
    pub fn with_cache(
        mem: &'a Mem,
        types: &'a TypeRegistry,
        symbols: &'a SymbolTable,
        profile: LatencyProfile,
        cache: &'a BlockCache,
    ) -> Self {
        let mut t = Target::new(mem, types, symbols, profile);
        t.cache = Some(cache);
        t
    }

    /// Attach the metering layer over an arbitrary wire backend. Every
    /// layer above the wire — latency accounting, block cache, read
    /// coalescing, tracing, fault counting — behaves identically no
    /// matter which backend serves the bytes.
    pub fn over(
        backend: Box<dyn TargetBackend + 'a>,
        types: &'a TypeRegistry,
        symbols: &'a SymbolTable,
        profile: LatencyProfile,
    ) -> Self {
        Target {
            backend,
            types,
            symbols,
            profile,
            cache: None,
            reads: Cell::new(0),
            bytes: Cell::new(0),
            virtual_ns: Cell::new(0),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
            packets_saved: Cell::new(0),
            faults: Cell::new(0),
            plan_nodes: Cell::new(0),
            dedup_walks: Cell::new(0),
            parallel_batches: Cell::new(0),
            vincr_hits: Cell::new(0),
            vincr_rewalks: Cell::new(0),
            dirty_bytes: Cell::new(0),
            plan_mode: Cell::new(false),
            track_touched: Cell::new(false),
            touched: RefCell::new(Vec::new()),
            tracer: None,
        }
    }

    /// Route reads through a shared snapshot block cache.
    pub fn set_cache(&mut self, cache: &'a BlockCache) {
        self.cache = Some(cache);
    }

    /// Which kind of backend serves the wire.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// One-line description of the wire backend.
    pub fn backend_desc(&self) -> String {
        self.backend.describe()
    }

    /// The active latency profile.
    pub fn profile(&self) -> LatencyProfile {
        self.profile
    }

    /// Whether reads go through a snapshot cache.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&'a BlockCache> {
        self.cache
    }

    /// Invalidate the snapshot cache (the target resumed). No-op when
    /// uncached.
    pub fn bump_epoch(&self) {
        if let Some(c) = self.cache {
            c.bump_epoch();
        }
    }

    /// Mirror every metered event into `tracer`: each wire packet, cache
    /// hit and fault is reported as it happens, so the tracer's clock
    /// advances in lock-step with [`Target::stats`] — the reconciliation
    /// invariant the vtrace test suite checks bit-for-bit.
    pub fn set_tracer(&mut self, tracer: Rc<Tracer>) {
        tracer.set_backend(self.backend.kind().as_str());
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Rc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Snapshot the access statistics.
    pub fn stats(&self) -> TargetStats {
        TargetStats {
            backend: self.backend.kind(),
            reads: self.reads.get(),
            bytes: self.bytes.get(),
            virtual_ns: self.virtual_ns.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            packets_saved: self.packets_saved.get(),
            faults: self.faults.get(),
            plan_nodes: self.plan_nodes.get(),
            dedup_walks: self.dedup_walks.get(),
            parallel_batches: self.parallel_batches.get(),
            vincr_hits: self.vincr_hits.get(),
            vincr_rewalks: self.vincr_rewalks.get(),
            dirty_bytes: self.dirty_bytes.get(),
        }
    }

    /// Reset the access statistics (e.g. between benchmark plots).
    pub fn reset_stats(&self) {
        self.reads.set(0);
        self.bytes.set(0);
        self.virtual_ns.set(0);
        self.cache_hits.set(0);
        self.cache_misses.set(0);
        self.packets_saved.set(0);
        self.faults.set(0);
        self.plan_nodes.set(0);
        self.dedup_walks.set(0);
        self.parallel_batches.set(0);
        self.vincr_hits.set(0);
        self.vincr_rewalks.set(0);
        self.dirty_bytes.set(0);
    }

    /// Whether plan-mode extraction owns the prefetch schedule. While
    /// set, the distillers' ad-hoc [`Target::prefetch`] hints become
    /// no-ops so the planner's scheduled spans are not double-pulled
    /// (and `packets_saved` is not double-counted).
    pub fn plan_mode(&self) -> bool {
        self.plan_mode.get()
    }

    /// Enter or leave plan mode (see [`Target::plan_mode`]).
    pub fn set_plan_mode(&self, on: bool) {
        self.plan_mode.set(on);
    }

    /// Record the outcome of one plan execution. The counts come from
    /// the plan's deterministic schedule, so a live run and its replay
    /// report identical numbers.
    pub fn note_plan_walks(&self, nodes: u64, dedups: u64, batches: u64) {
        self.plan_nodes.set(self.plan_nodes.get() + nodes);
        self.dedup_walks.set(self.dedup_walks.get() + dedups);
        self.parallel_batches
            .set(self.parallel_batches.get() + batches);
    }

    /// Record the outcome of one incremental refresh: panes kept from
    /// their retained graph, panes re-walked, and the mutated bytes the
    /// backend reported. Like the plan counters, these come from a
    /// deterministic decision, so live runs and replays agree exactly.
    pub fn note_incr(&self, hits: u64, rewalks: u64, dirty_bytes: u64) {
        self.vincr_hits.set(self.vincr_hits.get() + hits);
        self.vincr_rewalks.set(self.vincr_rewalks.get() + rewalks);
        self.dirty_bytes.set(self.dirty_bytes.get() + dirty_bytes);
    }

    /// Start or stop recording the address spans metered reads touch.
    /// While on, every logical read — cache hit or miss — logs its
    /// requested span so vincr can index what each pane depends on.
    /// Speculative traffic (prefetch hints, planner span pulls) is
    /// deliberately excluded: a prefetched byte nobody decoded must not
    /// force a re-walk.
    pub fn set_touched_tracking(&self, on: bool) {
        self.track_touched.set(on);
    }

    /// Whether touched-span recording is on.
    pub fn touched_tracking(&self) -> bool {
        self.track_touched.get()
    }

    /// Drain the recorded touched spans (in access order, with adjacent
    /// requests coalesced).
    pub fn take_touched(&self) -> Vec<(u64, u64)> {
        std::mem::take(&mut *self.touched.borrow_mut())
    }

    fn note_touched(&self, addr: u64, len: u64) {
        if len == 0 || !self.track_touched.get() {
            return;
        }
        let mut touched = self.touched.borrow_mut();
        if let Some(last) = touched.last_mut() {
            if last.0 + last.1 == addr {
                last.1 += len;
                return;
            }
        }
        touched.push((addr, len));
    }

    /// A thread-shareable raw view of the wire, if the backend supports
    /// overlapped reads (see [`TargetBackend::sync_view`]).
    pub fn sync_view(&self) -> Option<&dyn crate::backend::SyncRead> {
        self.backend.sync_view()
    }

    /// Pull one planner-scheduled span into the cache, metering the
    /// whole aligned span as a single packet when possible (the same
    /// accounting as a prefetch hint, but driven by the cost-based plan
    /// rather than a distiller guess). Returns the packets sent. No-op
    /// on uncached targets; never faults.
    pub fn fetch_planned_span(&self, addr: u64, len: u64) -> u64 {
        let Some(cache) = self.cache else { return 0 };
        if len == 0 {
            return 0;
        }
        let (packets, blocks) = self.fetch_span(cache, addr, len.min(MAX_PREFETCH));
        self.note_saved(blocks.saturating_sub(packets));
        packets
    }

    fn account(&self, addr: u64, len: u64) {
        let cost = self.profile.cost_ns(len);
        self.reads.set(self.reads.get() + 1);
        self.bytes.set(self.bytes.get() + len);
        self.virtual_ns.set(self.virtual_ns.get() + cost);
        if let Some(t) = &self.tracer {
            t.on_wire_packet(addr, len, cost);
        }
    }

    fn note_saved(&self, n: u64) {
        self.packets_saved.set(self.packets_saved.get() + n);
    }

    fn note_hit(&self, addr: u64, len: u64) {
        self.cache_hits.set(self.cache_hits.get() + 1);
        if let Some(t) = &self.tracer {
            t.on_cache_hit(addr, len);
        }
    }

    fn note_fault(&self, addr: u64) {
        self.faults.set(self.faults.get() + 1);
        if let Some(t) = &self.tracer {
            t.on_fault(addr);
        }
    }

    /// Convert a wire error, counting a fault only for real target memory
    /// faults — a replay divergence is a tooling error, not a wild read.
    fn wire_err(&self, addr: u64, e: BackendError) -> BridgeError {
        if matches!(e, BackendError::Mem(_)) {
            self.note_fault(addr);
        }
        BridgeError::from(e)
    }

    /// Ensure every block overlapping `[addr, addr+len)` is resident,
    /// metering one packet per fetched block (and one exact-span packet
    /// per unmappable block, which a subsequent serve will fault on).
    /// Returns the number of wire packets sent.
    fn meter_range_cached(&self, cache: &BlockCache, addr: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let bs = cache.block_size();
        let mut packets = 0u64;
        let mut base = cache.base_of(addr);
        let last = cache.base_of(addr + len - 1);
        while base <= last {
            if cache.contains(base) {
                self.note_hit(base, bs);
            } else {
                let mut block = vec![0u8; bs as usize];
                if self.backend.read(base, &mut block).is_ok() {
                    self.account(base, bs);
                    self.cache_misses.set(self.cache_misses.get() + 1);
                    cache.insert(base, block.into_boxed_slice());
                } else {
                    // The block's page is unmapped; pay for the doomed
                    // exact request (the serve path reports the fault).
                    let start = base.max(addr);
                    let end = (base + bs).min(addr + len);
                    self.account(start, end - start);
                }
                packets += 1;
            }
            base += bs;
        }
        packets
    }

    /// Serve `[addr, addr+len)` from resident blocks, falling back to the
    /// image for absent ones — which faults at exactly the address an
    /// uncached read would, since blocks never span pages.
    fn serve_cached(&self, cache: &BlockCache, addr: u64, out: &mut [u8]) -> Result<()> {
        let bs = cache.block_size();
        let mut pos = 0usize;
        while pos < out.len() {
            let a = addr + pos as u64;
            let base = cache.base_of(a);
            let off = (a - base) as usize;
            let n = (bs as usize - off).min(out.len() - pos);
            if cache.contains(base) {
                cache.copy_from(base, off, &mut out[pos..pos + n]);
            } else {
                self.backend
                    .read(a, &mut out[pos..pos + n])
                    .map_err(|e| self.wire_err(a, e))?;
            }
            pos += n;
        }
        Ok(())
    }

    fn read_through_cache(&self, cache: &BlockCache, addr: u64, out: &mut [u8]) -> Result<()> {
        if out.is_empty() {
            return Ok(());
        }
        let packets = self.meter_range_cached(cache, addr, out.len() as u64);
        if packets == 0 {
            self.note_saved(1);
        }
        self.serve_cached(cache, addr, out)
    }

    /// Read raw bytes (metered).
    pub fn read(&self, addr: u64, out: &mut [u8]) -> Result<()> {
        self.note_touched(addr, out.len() as u64);
        match self.cache {
            None => {
                self.account(addr, out.len() as u64);
                self.backend
                    .read(addr, out)
                    .map_err(|e| self.wire_err(addr, e))
            }
            Some(c) => self.read_through_cache(c, addr, out),
        }
    }

    /// Read an unsigned little-endian integer of `size` bytes (metered).
    pub fn read_uint(&self, addr: u64, size: usize) -> Result<u64> {
        self.note_touched(addr, size as u64);
        match self.cache {
            None => {
                self.account(addr, size as u64);
                let mut buf = [0u8; 8];
                self.backend
                    .read(addr, &mut buf[..size])
                    .map_err(|e| self.wire_err(addr, e))?;
                Ok(ktypes::read_uint(&buf, size))
            }
            Some(c) => {
                let mut buf = [0u8; 8];
                self.read_through_cache(c, addr, &mut buf[..size])?;
                Ok(ktypes::read_uint(&buf, size))
            }
        }
    }

    /// Read a signed integer (metered).
    pub fn read_int(&self, addr: u64, size: usize) -> Result<i64> {
        self.note_touched(addr, size as u64);
        match self.cache {
            None => {
                self.account(addr, size as u64);
                let mut buf = [0u8; 8];
                self.backend
                    .read(addr, &mut buf[..size])
                    .map_err(|e| self.wire_err(addr, e))?;
                Ok(ktypes::read_int(&buf, size))
            }
            Some(c) => {
                let mut buf = [0u8; 8];
                self.read_through_cache(c, addr, &mut buf[..size])?;
                Ok(ktypes::read_int(&buf, size))
            }
        }
    }

    /// Read a NUL-terminated C string, metered as one packet per 64-byte
    /// chunk actually pulled (the terminator travels too; a fault pays for
    /// the chunks up to and including the failing probe).
    pub fn read_cstr(&self, addr: u64, max: usize) -> Result<String> {
        let res = self.backend.read_cstr(addr, max);
        if let Err(BackendError::Capture(msg)) = &res {
            // A backend (replay) failure, not a target fault: nothing
            // travelled on the recorded wire, so nothing is metered.
            return Err(BridgeError::Capture(msg.clone()));
        }
        let fetched = match &res {
            Ok(s) => ((s.len() as u64) + 1).min(max as u64),
            Err(BackendError::Mem(MemError::Unmapped { addr: fault })) => {
                fault.saturating_sub(addr) + 1
            }
            Err(_) => 1,
        };
        self.note_touched(addr, fetched);
        match self.cache {
            None => {
                let mut rem = fetched;
                let mut off = 0u64;
                while rem > 0 {
                    let n = rem.min(CSTR_CHUNK);
                    self.account(addr + off, n);
                    off += n;
                    rem -= n;
                }
            }
            Some(c) => {
                let packets = self.meter_range_cached(c, addr, fetched);
                if packets == 0 && fetched > 0 {
                    self.note_saved(1);
                }
            }
        }
        res.map_err(|e| self.wire_err(addr, e))
    }

    /// Whether `addr` is mapped (metered as a 1-byte probe). Errors only
    /// when the backend itself fails (e.g. a replay divergence).
    pub fn is_mapped(&self, addr: u64) -> Result<bool> {
        self.note_touched(addr, 1);
        self.account(addr, 1);
        self.backend.probe(addr).map_err(BridgeError::from)
    }

    /// Pull every absent block covering `[addr, addr+len)` — the whole
    /// aligned span as ONE packet when possible, degrading to per-block
    /// fetches of the mapped blocks when the span touches unmapped pages
    /// (holes are skipped silently; a later serve reports the fault).
    /// Returns `(packets sent, blocks fetched)`. `len` must be non-zero.
    fn fetch_span(&self, cache: &BlockCache, addr: u64, len: u64) -> (u64, u64) {
        let bs = cache.block_size();
        let start = cache.base_of(addr);
        let end = cache.base_of(addr + len - 1) + bs;
        let mut missing = 0u64;
        let mut base = start;
        while base < end {
            if !cache.contains(base) {
                missing += 1;
            }
            base += bs;
        }
        if missing == 0 {
            return (0, 0);
        }
        let span = end - start;
        let mut buf = vec![0u8; span as usize];
        if self.backend.read(start, &mut buf).is_ok() {
            self.account(start, span);
            self.cache_misses.set(self.cache_misses.get() + missing);
            let mut base = start;
            while base < end {
                if !cache.contains(base) {
                    let off = (base - start) as usize;
                    cache.insert(
                        base,
                        buf[off..off + bs as usize].to_vec().into_boxed_slice(),
                    );
                }
                base += bs;
            }
            (1, missing)
        } else {
            let mut fetched = 0u64;
            let mut base = start;
            while base < end {
                if !cache.contains(base) {
                    let mut block = vec![0u8; bs as usize];
                    if self.backend.read(base, &mut block).is_ok() {
                        self.account(base, bs);
                        self.cache_misses.set(self.cache_misses.get() + 1);
                        cache.insert(base, block.into_boxed_slice());
                        fetched += 1;
                    }
                }
                base += bs;
            }
            (fetched, fetched)
        }
    }

    /// Hint that `[addr, addr+len)` is about to be walked. With the cache
    /// enabled, pulls the covering blocks in a single span packet (capped
    /// at one page); uncached targets ignore the hint entirely, keeping
    /// the baseline cost model untouched. Hints never fault.
    pub fn prefetch(&self, addr: u64, len: u64) {
        if self.plan_mode.get() {
            // The plan's scheduled spans own prefetching; ad-hoc hints
            // from the distillers would double-pull (and double-count).
            return;
        }
        let Some(cache) = self.cache else { return };
        if len == 0 || !cache.config().prefetch {
            return;
        }
        let (packets, blocks) = self.fetch_span(cache, addr, len.min(MAX_PREFETCH));
        // Fetching N blocks in fewer packets saves the difference.
        self.note_saved(blocks.saturating_sub(packets));
    }

    /// Execute a batch of reads, coalescing adjacent/overlapping requests
    /// into minimal wire spans when the cache is enabled. Returns one
    /// buffer per request, in request order — byte-identical to issuing
    /// the requests one by one.
    pub fn read_many(&self, plan: &ReadPlan) -> Result<Vec<Vec<u8>>> {
        match self.cache {
            None => {
                // Uncached: the baseline cost model, one packet per request
                // (`read` logs each request's touched span).
                plan.reqs
                    .iter()
                    .map(|&(addr, len)| {
                        let mut buf = vec![0u8; len as usize];
                        self.read(addr, &mut buf)?;
                        Ok(buf)
                    })
                    .collect()
            }
            Some(cache) => {
                for &(addr, len) in &plan.reqs {
                    self.note_touched(addr, len);
                }
                let mut packets = 0u64;
                if cache.config().coalesce {
                    // Each merged span travels as one packet.
                    for &(addr, len) in &plan.spans() {
                        packets += self.fetch_span(cache, addr, len).0;
                    }
                } else {
                    // Ablation knob: each request meters on its own,
                    // exactly like a loop of `read` calls.
                    for &(addr, len) in &plan.reqs {
                        packets += self.meter_range_cached(cache, addr, len);
                    }
                }
                // An uncached bridge would have paid one packet per request.
                self.note_saved((plan.reqs.len() as u64).saturating_sub(packets));
                plan.reqs
                    .iter()
                    .map(|&(addr, len)| {
                        let mut buf = vec![0u8; len as usize];
                        self.serve_cached(cache, addr, &mut buf)?;
                        Ok(buf)
                    })
                    .collect()
            }
        }
    }

    /// Load a value of type `ty` from `addr`, decoding scalars and
    /// returning aggregates as lvalues.
    pub fn load(&self, addr: u64, ty: TypeId) -> Result<CValue> {
        match &self.types.get(ty).kind {
            TypeKind::Prim(p) => {
                let size = p.size() as usize;
                if size == 0 {
                    return Ok(CValue::Int { value: 0, ty });
                }
                let v = if p.signed() {
                    self.read_int(addr, size)?
                } else {
                    self.read_uint(addr, size)? as i64
                };
                Ok(CValue::Int { value: v, ty })
            }
            TypeKind::Enum(e) => {
                let v = self.read_int(addr, e.size as usize)?;
                Ok(CValue::Int { value: v, ty })
            }
            TypeKind::Pointer(_) => {
                // Pointer width comes from the registry, not a literal 8,
                // so a 32-bit target image meters (and decodes) honestly.
                let size = self.types.size_of(ty) as usize;
                let v = self.read_uint(addr, size)?;
                Ok(CValue::Ptr { addr: v, ty })
            }
            TypeKind::Struct(_) | TypeKind::Array { .. } => Ok(CValue::LValue { addr, ty }),
            TypeKind::Func(_) => Ok(CValue::Ptr { addr, ty }),
        }
    }

    /// Resolve a global symbol to an lvalue of its declared type.
    pub fn symbol_value(&self, name: &str) -> Result<CValue> {
        let sym = self
            .symbols
            .lookup(name)
            .ok_or_else(|| BridgeError::UnknownIdent(name.to_string()))?;
        match sym.ty {
            Some(ty) => Ok(CValue::LValue { addr: sym.addr, ty }),
            None => Ok(CValue::Int {
                value: sym.addr as i64,
                ty: self.u64_type()?,
            }),
        }
    }

    fn u64_type(&self) -> Result<TypeId> {
        self.types
            .find("unsigned long")
            .ok_or_else(|| BridgeError::Eval("u64 type not interned".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use ksim::workload::{self, WorkloadConfig};

    #[test]
    fn reads_accumulate_virtual_time() {
        let (img, _t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let target = Target::new(
            &img.mem,
            &img.types,
            &img.symbols,
            LatencyProfile::kgdb_rpi400(),
        );
        let _ = target.read_uint(roots.init_task, 8).unwrap();
        let s = target.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes, 8);
        assert!(s.virtual_ns >= 4_900_000);
        target.reset_stats();
        assert_eq!(target.stats(), TargetStats::default());
    }

    #[test]
    fn symbol_value_gives_typed_lvalue() {
        let (img, t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let target = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        let v = target.symbol_value("init_task").unwrap();
        assert_eq!(v.address(), Some(roots.init_task));
        assert_eq!(v.type_id(), Some(t.task.task_struct));
        assert!(matches!(
            target.symbol_value("no_such_global"),
            Err(BridgeError::UnknownIdent(_))
        ));
    }

    #[test]
    fn load_decodes_scalars_by_type() {
        let (img, t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let target = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        let (pid_off, pid_ty) = img.types.field_path(t.task.task_struct, "pid").unwrap();
        let v = target.load(roots.init_task + pid_off, pid_ty).unwrap();
        assert_eq!(v.as_int(), Some(0));
        // Aggregates come back as lvalues.
        let v = target.load(roots.init_task, t.task.task_struct).unwrap();
        assert!(matches!(v, CValue::LValue { .. }));
    }

    #[test]
    fn dangling_pointer_read_faults() {
        let (img, _t, _roots) = workload::build(&WorkloadConfig::default()).finish();
        let target = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        assert!(matches!(
            target.read_uint(0xdead_0000_0000, 8),
            Err(BridgeError::Mem(_))
        ));
        assert_eq!(target.stats().faults, 1, "wild read counted");
    }

    #[test]
    fn cached_reads_hit_after_block_fetch() {
        let (img, _t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let cache = BlockCache::new(CacheConfig::default());
        let target = Target::with_cache(
            &img.mem,
            &img.types,
            &img.symbols,
            LatencyProfile::kgdb_rpi400(),
            &cache,
        );
        let a = target.read_uint(roots.init_task, 8).unwrap();
        let s1 = target.stats();
        assert_eq!(s1.cache_misses, 1);
        assert_eq!(s1.reads, 1, "one block packet");
        assert_eq!(s1.bytes, 256, "a whole block travelled");
        // Re-read and read a neighbour inside the same block: both free.
        let b = target.read_uint(roots.init_task, 8).unwrap();
        let _ = target.read_uint(roots.init_task + 8, 8).unwrap();
        assert_eq!(a, b);
        let s2 = target.stats();
        assert_eq!(s2.reads, 1, "no further packets");
        assert_eq!(s2.cache_hits, 2);
        assert_eq!(s2.packets_saved, 2);
        assert_eq!(s2.virtual_ns, s1.virtual_ns);
    }

    #[test]
    fn cached_and_uncached_reads_agree_including_faults() {
        let (img, _t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let cache = BlockCache::new(CacheConfig::default());
        let plain = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        let cached = Target::with_cache(
            &img.mem,
            &img.types,
            &img.symbols,
            LatencyProfile::free(),
            &cache,
        );
        for addr in [roots.init_task, roots.init_task + 3, 0xdead_0000_0000] {
            for size in [1usize, 2, 4, 8] {
                assert_eq!(
                    format!("{:?}", plain.read_uint(addr, size)),
                    format!("{:?}", cached.read_uint(addr, size)),
                    "addr {addr:#x} size {size}"
                );
            }
        }
    }

    #[test]
    fn bump_epoch_invalidates_cached_blocks() {
        let (mut img, _t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let cache = BlockCache::new(CacheConfig::default());
        {
            let target = Target::with_cache(
                &img.mem,
                &img.types,
                &img.symbols,
                LatencyProfile::free(),
                &cache,
            );
            let _ = target.read_uint(roots.init_task, 8).unwrap();
            assert!(!cache.is_empty());
        }
        // The kernel "resumes" and rewrites memory.
        img.mem.write_uint(roots.init_task, 8, 0x4242);
        cache.bump_epoch();
        let target = Target::with_cache(
            &img.mem,
            &img.types,
            &img.symbols,
            LatencyProfile::free(),
            &cache,
        );
        assert_eq!(target.read_uint(roots.init_task, 8).unwrap(), 0x4242);
        assert_eq!(target.stats().cache_misses, 1, "stale block re-fetched");
    }

    #[test]
    fn read_plan_merges_adjacent_and_overlapping_spans() {
        let mut plan = ReadPlan::new();
        plan.add(0x100, 8);
        plan.add(0x108, 8); // adjacent
        plan.add(0x104, 8); // overlapping
        plan.add(0x200, 4); // disjoint
        assert_eq!(plan.spans(), vec![(0x100, 16), (0x200, 4)]);
    }

    #[test]
    fn read_many_coalesces_into_fewer_packets() {
        let (img, _t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let cache = BlockCache::new(CacheConfig::default());
        let cached = Target::with_cache(
            &img.mem,
            &img.types,
            &img.symbols,
            LatencyProfile::kgdb_rpi400(),
            &cache,
        );
        let plain = Target::new(
            &img.mem,
            &img.types,
            &img.symbols,
            LatencyProfile::kgdb_rpi400(),
        );
        let mut plan = ReadPlan::new();
        for i in 0..8u64 {
            plan.add(roots.init_task + 8 * i, 8);
        }
        let a = cached.read_many(&plan).unwrap();
        let b = plain.read_many(&plan).unwrap();
        assert_eq!(a, b, "coalesced results identical");
        assert!(
            cached.stats().reads < plain.stats().reads,
            "coalesced: {} uncoalesced: {}",
            cached.stats().reads,
            plain.stats().reads
        );
        assert!(cached.stats().packets_saved >= 7);
    }

    #[test]
    fn cstr_metering_counts_chunks_fetched() {
        let (img, _t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let target = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        // "swapper/0" + NUL = 10 bytes: one chunk, 10 wire bytes — not a
        // flat 64 the old metering charged regardless of length.
        let (comm_off, _) = img
            .types
            .field_path(img.types.find("task_struct").unwrap(), "comm")
            .unwrap();
        let s = target.read_cstr(roots.init_task + comm_off, 16).unwrap();
        assert_eq!(s, "swapper/0");
        let st = target.stats();
        assert_eq!(st.reads, 1);
        assert_eq!(st.bytes, s.len() as u64 + 1);
    }

    #[test]
    fn tracer_clock_tracks_stats_exactly() {
        use std::rc::Rc;
        let (img, _t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let cache = BlockCache::new(CacheConfig::default());
        let tracer = Rc::new(Tracer::new());
        let mut target = Target::with_cache(
            &img.mem,
            &img.types,
            &img.symbols,
            LatencyProfile::kgdb_rpi400(),
            &cache,
        );
        target.set_tracer(tracer.clone());
        // Exercise every metering path: cached reads (miss + hit), a
        // coalesced plan, a cstr, a probe, and a wild fault.
        let _ = target.read_uint(roots.init_task, 8).unwrap();
        let _ = target.read_uint(roots.init_task, 8).unwrap();
        let mut plan = ReadPlan::new();
        plan.add(roots.init_task + 512, 8);
        plan.add(roots.init_task + 520, 8);
        let _ = target.read_many(&plan).unwrap();
        let _ = target.read_cstr(roots.init_task + 0x10, 16);
        let _ = target.is_mapped(roots.init_task);
        let _ = target.read_uint(0xdead_0000_0000, 8);
        let s = target.stats();
        let c = tracer.clock();
        assert_eq!(c.packets, s.reads);
        assert_eq!(c.bytes, s.bytes);
        assert_eq!(c.virtual_ns, s.virtual_ns);
        assert_eq!(c.cache_hits, s.cache_hits);
        assert_eq!(c.faults, s.faults);
        // The wire log saw every packet and every hit.
        assert!(tracer.wire_seen() >= s.reads + s.cache_hits);
        let evs = tracer.wire_events();
        assert_eq!(
            evs.iter().filter(|e| !e.cache_hit && e.len > 0).count() as u64,
            s.reads
        );
        assert!(evs.iter().any(|e| e.fault), "the wild read is flagged");
    }

    #[test]
    fn record_then_replay_reproduces_values_and_stats() {
        use crate::{BackendKind, RecordBackend, Recorder, ReplayBackend, ReplayState, SimBackend};
        let (img, _t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let (comm_off, _) = img
            .types
            .field_path(img.types.find("task_struct").unwrap(), "comm")
            .unwrap();
        let drive = |t: &Target| -> (u64, String, bool) {
            let v = t.read_uint(roots.init_task, 8).unwrap();
            let s = t.read_cstr(roots.init_task + comm_off, 16).unwrap();
            let mut plan = ReadPlan::new();
            plan.add(roots.init_task, 8);
            plan.add(roots.init_task + 8, 8);
            let _ = t.read_many(&plan).unwrap();
            let m = t.is_mapped(roots.init_task).unwrap();
            assert!(t.read_uint(0xdead_0000_0000, 8).is_err());
            (v, s, m)
        };
        // Live run, recording every wire operation through the cache.
        let cache = BlockCache::new(CacheConfig::default());
        let tape = Rc::new(Recorder::new());
        let mut live = Target::over(
            Box::new(RecordBackend::new(
                Box::new(SimBackend::new(&img.mem)),
                tape.clone(),
            )),
            &img.types,
            &img.symbols,
            LatencyProfile::kgdb_rpi400(),
        );
        live.set_cache(&cache);
        let live_out = drive(&live);
        let live_stats = live.stats();
        assert_eq!(live_stats.backend, BackendKind::Record);
        let cap = tape.capture(
            BackendKind::Sim,
            LatencyProfile::kgdb_rpi400(),
            Some(CacheConfig::default()),
            serde_json::Value::Null,
        );
        // Round-trip the capture through its JSON form, then replay
        // against an identical metering stack — zero image access.
        let state = ReplayState::new(crate::Capture::from_json(&cap.to_json()).unwrap());
        let cache2 = BlockCache::new(CacheConfig::default());
        let mut rep = Target::over(
            Box::new(ReplayBackend::new(&state)),
            &img.types,
            &img.symbols,
            LatencyProfile::kgdb_rpi400(),
        );
        rep.set_cache(&cache2);
        let rep_out = drive(&rep);
        assert_eq!(rep_out, live_out, "replayed values byte-identical");
        assert_eq!(
            rep.stats(),
            TargetStats {
                backend: BackendKind::Replay,
                ..live_stats
            },
            "all counters byte-identical; only the identity differs"
        );
        assert_eq!(state.remaining(), 0, "every recorded event consumed");
    }

    #[test]
    fn touched_tracking_logs_logical_reads_not_prefetch() {
        let (img, _t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let cache = BlockCache::new(CacheConfig::default());
        let target = Target::with_cache(
            &img.mem,
            &img.types,
            &img.symbols,
            LatencyProfile::free(),
            &cache,
        );
        // Off by default: nothing is logged.
        let _ = target.read_uint(roots.init_task, 8).unwrap();
        assert!(target.take_touched().is_empty());
        target.set_touched_tracking(true);
        assert!(target.touched_tracking());
        // Prefetch pulls a whole span but is speculative — not touched.
        target.prefetch(roots.init_task + 0x800, 256);
        let _ = target.read_uint(roots.init_task, 8).unwrap();
        let _ = target.read_uint(roots.init_task + 8, 4).unwrap(); // coalesces
        let _ = target.read_uint(roots.init_task + 0x100, 8).unwrap();
        assert_eq!(
            target.take_touched(),
            vec![(roots.init_task, 12), (roots.init_task + 0x100, 8)]
        );
        // The drain resets the log; cache hits still record.
        let _ = target.read_uint(roots.init_task, 8).unwrap();
        assert_eq!(target.take_touched(), vec![(roots.init_task, 8)]);
    }

    #[test]
    fn note_incr_accumulates_and_resets() {
        let (img, _t, _roots) = workload::build(&WorkloadConfig::default()).finish();
        let target = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        target.note_incr(3, 1, 20);
        target.note_incr(2, 0, 0);
        let s = target.stats();
        assert_eq!((s.vincr_hits, s.vincr_rewalks, s.dirty_bytes), (5, 1, 20));
        target.reset_stats();
        assert_eq!(target.stats(), TargetStats::default());
    }

    #[test]
    fn prefetch_pulls_span_as_one_packet() {
        let (img, _t, roots) = workload::build(&WorkloadConfig::default()).finish();
        let cache = BlockCache::new(CacheConfig::default());
        let target = Target::with_cache(
            &img.mem,
            &img.types,
            &img.symbols,
            LatencyProfile::kgdb_rpi400(),
            &cache,
        );
        target.prefetch(roots.init_task, 1024);
        let s = target.stats();
        assert_eq!(s.reads, 1, "one span packet");
        assert!(s.bytes >= 1024);
        // Reads inside the span are now free.
        let _ = target.read_uint(roots.init_task + 512, 8).unwrap();
        assert_eq!(target.stats().reads, 1);
        // Prefetch on an uncached target is a strict no-op.
        let plain = Target::new(
            &img.mem,
            &img.types,
            &img.symbols,
            LatencyProfile::kgdb_rpi400(),
        );
        plain.prefetch(roots.init_task, 1024);
        assert_eq!(plain.stats(), TargetStats::default());
    }
}
