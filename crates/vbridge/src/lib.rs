//! The debugger bridge: Visualinux's stand-in for GDB.
//!
//! `vbridge` attaches to a [`kmem`] memory image the way GDB attaches to a
//! stopped QEMU guest or a KGDB serial target:
//!
//! * every byte flows through [`Target::read`], which *meters virtual
//!   time* according to a [`LatencyProfile`] — the per-packet/per-byte
//!   cost model that reproduces the paper's Table 4 (GDB-QEMU localhost
//!   vs. KGDB on a Raspberry Pi 400, ~50× slower per object);
//! * C expressions in ViewCL's `${...}` escapes are evaluated by
//!   [`eval::Evaluator`] against the type registry (the DWARF stand-in),
//!   supporting `->`/`.`/`[]`, casts, arithmetic, comparisons,
//!   `container_of`, and calls into registered [`HelperFn`]s — the
//!   equivalent of the paper's ~500 lines of GDB scripts that expose
//!   inline kernel functions like `cpu_rq()` and `mte_to_node()`;
//! * an optional snapshot [`BlockCache`] services repeat reads for free
//!   while the kernel stays stopped, coalesces batched reads
//!   ([`Target::read_many`]) into minimal wire spans, and accepts
//!   prefetch hints ([`Target::prefetch`]) from container distillers —
//!   invalidated wholesale when the session resumes the target;
//! * the wire below the metering layer is a pluggable [`TargetBackend`]:
//!   [`SimBackend`] serves a live `ksim` image, [`RecordBackend`] wraps
//!   any backend and captures every wire operation into a serializable
//!   [`Capture`] (`.vrec`), and [`ReplayBackend`] serves a capture back
//!   deterministically with zero image access — metering, cache,
//!   coalescing and tracing behave identically over all three.

mod backend;
mod cache;
mod error;
pub mod eval;
mod helpers;
mod planner;
mod profile;
mod record;
mod replay;
mod target;

pub use backend::{
    BackendError, BackendKind, DirtyInfo, DirtySet, SimBackend, SyncRead, TargetBackend,
};
pub use cache::{BlockCache, CacheConfig, CacheSnapshot};
pub use error::{BridgeError, ErrorKind, Result};
pub use eval::Evaluator;
pub use helpers::{HelperFn, HelperRegistry};
pub use planner::{ExecMode, PlanMode, SpanPlanner};
pub use profile::LatencyProfile;
pub use record::{Capture, RecordBackend, Recorder, WireEvent, VREC_VERSION};
pub use replay::{ReplayBackend, ReplayState};
pub use target::{ReadPlan, Target, TargetStats};
