//! The C expression evaluator behind `${...}`.
//!
//! ViewCL embeds C expressions for everything the DSL itself does not
//! cover: reading globals (`cpu_rq(0)->cfs.tasks_timeline`), calling
//! helpers (`mte_to_node(@this)`), unpacking compact data
//! (`(entry >> 3) & 0xf`). The evaluator implements the useful subset of
//! GDB's expression language:
//!
//! * member access `.` / `->` (lenient: `.` auto-derefs pointers, like the
//!   convenience debuggers extend over strict C),
//! * array indexing, address-of, dereference, casts, `sizeof`,
//! * full arithmetic / bitwise / comparison / logical operator ladder with
//!   C precedence, and the ternary conditional,
//! * calls into registered helpers plus the `container_of` builtin,
//! * `@name` escapes resolved from the caller-provided environment (the
//!   ViewCL interpreter's local scope).

use std::collections::HashMap;

use ktypes::{CValue, TypeId, TypeKind};

use crate::helpers::HelperRegistry;
use crate::target::Target;
use crate::{BridgeError, Result};

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    AtIdent(String),
    Num(i64),
    Str(String),
    Punct(&'static str),
    Eof,
}

fn lex(src: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    let err = |msg: &str| BridgeError::Parse {
        expr: src.to_string(),
        msg: msg.to_string(),
    };
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '0'..='9' => {
                let start = i;
                if c == '0' && i + 1 < b.len() && (b[i + 1] == b'x' || b[i + 1] == b'X') {
                    i += 2;
                    while i < b.len() && (b[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = u64::from_str_radix(&src[start + 2..i], 16)
                        .map_err(|_| err("bad hex literal"))?;
                    out.push(Tok::Num(v as i64));
                } else {
                    while i < b.len() && (b[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let v: u64 = src[start..i].parse().map_err(|_| err("bad literal"))?;
                    out.push(Tok::Num(v as i64));
                }
                // Swallow C integer suffixes (UL, ULL, …).
                while i < b.len() && matches!(b[i] as char, 'u' | 'U' | 'l' | 'L') {
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && matches!(b[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_string()));
            }
            '@' => {
                i += 1;
                let start = i;
                while i < b.len() && matches!(b[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    i += 1;
                }
                if start == i {
                    return Err(err("dangling `@`"));
                }
                out.push(Tok::AtIdent(src[start..i].to_string()));
            }
            '"' => {
                i += 1;
                let start = i;
                while i < b.len() && b[i] != b'"' {
                    i += 1;
                }
                if i == b.len() {
                    return Err(err("unterminated string"));
                }
                out.push(Tok::Str(src[start..i].to_string()));
                i += 1;
            }
            _ => {
                let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
                let p2: Option<&'static str> = match two {
                    "->" => Some("->"),
                    "<<" => Some("<<"),
                    ">>" => Some(">>"),
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "==" => Some("=="),
                    "!=" => Some("!="),
                    "&&" => Some("&&"),
                    "||" => Some("||"),
                    _ => None,
                };
                if let Some(p) = p2 {
                    out.push(Tok::Punct(p));
                    i += 2;
                    continue;
                }
                let p1: &'static str = match c {
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '&' => "&",
                    '|' => "|",
                    '^' => "^",
                    '~' => "~",
                    '!' => "!",
                    '(' => "(",
                    ')' => ")",
                    '[' => "[",
                    ']' => "]",
                    '.' => ".",
                    ',' => ",",
                    '?' => "?",
                    ':' => ":",
                    '<' => "<",
                    '>' => ">",
                    _ => return Err(err(&format!("unexpected character `{c}`"))),
                };
                out.push(Tok::Punct(p1));
                i += 1;
            }
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

// --------------------------------------------------------------- parser --

/// Expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// String literal (helper arguments only).
    Str(String),
    /// Plain identifier (symbol / constant / helper name).
    Ident(String),
    /// `@name` environment reference.
    AtRef(String),
    /// `base.field` / `base->field`.
    Member {
        /// Receiver expression.
        base: Box<Expr>,
        /// Member name.
        field: String,
        /// True when written with `->`.
        arrow: bool,
    },
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Unary operator application.
    Unary(&'static str, Box<Expr>),
    /// Binary operator application.
    Binary(&'static str, Box<Expr>, Box<Expr>),
    /// Conditional `c ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `(type)expr` cast.
    Cast(String, Box<Expr>),
    /// `sizeof(type)` / `sizeof(expr)` (type form resolved at eval).
    SizeofType(String),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
}

struct Parser<'s> {
    toks: Vec<Tok>,
    pos: usize,
    src: &'s str,
}

impl<'s> Parser<'s> {
    fn err(&self, msg: impl Into<String>) -> BridgeError {
        BridgeError::Parse {
            expr: self.src.to_string(),
            msg: msg.into(),
        }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: &str) -> Result<()> {
        if self.eat(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    /// Try to parse a C type name starting at the cursor; returns the name
    /// string (e.g. `"struct task_struct *"`). Only commits on success.
    fn try_type_name(&mut self) -> Option<String> {
        let start = self.pos;
        let mut words: Vec<String> = Vec::new();
        while let Tok::Ident(w) = self.peek() {
            let keep = matches!(
                w.as_str(),
                "struct" | "union" | "enum" | "unsigned" | "signed" | "const" | "long" | "short"
            ) || words
                .last()
                .is_some_and(|l| matches!(l.as_str(), "struct" | "union" | "enum"))
                || words.is_empty();
            if !keep {
                break;
            }
            words.push(w.clone());
            self.pos += 1;
            // A bare single identifier could be a value, not a type; only
            // continue greedily for multi-word forms.
            if !matches!(
                words[0].as_str(),
                "struct" | "union" | "enum" | "unsigned" | "signed" | "const" | "long" | "short"
            ) {
                break;
            }
        }
        if words.is_empty() {
            self.pos = start;
            return None;
        }
        let mut name = words.join(" ");
        let mut stars = 0;
        while self.eat("*") {
            stars += 1;
        }
        for _ in 0..stars {
            name.push_str(" *");
        }
        Some(name)
    }

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr> {
        let c = self.parse_bin(0)?;
        if self.eat("?") {
            let a = self.parse_expr()?;
            self.expect(":")?;
            let b = self.parse_expr()?;
            return Ok(Expr::Ternary(Box::new(c), Box::new(a), Box::new(b)));
        }
        Ok(c)
    }

    fn bin_op(&self, min_prec: u8) -> Option<(&'static str, u8)> {
        let op = match self.peek() {
            Tok::Punct(p) => *p,
            _ => return None,
        };
        let prec = match op {
            "||" => 1,
            "&&" => 2,
            "|" => 3,
            "^" => 4,
            "&" => 5,
            "==" | "!=" => 6,
            "<" | ">" | "<=" | ">=" => 7,
            "<<" | ">>" => 8,
            "+" | "-" => 9,
            "*" | "/" | "%" => 10,
            _ => return None,
        };
        if prec < min_prec {
            None
        } else {
            Some((op, prec))
        }
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = self.bin_op(min_prec) {
            self.pos += 1;
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if let Tok::Ident(w) = self.peek() {
            if w == "sizeof" {
                self.pos += 1;
                if self.eat("(") {
                    if let Some(tn) = self.try_type_name() {
                        if self.eat(")") {
                            return Ok(Expr::SizeofType(tn));
                        }
                        return Err(self.err("expected `)` after sizeof type"));
                    }
                    let e = self.parse_expr()?;
                    self.expect(")")?;
                    return Ok(Expr::SizeofExpr(Box::new(e)));
                }
                let e = self.parse_unary()?;
                return Ok(Expr::SizeofExpr(Box::new(e)));
            }
        }
        for op in ["!", "~", "-", "+", "*", "&"] {
            if matches!(self.peek(), Tok::Punct(p) if *p == op) {
                self.pos += 1;
                let e = self.parse_unary()?;
                return Ok(if op == "+" {
                    e
                } else {
                    Expr::Unary(op, Box::new(e))
                });
            }
        }
        // Cast: `(` typename `)` unary — with backtracking.
        if matches!(self.peek(), Tok::Punct("(")) {
            let save = self.pos;
            self.pos += 1;
            if let Some(tn) = self.try_type_name() {
                if self.eat(")") {
                    // Heuristic: a parenthesized single identifier followed
                    // by an operator/eof is grouping, not a cast.
                    let is_multiword = tn.contains(' ') || tn.contains('*');
                    let next_starts_operand = matches!(
                        self.peek(),
                        Tok::Ident(_) | Tok::AtIdent(_) | Tok::Num(_) | Tok::Punct("(")
                    ) || matches!(self.peek(), Tok::Punct(p) if ["*", "&", "-", "~", "!"].contains(p));
                    if is_multiword || next_starts_operand {
                        let e = self.parse_unary()?;
                        return Ok(Expr::Cast(tn, Box::new(e)));
                    }
                }
            }
            self.pos = save;
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            let arrow = if self.eat(".") {
                Some(false)
            } else if self.eat("->") {
                Some(true)
            } else {
                None
            };
            if let Some(arrow) = arrow {
                let field = match self.next() {
                    Tok::Ident(f) => f,
                    t => return Err(self.err(format!("expected field name, got {t:?}"))),
                };
                e = Expr::Member {
                    base: Box::new(e),
                    field,
                    arrow,
                };
            } else if self.eat("[") {
                let idx = self.parse_expr()?;
                self.expect("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if matches!(self.peek(), Tok::Punct("(")) {
                if let Expr::Ident(name) = &e {
                    let name = name.clone();
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat(")") {
                                break;
                            }
                            self.expect(",")?;
                        }
                    }
                    e = Expr::Call(name, args);
                } else {
                    return Err(self.err("only named helpers are callable"));
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.next() {
            Tok::Num(n) => Ok(Expr::Num(n)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Ident(n) => {
                // `struct foo` appears as an argument of container_of;
                // fold the tag keyword into one identifier.
                if matches!(n.as_str(), "struct" | "union" | "enum") {
                    if let Tok::Ident(tag) = self.peek().clone() {
                        self.pos += 1;
                        return Ok(Expr::Ident(format!("{n} {tag}")));
                    }
                }
                Ok(Expr::Ident(n))
            }
            Tok::AtIdent(n) => Ok(Expr::AtRef(n)),
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect(")")?;
                Ok(e)
            }
            t => Err(self.err(format!("unexpected token {t:?}"))),
        }
    }
}

/// Parse a C expression into an AST.
pub fn parse(src: &str) -> Result<Expr> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, src };
    let e = p.parse_expr()?;
    if !matches!(p.peek(), Tok::Eof) {
        return Err(p.err(format!("trailing tokens at {:?}", p.peek())));
    }
    Ok(e)
}

// ------------------------------------------------------------ evaluator --

/// Evaluates parsed C expressions against a [`Target`].
pub struct Evaluator<'t, 'img> {
    /// The debug target.
    pub target: &'t Target<'img>,
    /// Registered helper functions.
    pub helpers: &'t HelperRegistry,
}

impl<'t, 'img> Evaluator<'t, 'img> {
    /// Create an evaluator.
    pub fn new(target: &'t Target<'img>, helpers: &'t HelperRegistry) -> Self {
        Evaluator { target, helpers }
    }

    /// Parse and evaluate `src` with an empty environment.
    pub fn eval_str(&self, src: &str) -> Result<CValue> {
        self.eval_str_with(src, &HashMap::new())
    }

    /// Parse and evaluate `src`; `@name` references resolve from `env`.
    pub fn eval_str_with(&self, src: &str, env: &HashMap<String, CValue>) -> Result<CValue> {
        let ast = parse(src)?;
        self.eval(&ast, env)
    }

    /// Evaluate a parsed expression.
    pub fn eval(&self, e: &Expr, env: &HashMap<String, CValue>) -> Result<CValue> {
        match e {
            Expr::Num(n) => Ok(self.int(*n)),
            Expr::Str(s) => Ok(CValue::Str(s.clone())),
            Expr::AtRef(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| BridgeError::UnknownIdent(format!("@{name}"))),
            Expr::Ident(name) => self.resolve_ident(name, env),
            Expr::Member { base, field, arrow } => {
                let b = self.eval(base, env)?;
                self.member(b, field, *arrow)
            }
            Expr::Index(base, idx) => {
                let b = self.eval(base, env)?;
                let i = self
                    .eval(idx, env)?
                    .as_int()
                    .ok_or_else(|| BridgeError::Eval("index must be integer".into()))?;
                self.index(b, i)
            }
            Expr::Call(name, args) => self.call(name, args, env),
            Expr::Unary(op, a) => self.unary(op, a, env),
            Expr::Binary(op, a, b) => self.binary(op, a, b, env),
            Expr::Ternary(c, a, b) => {
                if self.rvalue(self.eval(c, env)?)?.is_truthy() {
                    self.eval(a, env)
                } else {
                    self.eval(b, env)
                }
            }
            Expr::Cast(tyname, a) => {
                let v = self.eval(a, env)?;
                self.cast(tyname, v)
            }
            Expr::SizeofType(tyname) => {
                let ty = self.find_type(tyname)?;
                Ok(self.int(self.target.types.size_of(ty) as i64))
            }
            Expr::SizeofExpr(a) => {
                let v = self.eval(a, env)?;
                let ty = v
                    .type_id()
                    .ok_or_else(|| BridgeError::Eval("sizeof of untyped value".into()))?;
                Ok(self.int(self.target.types.size_of(ty) as i64))
            }
        }
    }

    /// C lvalue-to-rvalue conversion: a *scalar* lvalue (int, enum,
    /// pointer variable) loads its value; aggregates stay as lvalues.
    /// This is what lets `current_task->mm` work when `current_task` is a
    /// global *pointer variable*, exactly like GDB.
    pub fn rvalue(&self, v: CValue) -> Result<CValue> {
        match v {
            CValue::LValue { addr, ty } => match &self.target.types.get(ty).kind {
                TypeKind::Prim(_) | TypeKind::Enum(_) | TypeKind::Pointer(_) => {
                    self.target.load(addr, ty)
                }
                _ => Ok(CValue::LValue { addr, ty }),
            },
            other => Ok(other),
        }
    }

    fn int(&self, v: i64) -> CValue {
        let ty = self
            .target
            .types
            .find("long")
            .expect("long interned by CommonTypes");
        CValue::Int { value: v, ty }
    }

    fn find_type(&self, name: &str) -> Result<TypeId> {
        let base = name.trim_end_matches([' ', '*']);
        let stars = name.matches('*').count();
        let mut ty = self
            .target
            .types
            .find(base)
            .ok_or_else(|| BridgeError::Type(ktypes::TypeError::UnknownType(base.into())))?;
        for _ in 0..stars {
            ty = self.target.types.find_pointer_to(ty).ok_or_else(|| {
                BridgeError::Eval(format!("pointer type for `{base}` not interned"))
            })?;
        }
        Ok(ty)
    }

    fn resolve_ident(&self, name: &str, _env: &HashMap<String, CValue>) -> Result<CValue> {
        if let Ok(c) = self.target.types.lookup_const(name) {
            let ty =
                c.ty.unwrap_or_else(|| self.target.types.find("long").expect("long interned"));
            return Ok(CValue::Int { value: c.value, ty });
        }
        self.target.symbol_value(name)
    }

    fn member(&self, base: CValue, field: &str, _arrow: bool) -> Result<CValue> {
        // Lenient auto-deref: both `.` and `->` accept pointers and lvalues.
        let base = self.rvalue(base)?;
        let (addr, ty) = match base {
            CValue::Ptr { addr, ty } => {
                if addr == 0 {
                    return Err(BridgeError::Eval(format!(
                        "NULL pointer dereference accessing `.{field}`"
                    )));
                }
                (addr, self.target.types.pointee(ty)?)
            }
            CValue::LValue { addr, ty } => (addr, ty),
            other => {
                return Err(BridgeError::Eval(format!(
                    "member access `.{field}` on non-object {other:?}"
                )))
            }
        };
        let def = self.target.types.struct_def(ty).ok_or_else(|| {
            BridgeError::Type(ktypes::TypeError::NotAggregate(
                self.target.types.display_name(ty),
            ))
        })?;
        let f = def.field(field).ok_or_else(|| {
            BridgeError::Type(ktypes::TypeError::UnknownField {
                ty: def.name.clone(),
                field: field.to_string(),
            })
        })?;
        match f.bit {
            Some(bf) => {
                let storage = self
                    .target
                    .read_uint(addr + f.offset, bf.storage_size as usize)?;
                Ok(CValue::Int {
                    value: bf.extract(storage),
                    ty: f.ty,
                })
            }
            None => self.target.load(addr + f.offset, f.ty),
        }
    }

    fn index(&self, base: CValue, i: i64) -> Result<CValue> {
        let base = match &base {
            CValue::LValue { ty, .. }
                if matches!(self.target.types.get(*ty).kind, TypeKind::Pointer(_)) =>
            {
                self.rvalue(base)?
            }
            _ => base,
        };
        match base {
            CValue::LValue { addr, ty } => match &self.target.types.get(ty).kind {
                TypeKind::Array { elem, len } => {
                    if i < 0 || i as u64 >= *len {
                        return Err(BridgeError::Type(ktypes::TypeError::IndexOutOfRange {
                            len: *len as usize,
                            index: i as usize,
                        }));
                    }
                    let esz = self.target.types.size_of(*elem);
                    self.target.load(addr + esz * i as u64, *elem)
                }
                _ => Err(BridgeError::Eval("indexing a non-array lvalue".into())),
            },
            CValue::Ptr { addr, ty } => {
                let elem = self.target.types.pointee(ty)?;
                let esz = self.target.types.size_of(elem).max(1);
                self.target
                    .load(addr.wrapping_add(esz.wrapping_mul(i as u64)), elem)
            }
            other => Err(BridgeError::Eval(format!("indexing non-pointer {other:?}"))),
        }
    }

    fn call(&self, name: &str, args: &[Expr], env: &HashMap<String, CValue>) -> Result<CValue> {
        if name == "container_of" {
            // container_of(ptr, type, member)
            if args.len() != 3 {
                return Err(BridgeError::Eval("container_of takes 3 arguments".into()));
            }
            let ptr = self.eval(&args[0], env)?;
            let addr = ptr
                .address()
                .or_else(|| ptr.as_u64())
                .ok_or_else(|| BridgeError::Eval("container_of needs a pointer".into()))?;
            let tyname = expr_to_typename(&args[1])?;
            let member = expr_to_path(&args[2])?;
            let ty = self.find_type(&tyname)?;
            let (off, _) = self.target.types.field_path(ty, &member)?;
            let pty = self
                .target
                .types
                .find_pointer_to(ty)
                .ok_or_else(|| BridgeError::Eval("pointer type not interned".into()))?;
            return Ok(CValue::Ptr {
                addr: addr.wrapping_sub(off),
                ty: pty,
            });
        }
        let helper = self
            .helpers
            .get(name)
            .ok_or_else(|| BridgeError::UnknownHelper(name.to_string()))?
            .clone();
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            let v = self.eval(a, env)?;
            // Scalar lvalues convert to values; struct lvalues pass as
            // object references (helpers take addresses).
            let v = match &v {
                CValue::LValue { ty, .. }
                    if matches!(
                        self.target.types.get(*ty).kind,
                        TypeKind::Prim(_) | TypeKind::Enum(_) | TypeKind::Pointer(_)
                    ) =>
                {
                    self.rvalue(v)?
                }
                _ => v,
            };
            vals.push(v);
        }
        helper(self.target, &vals)
    }

    fn unary(&self, op: &str, a: &Expr, env: &HashMap<String, CValue>) -> Result<CValue> {
        if op == "&" {
            let v = self.eval(a, env)?;
            return match v {
                CValue::LValue { addr, ty } => {
                    let pty = self
                        .target
                        .types
                        .find_pointer_to(ty)
                        .ok_or_else(|| BridgeError::Eval("pointer type not interned".into()))?;
                    Ok(CValue::Ptr { addr, ty: pty })
                }
                CValue::Ptr { .. } => Ok(v),
                other => Err(BridgeError::Eval(format!(
                    "cannot take address of {other:?}"
                ))),
            };
        }
        if op == "*" {
            let v = self.eval(a, env)?;
            return match v {
                CValue::Ptr { addr, ty } => {
                    let pointee = self.target.types.pointee(ty)?;
                    self.target.load(addr, pointee)
                }
                CValue::LValue { .. } => Ok(v),
                other => Err(BridgeError::Eval(format!("cannot dereference {other:?}"))),
            };
        }
        let v = self.rvalue(self.eval(a, env)?)?;
        let v = v
            .as_int()
            .ok_or_else(|| BridgeError::Eval(format!("unary `{op}` on non-integer")))?;
        Ok(self.int(match op {
            "-" => v.wrapping_neg(),
            "~" => !v,
            "!" => (v == 0) as i64,
            _ => return Err(BridgeError::Eval(format!("unknown unary `{op}`"))),
        }))
    }

    fn binary(
        &self,
        op: &str,
        a: &Expr,
        b: &Expr,
        env: &HashMap<String, CValue>,
    ) -> Result<CValue> {
        // Short-circuit logicals first.
        if op == "&&" {
            let l = self.rvalue(self.eval(a, env)?)?;
            if !l.is_truthy() {
                return Ok(self.int(0));
            }
            let r = self.rvalue(self.eval(b, env)?)?;
            return Ok(self.int(r.is_truthy() as i64));
        }
        if op == "||" {
            let l = self.rvalue(self.eval(a, env)?)?;
            if l.is_truthy() {
                return Ok(self.int(1));
            }
            let r = self.rvalue(self.eval(b, env)?)?;
            return Ok(self.int(r.is_truthy() as i64));
        }
        let l = self.rvalue(self.eval(a, env)?)?;
        let r = self.rvalue(self.eval(b, env)?)?;

        // Pointer arithmetic: Ptr ± Int scales by pointee size (like GDB).
        if matches!(op, "+" | "-") {
            if let CValue::Ptr { addr, ty } = l {
                if let Some(n) = r.as_int() {
                    if !matches!(r, CValue::Ptr { .. }) {
                        let esz = self
                            .target
                            .types
                            .pointee(ty)
                            .map(|p| self.target.types.size_of(p))
                            .unwrap_or(1)
                            .max(1);
                        let delta = esz.wrapping_mul(n.unsigned_abs());
                        let addr = if (op == "+") == (n >= 0) {
                            addr.wrapping_add(delta)
                        } else {
                            addr.wrapping_sub(delta)
                        };
                        return Ok(CValue::Ptr { addr, ty });
                    }
                }
            }
        }

        let (lv, rv) = match (l.as_int(), r.as_int()) {
            (Some(x), Some(y)) => (x, y),
            _ => {
                // String equality for decorated comparisons.
                if let (CValue::Str(x), CValue::Str(y)) = (&l, &r) {
                    let eq = x == y;
                    return Ok(self.int(match op {
                        "==" => eq as i64,
                        "!=" => !eq as i64,
                        _ => return Err(BridgeError::Eval(format!("operator `{op}` on strings"))),
                    }));
                }
                return Err(BridgeError::Eval(format!(
                    "operator `{op}` on non-integers"
                )));
            }
        };
        let out = match op {
            "+" => lv.wrapping_add(rv),
            "-" => lv.wrapping_sub(rv),
            "*" => lv.wrapping_mul(rv),
            "/" => {
                if rv == 0 {
                    return Err(BridgeError::Eval("division by zero".into()));
                }
                lv.wrapping_div(rv)
            }
            "%" => {
                if rv == 0 {
                    return Err(BridgeError::Eval("modulo by zero".into()));
                }
                lv.wrapping_rem(rv)
            }
            "&" => lv & rv,
            "|" => lv | rv,
            "^" => lv ^ rv,
            "<<" => ((lv as u64) << (rv as u32 & 63)) as i64,
            ">>" => ((lv as u64) >> (rv as u32 & 63)) as i64,
            "==" => (lv == rv) as i64,
            "!=" => (lv != rv) as i64,
            "<" => ((lv as u64) < (rv as u64)) as i64,
            ">" => ((lv as u64) > (rv as u64)) as i64,
            "<=" => ((lv as u64) <= (rv as u64)) as i64,
            ">=" => ((lv as u64) >= (rv as u64)) as i64,
            _ => return Err(BridgeError::Eval(format!("unknown operator `{op}`"))),
        };
        Ok(self.int(out))
    }

    fn cast(&self, tyname: &str, v: CValue) -> Result<CValue> {
        let ty = self.find_type(tyname)?;
        let v = match &v {
            CValue::LValue { ty: vt, .. }
                if matches!(
                    self.target.types.get(*vt).kind,
                    TypeKind::Prim(_) | TypeKind::Enum(_) | TypeKind::Pointer(_)
                ) =>
            {
                self.rvalue(v)?
            }
            _ => v,
        };
        let raw = v
            .as_int()
            .or_else(|| v.address().map(|a| a as i64))
            .ok_or_else(|| BridgeError::Eval("cast of non-scalar".into()))?;
        match &self.target.types.get(ty).kind {
            TypeKind::Pointer(_) => Ok(CValue::Ptr {
                addr: raw as u64,
                ty,
            }),
            TypeKind::Prim(p) => {
                let size = p.size() as usize;
                let mut buf = [0u8; 8];
                ktypes::write_int(&mut buf, 8, raw as u64);
                let val = if size == 0 {
                    0
                } else if p.signed() {
                    ktypes::read_int(&buf, size)
                } else {
                    ktypes::read_uint(&buf, size) as i64
                };
                Ok(CValue::Int { value: val, ty })
            }
            TypeKind::Enum(_) => Ok(CValue::Int { value: raw, ty }),
            _ => Ok(CValue::LValue {
                addr: raw as u64,
                ty,
            }),
        }
    }
}

fn expr_to_typename(e: &Expr) -> Result<String> {
    match e {
        Expr::Ident(n) => Ok(n.clone()),
        Expr::Binary("*", a, _) => Ok(format!("{} *", expr_to_typename(a)?)),
        _ => Err(BridgeError::Eval(format!(
            "expected a type name, got {e:?}"
        ))),
    }
}

fn expr_to_path(e: &Expr) -> Result<String> {
    match e {
        Expr::Ident(n) => Ok(n.clone()),
        Expr::Member { base, field, .. } => Ok(format!("{}.{}", expr_to_path(base)?, field)),
        _ => Err(BridgeError::Eval(format!(
            "expected a member path, got {e:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyProfile;
    use ksim::workload::{self, WorkloadConfig};

    struct Fixture {
        img: ksim::KernelImage,
        types: ksim::workload::AllTypes,
        roots: ksim::workload::WorkloadRoots,
    }

    fn fixture() -> Fixture {
        let (img, types, roots) = workload::build(&WorkloadConfig::default()).finish();
        Fixture { img, types, roots }
    }

    fn with_eval<R>(fx: &Fixture, f: impl FnOnce(&Evaluator<'_, '_>) -> R) -> R {
        let target = Target::new(
            &fx.img.mem,
            &fx.img.types,
            &fx.img.symbols,
            LatencyProfile::free(),
        );
        let mut helpers = HelperRegistry::new();
        helpers.register("add_one", |_t, args| {
            let v = args[0].as_int().unwrap_or(0);
            Ok(CValue::Int {
                value: v + 1,
                ty: args[0].type_id().unwrap(),
            })
        });
        let ev = Evaluator::new(&target, &helpers);
        f(&ev)
    }

    #[test]
    fn arithmetic_and_precedence() {
        let fx = fixture();
        with_eval(&fx, |ev| {
            assert_eq!(ev.eval_str("1 + 2 * 3").unwrap().as_int(), Some(7));
            assert_eq!(ev.eval_str("(1 + 2) * 3").unwrap().as_int(), Some(9));
            assert_eq!(ev.eval_str("0x10 | 0x01").unwrap().as_int(), Some(0x11));
            assert_eq!(ev.eval_str("1 << 4").unwrap().as_int(), Some(16));
            assert_eq!(ev.eval_str("10 % 4").unwrap().as_int(), Some(2));
            assert_eq!(ev.eval_str("-5 + 3").unwrap().as_int(), Some(-2));
            assert_eq!(ev.eval_str("!0 && 3 < 4").unwrap().as_int(), Some(1));
            assert_eq!(ev.eval_str("1 ? 10 : 20").unwrap().as_int(), Some(10));
            assert_eq!(ev.eval_str("0 ? 10 : 20").unwrap().as_int(), Some(20));
        });
    }

    #[test]
    fn division_by_zero_is_an_error_not_a_panic() {
        let fx = fixture();
        with_eval(&fx, |ev| {
            assert!(ev.eval_str("1 / 0").is_err());
            assert!(ev.eval_str("1 % 0").is_err());
        });
    }

    #[test]
    fn symbols_and_member_chains() {
        let fx = fixture();
        let init = fx.roots.init_task;
        with_eval(&fx, |ev| {
            let v = ev.eval_str("init_task").unwrap();
            assert_eq!(v.address(), Some(init));
            assert_eq!(ev.eval_str("init_task.pid").unwrap().as_int(), Some(0));
            // Through a pointer with ->, plus nested fields.
            let v = ev.eval_str("(&init_task)->se.vruntime").unwrap();
            assert_eq!(v.as_int(), Some(0));
        });
    }

    #[test]
    fn enum_and_macro_constants_resolve() {
        let fx = fixture();
        with_eval(&fx, |ev| {
            assert_eq!(ev.eval_str("maple_leaf_64").unwrap().as_int(), Some(1));
            assert_eq!(ev.eval_str("VM_WRITE").unwrap().as_int(), Some(2));
            assert_eq!(ev.eval_str("NULL").unwrap().as_int(), Some(0));
        });
    }

    #[test]
    fn casts_and_sizeof() {
        let fx = fixture();
        let init = fx.roots.init_task;
        let task_size = fx.img.types.size_of(fx.types.task.task_struct) as i64;
        with_eval(&fx, |ev| {
            assert_eq!(
                ev.eval_str("sizeof(struct task_struct)").unwrap().as_int(),
                Some(task_size)
            );
            assert_eq!(ev.eval_str("sizeof(u32)").unwrap().as_int(), Some(4));
            // Cast an address to a typed pointer and walk it.
            let e = format!("((struct task_struct *){init})->pid");
            assert_eq!(ev.eval_str(&e).unwrap().as_int(), Some(0));
            // Truncating casts.
            assert_eq!(ev.eval_str("(u8)0x1ff").unwrap().as_int(), Some(0xff));
            assert_eq!(ev.eval_str("(s8)0xff").unwrap().as_int(), Some(-1));
        });
    }

    #[test]
    fn container_of_builtin() {
        let fx = fixture();
        let leader = fx.roots.leaders[0];
        let (tasks_off, _) = fx
            .img
            .types
            .field_path(fx.types.task.task_struct, "tasks")
            .unwrap();
        let node = leader + tasks_off;
        with_eval(&fx, |ev| {
            let e = format!("container_of({node}, struct task_struct, tasks)->pid");
            assert_eq!(ev.eval_str(&e).unwrap().as_int(), Some(100));
        });
    }

    #[test]
    fn at_refs_resolve_from_env() {
        let fx = fixture();
        let init = fx.roots.init_task;
        with_eval(&fx, |ev| {
            let mut env = HashMap::new();
            env.insert(
                "this".to_string(),
                CValue::LValue {
                    addr: init,
                    ty: fx.types.task.task_struct,
                },
            );
            let v = ev.eval_str_with("@this.comm", &env).unwrap();
            assert!(
                matches!(v, CValue::LValue { .. }),
                "char[16] is an aggregate"
            );
            assert_eq!(
                ev.eval_str_with("@this.pid == 0", &env).unwrap().as_int(),
                Some(1)
            );
            assert!(ev.eval_str_with("@missing", &env).is_err());
        });
    }

    #[test]
    fn helpers_are_callable() {
        let fx = fixture();
        with_eval(&fx, |ev| {
            assert_eq!(ev.eval_str("add_one(41)").unwrap().as_int(), Some(42));
            assert!(matches!(
                ev.eval_str("no_such_helper(1)"),
                Err(BridgeError::UnknownHelper(_))
            ));
        });
    }

    #[test]
    fn array_indexing_on_globals() {
        let fx = fixture();
        with_eval(&fx, |ev| {
            // irq_desc[11].action is non-NULL (workload requests irq 11).
            let v = ev.eval_str("irq_desc[11].action").unwrap();
            assert!(v.as_u64().unwrap() != 0);
            let v = ev.eval_str("irq_desc[3].action").unwrap();
            assert_eq!(v.as_u64(), Some(0));
            // Chained: first action's irq field round-trips.
            assert_eq!(
                ev.eval_str("irq_desc[11].action->irq").unwrap().as_int(),
                Some(11)
            );
        });
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let fx = fixture();
        with_eval(&fx, |ev| {
            // &init_task + 1 advances by sizeof(task_struct).
            let base = ev.eval_str("&init_task").unwrap().address().unwrap();
            let next = ev.eval_str("&init_task + 1").unwrap().address().unwrap();
            let tsz = fx.img.types.size_of(fx.types.task.task_struct);
            assert_eq!(next - base, tsz);
        });
    }

    #[test]
    fn bitfield_members_extract() {
        let fx = fixture();
        // Find a slab and check the packed inuse/objects bitfields.
        let slab_ty = fx.img.types.find("slab").unwrap();
        let _ = slab_ty;
        with_eval(&fx, |ev| {
            // slab_caches list head exists; walk one node via container_of.
            let first = ev.eval_str("slab_caches.next").unwrap().as_u64().unwrap();
            let e = format!("container_of({first}, struct kmem_cache, list)->object_size");
            let sz = ev.eval_str(&e).unwrap().as_int().unwrap();
            assert!(sz > 0);
        });
    }

    #[test]
    fn null_deref_is_an_error() {
        let fx = fixture();
        with_eval(&fx, |ev| {
            assert!(ev.eval_str("((struct task_struct *)0)->pid").is_err());
        });
    }

    #[test]
    fn parse_errors_carry_the_source() {
        let fx = fixture();
        with_eval(&fx, |ev| {
            match ev.eval_str("1 +") {
                Err(BridgeError::Parse { expr, .. }) => assert_eq!(expr, "1 +"),
                other => panic!("expected parse error, got {other:?}"),
            }
            assert!(ev.eval_str("$bad").is_err());
            assert!(ev.eval_str("a b c").is_err());
        });
    }
}

#[cfg(test)]
mod prop_tests {
    //! Property: the evaluator's integer semantics agree with Rust's
    //! wrapping i64 arithmetic under C precedence, for randomly generated
    //! expression trees.

    use super::*;
    use crate::{HelperRegistry, LatencyProfile, Target};
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum E {
        N(i64),
        Add(Box<E>, Box<E>),
        Sub(Box<E>, Box<E>),
        Mul(Box<E>, Box<E>),
        And(Box<E>, Box<E>),
        Or(Box<E>, Box<E>),
        Xor(Box<E>, Box<E>),
        Shl(Box<E>, u8),
        Neg(Box<E>),
        Not(Box<E>),
    }

    impl E {
        fn src(&self) -> String {
            match self {
                E::N(n) => {
                    if *n < 0 {
                        format!("(0 - {})", n.unsigned_abs())
                    } else {
                        format!("{n}")
                    }
                }
                E::Add(a, b) => format!("({} + {})", a.src(), b.src()),
                E::Sub(a, b) => format!("({} - {})", a.src(), b.src()),
                E::Mul(a, b) => format!("({} * {})", a.src(), b.src()),
                E::And(a, b) => format!("({} & {})", a.src(), b.src()),
                E::Or(a, b) => format!("({} | {})", a.src(), b.src()),
                E::Xor(a, b) => format!("({} ^ {})", a.src(), b.src()),
                E::Shl(a, s) => format!("({} << {s})", a.src()),
                E::Neg(a) => format!("(-{})", a.src()),
                E::Not(a) => format!("(~{})", a.src()),
            }
        }

        fn eval(&self) -> i64 {
            match self {
                E::N(n) => *n,
                E::Add(a, b) => a.eval().wrapping_add(b.eval()),
                E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
                E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
                E::And(a, b) => a.eval() & b.eval(),
                E::Or(a, b) => a.eval() | b.eval(),
                E::Xor(a, b) => a.eval() ^ b.eval(),
                E::Shl(a, s) => ((a.eval() as u64) << (*s as u32 & 63)) as i64,
                E::Neg(a) => a.eval().wrapping_neg(),
                E::Not(a) => !a.eval(),
            }
        }
    }

    fn arb_expr() -> impl Strategy<Value = E> {
        let leaf = any::<i32>().prop_map(|n| E::N(n as i64));
        leaf.prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(a.into(), b.into())),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(a.into(), b.into())),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(a.into(), b.into())),
                (inner.clone(), 0u8..32).prop_map(|(a, s)| E::Shl(a.into(), s)),
                inner.clone().prop_map(|a| E::Neg(a.into())),
                inner.prop_map(|a| E::Not(a.into())),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_arithmetic_matches_rust(e in arb_expr()) {
            // A minimal image: just the interned `long` type.
            let mut types = ktypes::TypeRegistry::new();
            types.prim(ktypes::Prim::I64);
            let mem = kmem::Mem::new();
            let symbols = kmem::SymbolTable::new();
            let target = Target::new(&mem, &types, &symbols, LatencyProfile::free());
            let helpers = HelperRegistry::new();
            let ev = Evaluator::new(&target, &helpers);
            let got = ev.eval_str(&e.src()).unwrap().as_int().unwrap();
            prop_assert_eq!(got, e.eval(), "expr: {}", e.src());
        }

        #[test]
        fn prop_comparisons_are_unsigned(a: u64, b: u64) {
            let mut types = ktypes::TypeRegistry::new();
            types.prim(ktypes::Prim::I64);
            let mem = kmem::Mem::new();
            let symbols = kmem::SymbolTable::new();
            let target = Target::new(&mem, &types, &symbols, LatencyProfile::free());
            let helpers = HelperRegistry::new();
            let ev = Evaluator::new(&target, &helpers);
            let got = ev.eval_str(&format!("{a} < {b}")).unwrap().as_int().unwrap();
            prop_assert_eq!(got, (a < b) as i64, "kernel addresses compare unsigned");
        }
    }
}
