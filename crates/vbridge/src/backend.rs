//! Pluggable target backends.
//!
//! A [`TargetBackend`] is the *wire* below [`crate::Target`]: raw span
//! reads, mapped-address probes and C-string pulls against some stopped
//! kernel, reporting faults as [`BackendError`]s. Everything above the
//! wire — latency metering, the snapshot block cache, read coalescing,
//! tracing, fault accounting — lives once in `Target` and works the same
//! over *any* backend.
//!
//! Three backends ship:
//!
//! * [`SimBackend`] — today's `ksim` memory image, behavior-identical to
//!   the pre-trait bridge;
//! * [`crate::RecordBackend`] — wraps another backend and captures every
//!   wire operation (including faults) onto a tape for later replay;
//! * [`crate::ReplayBackend`] — serves a captured tape deterministically
//!   with zero image access, erroring loudly on any out-of-capture read.

use kmem::{Mem, MemError};

use crate::profile::LatencyProfile;

/// Which kind of backend a [`Target`](crate::Target) is metering over.
///
/// Threaded through [`TargetStats`](crate::TargetStats) and vtrace spans
/// so benchmark tables and traces can say *what* they measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Live `ksim` image behind the simulated debug stub.
    #[default]
    Sim,
    /// Live backend wrapped by a wire-capture recorder.
    Record,
    /// Deterministic replay of a `.vrec` capture; no image access.
    Replay,
}

impl BackendKind {
    /// Stable lowercase name (used in captures, stats and trace labels).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Record => "record",
            BackendKind::Replay => "replay",
        }
    }

    /// Parse the stable name back (capture deserialization).
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(BackendKind::Sim),
            "record" => Some(BackendKind::Record),
            "replay" => Some(BackendKind::Replay),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A normalized set of byte ranges mutated since the previous resume:
/// sorted, non-overlapping, non-adjacent `(addr, len)` spans.
///
/// This is the currency of incremental re-extraction (`vincr`): the
/// backend reports what the target wrote between stops, the session
/// intersects it with the spans each retained pane graph touched, and
/// only intersecting panes re-walk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    ranges: Vec<(u64, u64)>,
}

impl DirtySet {
    /// Normalize raw `(addr, len)` ranges: drop empties, sort, merge
    /// overlapping and adjacent spans. Deterministic for a given range
    /// *set* regardless of input order.
    pub fn from_ranges(raw: impl IntoIterator<Item = (u64, u64)>) -> DirtySet {
        let mut ranges: Vec<(u64, u64)> = raw.into_iter().filter(|&(_, len)| len > 0).collect();
        ranges.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::new();
        for (addr, len) in ranges {
            let end = addr.saturating_add(len);
            if let Some(last) = out.last_mut() {
                let last_end = last.0.saturating_add(last.1);
                if addr <= last_end {
                    if end > last_end {
                        last.1 = end - last.0;
                    }
                    continue;
                }
            }
            out.push((addr, len));
        }
        DirtySet { ranges: out }
    }

    /// The normalized spans.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// No byte is dirty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total dirty bytes.
    pub fn total_bytes(&self) -> u64 {
        self.ranges.iter().map(|&(_, len)| len).sum()
    }

    /// Whether `addr` lies in a dirty span.
    pub fn covers(&self, addr: u64) -> bool {
        let i = self.ranges.partition_point(|&(a, _)| a <= addr);
        i > 0 && {
            let (a, len) = self.ranges[i - 1];
            addr < a.saturating_add(len)
        }
    }

    /// Whether any dirty span overlaps any of `spans` (unnormalized ok).
    pub fn intersects(&self, spans: &[(u64, u64)]) -> bool {
        spans.iter().any(|&(addr, len)| {
            if len == 0 {
                return false;
            }
            let end = addr.saturating_add(len);
            // First dirty span that could start before `end`…
            let i = self.ranges.partition_point(|&(a, _)| a < end);
            // …must also end after `addr` to overlap.
            i > 0 && {
                let (a, l) = self.ranges[i - 1];
                a.saturating_add(l) > addr
            }
        })
    }
}

/// What a backend knows about mutations since the previous resume.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum DirtyInfo {
    /// The backend cannot say what changed: callers must assume every
    /// byte may have, and degrade to a full cache nuke + re-walk.
    #[default]
    Unknown,
    /// Exactly these ranges changed (and nothing else).
    Known(DirtySet),
}

impl DirtyInfo {
    /// The dirty set, when known.
    pub fn known(&self) -> Option<&DirtySet> {
        match self {
            DirtyInfo::Unknown => None,
            DirtyInfo::Known(set) => Some(set),
        }
    }
}

/// A failure reported by the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The target faulted: the access touched unmapped memory. Carries
    /// the exact faulting address so metering and diagnostics stay
    /// byte-identical across backends.
    Mem(MemError),
    /// The backend itself failed — for replay, a read that diverges from
    /// or runs past the capture. Always a loud, diagnostic error.
    Capture(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Mem(e) => write!(f, "target memory error: {e}"),
            BackendError::Capture(msg) => write!(f, "capture error: {msg}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<MemError> for BackendError {
    fn from(e: MemError) -> Self {
        BackendError::Mem(e)
    }
}

/// The wire under the metered [`Target`](crate::Target): raw reads plus
/// fault reporting and latency metadata. Object-safe so targets can be
/// composed over `Box<dyn TargetBackend>` (e.g. a recorder wrapping the
/// simulator).
pub trait TargetBackend {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// One-line description for diagnostics and trace metadata.
    fn describe(&self) -> String;

    /// Read `out.len()` bytes at `addr`, or fault.
    fn read(&self, addr: u64, out: &mut [u8]) -> Result<(), BackendError>;

    /// Whether `addr` is mapped (a 1-byte probe on the real wire).
    fn probe(&self, addr: u64) -> Result<bool, BackendError>;

    /// Read a NUL-terminated C string of at most `max` bytes at `addr`.
    /// On a fault the error carries the exact faulting address, which the
    /// metering layer charges for (chunks up to and including the probe).
    fn read_cstr(&self, addr: u64, max: usize) -> Result<String, BackendError>;

    /// The transport's native latency profile, if it has one (a replayed
    /// capture remembers the profile it was recorded under).
    fn native_profile(&self) -> Option<LatencyProfile> {
        None
    }

    /// Exchange dirty information at a resume boundary. `observed` is
    /// what the session saw on the live side (the sim image's mutation
    /// log); the return value is what the session must act on. The
    /// default — any backend without dirty support — discards the
    /// observation and reports [`DirtyInfo::Unknown`], degrading the
    /// caller to a full re-walk. Sim passes the observation through,
    /// Record additionally tapes it, Replay substitutes the taped set.
    fn resume_dirty(&self, observed: DirtyInfo) -> DirtyInfo {
        let _ = observed;
        DirtyInfo::Unknown
    }

    /// A thread-shareable raw view of the wire, if the transport can
    /// serve overlapped reads. The plan executor uses this to run
    /// discovery walks concurrently; backends whose ordering *is* their
    /// contract (record/replay tapes) return `None` and get the
    /// serializing plan mode instead.
    fn sync_view(&self) -> Option<&dyn SyncRead> {
        None
    }
}

/// Raw, unmetered span reads that may be issued from multiple threads
/// at once. `Sync` is a supertrait so `&dyn SyncRead` can cross a
/// `std::thread::scope` boundary.
pub trait SyncRead: Sync {
    /// Read `out.len()` bytes at `addr`, or fault.
    fn read_raw(&self, addr: u64, out: &mut [u8]) -> Result<(), BackendError>;
}

/// The first backend: a live `ksim` memory image. Behavior-identical to
/// the pre-trait bridge, which read the image directly.
pub struct SimBackend<'a> {
    mem: &'a Mem,
}

impl<'a> SimBackend<'a> {
    /// Attach to a memory image.
    pub fn new(mem: &'a Mem) -> Self {
        SimBackend { mem }
    }
}

impl TargetBackend for SimBackend<'_> {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    fn describe(&self) -> String {
        "sim: live ksim image".to_string()
    }

    fn read(&self, addr: u64, out: &mut [u8]) -> Result<(), BackendError> {
        self.mem.read(addr, out).map_err(BackendError::Mem)
    }

    fn probe(&self, addr: u64) -> Result<bool, BackendError> {
        Ok(self.mem.is_mapped(addr))
    }

    fn read_cstr(&self, addr: u64, max: usize) -> Result<String, BackendError> {
        self.mem.read_cstr(addr, max).map_err(BackendError::Mem)
    }

    fn resume_dirty(&self, observed: DirtyInfo) -> DirtyInfo {
        // The sim's owner observed the mutations directly; trust them.
        observed
    }

    fn sync_view(&self) -> Option<&dyn SyncRead> {
        Some(self)
    }
}

impl SyncRead for SimBackend<'_> {
    fn read_raw(&self, addr: u64, out: &mut [u8]) -> Result<(), BackendError> {
        self.mem.read(addr, out).map_err(BackendError::Mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in [BackendKind::Sim, BackendKind::Record, BackendKind::Replay] {
            assert_eq!(BackendKind::from_str_opt(k.as_str()), Some(k));
            assert_eq!(format!("{k}"), k.as_str());
        }
        assert_eq!(BackendKind::from_str_opt("gdb"), None);
    }

    #[test]
    fn dirty_set_normalizes_and_intersects() {
        let d = DirtySet::from_ranges(vec![(0x20, 8), (0x10, 8), (0x18, 8), (0x100, 0)]);
        assert_eq!(d.ranges(), &[(0x10, 24)]);
        assert_eq!(d.total_bytes(), 24);
        assert!(d.covers(0x10));
        assert!(d.covers(0x27));
        assert!(!d.covers(0x28));
        assert!(!d.covers(0xf));
        assert!(d.intersects(&[(0x27, 1)]));
        assert!(d.intersects(&[(0x0, 0x11)]));
        assert!(!d.intersects(&[(0x28, 100)]));
        assert!(!d.intersects(&[(0x0, 0x10)]));
        assert!(!d.intersects(&[(0x27, 0)]), "empty spans never intersect");
        assert!(DirtySet::default().is_empty());
        assert!(!DirtySet::default().intersects(&[(0, u64::MAX)]));
        // Order-insensitive normalization.
        let e = DirtySet::from_ranges(vec![(0x18, 8), (0x10, 8), (0x20, 8)]);
        assert_eq!(d, e);
    }

    #[test]
    fn default_backends_report_unknown_dirty_and_sim_passes_through() {
        struct Stub;
        impl TargetBackend for Stub {
            fn kind(&self) -> BackendKind {
                BackendKind::Sim
            }
            fn describe(&self) -> String {
                "stub".into()
            }
            fn read(&self, _: u64, _: &mut [u8]) -> Result<(), BackendError> {
                unreachable!()
            }
            fn probe(&self, _: u64) -> Result<bool, BackendError> {
                unreachable!()
            }
            fn read_cstr(&self, _: u64, _: usize) -> Result<String, BackendError> {
                unreachable!()
            }
        }
        let known = DirtyInfo::Known(DirtySet::from_ranges(vec![(8, 4)]));
        assert_eq!(Stub.resume_dirty(known.clone()), DirtyInfo::Unknown);
        let mem = Mem::new();
        let sim = SimBackend::new(&mem);
        assert_eq!(sim.resume_dirty(known.clone()), known);
        assert_eq!(sim.resume_dirty(DirtyInfo::Unknown), DirtyInfo::Unknown);
    }

    #[test]
    fn sim_backend_reads_and_faults_like_the_image() {
        let mut mem = Mem::new();
        mem.map(0x1000, 4096);
        mem.write_uint(0x1000, 8, 0xabcd);
        let b = SimBackend::new(&mem);
        let mut buf = [0u8; 8];
        b.read(0x1000, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 0xabcd);
        assert!(b.probe(0x1000).unwrap());
        assert!(!b.probe(0xdead_0000).unwrap());
        assert!(matches!(
            b.read(0xdead_0000, &mut buf),
            Err(BackendError::Mem(MemError::Unmapped { .. }))
        ));
        assert_eq!(b.kind(), BackendKind::Sim);
    }
}
