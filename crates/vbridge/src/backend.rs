//! Pluggable target backends.
//!
//! A [`TargetBackend`] is the *wire* below [`crate::Target`]: raw span
//! reads, mapped-address probes and C-string pulls against some stopped
//! kernel, reporting faults as [`BackendError`]s. Everything above the
//! wire — latency metering, the snapshot block cache, read coalescing,
//! tracing, fault accounting — lives once in `Target` and works the same
//! over *any* backend.
//!
//! Three backends ship:
//!
//! * [`SimBackend`] — today's `ksim` memory image, behavior-identical to
//!   the pre-trait bridge;
//! * [`crate::RecordBackend`] — wraps another backend and captures every
//!   wire operation (including faults) onto a tape for later replay;
//! * [`crate::ReplayBackend`] — serves a captured tape deterministically
//!   with zero image access, erroring loudly on any out-of-capture read.

use kmem::{Mem, MemError};

use crate::profile::LatencyProfile;

/// Which kind of backend a [`Target`](crate::Target) is metering over.
///
/// Threaded through [`TargetStats`](crate::TargetStats) and vtrace spans
/// so benchmark tables and traces can say *what* they measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Live `ksim` image behind the simulated debug stub.
    #[default]
    Sim,
    /// Live backend wrapped by a wire-capture recorder.
    Record,
    /// Deterministic replay of a `.vrec` capture; no image access.
    Replay,
}

impl BackendKind {
    /// Stable lowercase name (used in captures, stats and trace labels).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Record => "record",
            BackendKind::Replay => "replay",
        }
    }

    /// Parse the stable name back (capture deserialization).
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(BackendKind::Sim),
            "record" => Some(BackendKind::Record),
            "replay" => Some(BackendKind::Replay),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A failure reported by the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The target faulted: the access touched unmapped memory. Carries
    /// the exact faulting address so metering and diagnostics stay
    /// byte-identical across backends.
    Mem(MemError),
    /// The backend itself failed — for replay, a read that diverges from
    /// or runs past the capture. Always a loud, diagnostic error.
    Capture(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Mem(e) => write!(f, "target memory error: {e}"),
            BackendError::Capture(msg) => write!(f, "capture error: {msg}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<MemError> for BackendError {
    fn from(e: MemError) -> Self {
        BackendError::Mem(e)
    }
}

/// The wire under the metered [`Target`](crate::Target): raw reads plus
/// fault reporting and latency metadata. Object-safe so targets can be
/// composed over `Box<dyn TargetBackend>` (e.g. a recorder wrapping the
/// simulator).
pub trait TargetBackend {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// One-line description for diagnostics and trace metadata.
    fn describe(&self) -> String;

    /// Read `out.len()` bytes at `addr`, or fault.
    fn read(&self, addr: u64, out: &mut [u8]) -> Result<(), BackendError>;

    /// Whether `addr` is mapped (a 1-byte probe on the real wire).
    fn probe(&self, addr: u64) -> Result<bool, BackendError>;

    /// Read a NUL-terminated C string of at most `max` bytes at `addr`.
    /// On a fault the error carries the exact faulting address, which the
    /// metering layer charges for (chunks up to and including the probe).
    fn read_cstr(&self, addr: u64, max: usize) -> Result<String, BackendError>;

    /// The transport's native latency profile, if it has one (a replayed
    /// capture remembers the profile it was recorded under).
    fn native_profile(&self) -> Option<LatencyProfile> {
        None
    }

    /// A thread-shareable raw view of the wire, if the transport can
    /// serve overlapped reads. The plan executor uses this to run
    /// discovery walks concurrently; backends whose ordering *is* their
    /// contract (record/replay tapes) return `None` and get the
    /// serializing plan mode instead.
    fn sync_view(&self) -> Option<&dyn SyncRead> {
        None
    }
}

/// Raw, unmetered span reads that may be issued from multiple threads
/// at once. `Sync` is a supertrait so `&dyn SyncRead` can cross a
/// `std::thread::scope` boundary.
pub trait SyncRead: Sync {
    /// Read `out.len()` bytes at `addr`, or fault.
    fn read_raw(&self, addr: u64, out: &mut [u8]) -> Result<(), BackendError>;
}

/// The first backend: a live `ksim` memory image. Behavior-identical to
/// the pre-trait bridge, which read the image directly.
pub struct SimBackend<'a> {
    mem: &'a Mem,
}

impl<'a> SimBackend<'a> {
    /// Attach to a memory image.
    pub fn new(mem: &'a Mem) -> Self {
        SimBackend { mem }
    }
}

impl TargetBackend for SimBackend<'_> {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    fn describe(&self) -> String {
        "sim: live ksim image".to_string()
    }

    fn read(&self, addr: u64, out: &mut [u8]) -> Result<(), BackendError> {
        self.mem.read(addr, out).map_err(BackendError::Mem)
    }

    fn probe(&self, addr: u64) -> Result<bool, BackendError> {
        Ok(self.mem.is_mapped(addr))
    }

    fn read_cstr(&self, addr: u64, max: usize) -> Result<String, BackendError> {
        self.mem.read_cstr(addr, max).map_err(BackendError::Mem)
    }

    fn sync_view(&self) -> Option<&dyn SyncRead> {
        Some(self)
    }
}

impl SyncRead for SimBackend<'_> {
    fn read_raw(&self, addr: u64, out: &mut [u8]) -> Result<(), BackendError> {
        self.mem.read(addr, out).map_err(BackendError::Mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in [BackendKind::Sim, BackendKind::Record, BackendKind::Replay] {
            assert_eq!(BackendKind::from_str_opt(k.as_str()), Some(k));
            assert_eq!(format!("{k}"), k.as_str());
        }
        assert_eq!(BackendKind::from_str_opt("gdb"), None);
    }

    #[test]
    fn sim_backend_reads_and_faults_like_the_image() {
        let mut mem = Mem::new();
        mem.map(0x1000, 4096);
        mem.write_uint(0x1000, 8, 0xabcd);
        let b = SimBackend::new(&mem);
        let mut buf = [0u8; 8];
        b.read(0x1000, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 0xabcd);
        assert!(b.probe(0x1000).unwrap());
        assert!(!b.probe(0xdead_0000).unwrap());
        assert!(matches!(
            b.read(0xdead_0000, &mut buf),
            Err(BackendError::Mem(MemError::Unmapped { .. }))
        ));
        assert_eq!(b.kind(), BackendKind::Sim);
    }
}
