//! vtrace — span-based extraction tracing and the wire-level packet log.
//!
//! Table 4 reports end-of-run aggregates; this crate decomposes them.
//! Every pipeline stage (parse → interp → distiller walk → ViewQL →
//! render) opens a [`TraceSpan`]; every wire packet the bridge sends is
//! appended to a bounded [`WireLog`] ring buffer. Spans carry *inclusive*
//! counters measured as deltas of one monotone [`Counters`] clock, so the
//! per-span exclusive ("own") costs telescope: summed over any well-formed
//! tree they equal the root's inclusive totals **exactly**, in integer
//! nanoseconds — which is the reconciliation invariant the test suite
//! pins against `TargetStats`.
//!
//! The clock only ever advances when the bridge reports an event
//! ([`Tracer::on_wire_packet`], [`Tracer::on_cache_hit`],
//! [`Tracer::on_fault`]); it is *virtual* time, deterministic across runs.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use serde_json::{Map, Number, Value};

/// How many wire events the ring buffer retains by default.
pub const DEFAULT_WIRE_CAPACITY: usize = 4096;

/// Shared diagnostic formatting, so every layer of the stack renders
/// source positions the same way.
pub mod diag {
    /// The canonical byte-position phrase: `at byte N`. The ViewQL and
    /// ViewCL parsers (and anything else that reports a source offset)
    /// render through this one helper instead of hand-rolling formats.
    pub fn at_byte(pos: usize) -> String {
        format!("at byte {pos}")
    }

    /// Render `prefix` + position + message in the canonical shape:
    /// `"{prefix} at byte {pos}: {msg}"`.
    pub fn parse_error(prefix: &str, pos: usize, msg: &str) -> String {
        format!("{prefix} {}: {msg}", at_byte(pos))
    }
}

/// Cap on retained finished top-level spans, so a long session that
/// never drains them (e.g. a bench loop) cannot grow without bound.
const MAX_FINISHED: usize = 256;

/// What pipeline stage a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A pane's whole recorded history (synthetic root).
    Pane,
    /// One `vplot` extraction end to end.
    Extract,
    /// ViewCL parsing.
    Parse,
    /// ViewCL interpretation (contains the distiller spans).
    Interp,
    /// One distiller invocation (List/RBTree/XArray/… walk).
    Distill,
    /// Plan-mode extraction: walk-plan compilation, one scheduler wave,
    /// or one plan-node walk + span fetch.
    Plan,
    /// Incremental refresh: the dirty-set intersection decision plus
    /// (on a rewalk) the splice into the retained graph.
    Incr,
    /// One ViewQL program applied to a pane.
    Query,
    /// One ViewQL clause (statement).
    Clause,
    /// Rendering a pane (text/DOT/SVG).
    Render,
    /// A vcheck invariant sweep.
    Check,
    /// One request serviced by the vserve pane server.
    Serve,
    /// Anything else.
    Other,
}

impl SpanKind {
    /// Stable lowercase name (Chrome trace category, table rows).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Pane => "pane",
            SpanKind::Extract => "extract",
            SpanKind::Parse => "parse",
            SpanKind::Interp => "interp",
            SpanKind::Distill => "distill",
            SpanKind::Plan => "plan",
            SpanKind::Incr => "incr",
            SpanKind::Query => "query",
            SpanKind::Clause => "clause",
            SpanKind::Render => "render",
            SpanKind::Check => "check",
            SpanKind::Serve => "serve",
            SpanKind::Other => "other",
        }
    }
}

/// The tracer's monotone clock: cumulative totals of everything the
/// bridge reported. Span counters are deltas of two clock snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Wire packets (one per metered read request / block fetch).
    pub packets: u64,
    /// Wire bytes.
    pub bytes: u64,
    /// Virtual nanoseconds of wire latency.
    pub virtual_ns: u64,
    /// Reads served from the snapshot block cache.
    pub cache_hits: u64,
    /// Faulting accesses (unmapped memory).
    pub faults: u64,
}

impl Counters {
    /// Component-wise difference (`self` must be the later snapshot).
    pub fn since(self, earlier: Counters) -> Counters {
        Counters {
            packets: self.packets - earlier.packets,
            bytes: self.bytes - earlier.bytes,
            virtual_ns: self.virtual_ns - earlier.virtual_ns,
            cache_hits: self.cache_hits - earlier.cache_hits,
            faults: self.faults - earlier.faults,
        }
    }

    /// Component-wise sum.
    pub fn plus(self, other: Counters) -> Counters {
        Counters {
            packets: self.packets + other.packets,
            bytes: self.bytes + other.bytes,
            virtual_ns: self.virtual_ns + other.virtual_ns,
            cache_hits: self.cache_hits + other.cache_hits,
            faults: self.faults + other.faults,
        }
    }
}

/// One node of the span tree. Counters are *inclusive* (cover the
/// children); [`TraceSpan::own`] gives the exclusive share.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Human label (`"List(&init_task.tasks)"`, `"viewcl::parse"`, …).
    pub name: String,
    /// Pipeline stage.
    pub kind: SpanKind,
    /// Clock value (virtual ns) when the span opened.
    pub start_ns: u64,
    /// Clock value when the span closed.
    pub end_ns: u64,
    /// Wire packets sent while the span was open (inclusive).
    pub packets: u64,
    /// Wire bytes (inclusive).
    pub bytes: u64,
    /// Cache hits (inclusive).
    pub cache_hits: u64,
    /// Faulting accesses (inclusive).
    pub faults: u64,
    /// Nested spans, in open order.
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// A zero-cost span pinned at one clock instant (used as a synthetic
    /// container, e.g. the per-pane root).
    pub fn synthetic(kind: SpanKind, name: impl Into<String>, at_ns: u64) -> TraceSpan {
        TraceSpan {
            name: name.into(),
            kind,
            start_ns: at_ns,
            end_ns: at_ns,
            packets: 0,
            bytes: 0,
            cache_hits: 0,
            faults: 0,
            children: Vec::new(),
        }
    }

    /// Adopt `child`, stretching this span to contain it and folding the
    /// child's inclusive counters into this span's.
    pub fn absorb(&mut self, child: TraceSpan) {
        self.start_ns = self.start_ns.min(child.start_ns);
        self.end_ns = self.end_ns.max(child.end_ns);
        self.packets += child.packets;
        self.bytes += child.bytes;
        self.cache_hits += child.cache_hits;
        self.faults += child.faults;
        self.children.push(child);
    }

    /// Span start in virtual milliseconds.
    pub fn start_vms(&self) -> f64 {
        self.start_ns as f64 / 1e6
    }

    /// Span end in virtual milliseconds.
    pub fn end_vms(&self) -> f64 {
        self.end_ns as f64 / 1e6
    }

    /// Inclusive virtual duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Inclusive counters as a [`Counters`] (virtual_ns = duration).
    pub fn totals(&self) -> Counters {
        Counters {
            packets: self.packets,
            bytes: self.bytes,
            virtual_ns: self.duration_ns(),
            cache_hits: self.cache_hits,
            faults: self.faults,
        }
    }

    /// Exclusive counters: inclusive minus the children's inclusive.
    /// Summed over every span of a tree these telescope back to the
    /// root's [`TraceSpan::totals`] exactly.
    pub fn own(&self) -> Counters {
        let kids = self
            .children
            .iter()
            .fold(Counters::default(), |acc, c| acc.plus(c.totals()));
        self.totals().since(kids)
    }

    /// Every span of the subtree, preorder (self first).
    pub fn flatten(&self) -> Vec<&TraceSpan> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.flatten());
        }
        out
    }

    /// Sum of [`TraceSpan::own`] over the whole subtree. By construction
    /// equals [`TraceSpan::totals`]; the property suite asserts it.
    pub fn leaf_totals(&self) -> Counters {
        self.flatten()
            .iter()
            .fold(Counters::default(), |acc, s| acc.plus(s.own()))
    }

    /// Structural well-formedness: children lie inside the parent's
    /// interval, appear in monotone start order, and no counter of a
    /// parent is smaller than the sum over its children. Returns the
    /// first violation as text.
    pub fn check_well_formed(&self) -> std::result::Result<(), String> {
        if self.start_ns > self.end_ns {
            return Err(format!("span `{}` ends before it starts", self.name));
        }
        let mut prev_start = self.start_ns;
        let mut kids = Counters::default();
        for c in &self.children {
            if c.start_ns < self.start_ns || c.end_ns > self.end_ns {
                return Err(format!(
                    "child `{}` [{}, {}] escapes parent `{}` [{}, {}]",
                    c.name, c.start_ns, c.end_ns, self.name, self.start_ns, self.end_ns
                ));
            }
            if c.start_ns < prev_start {
                return Err(format!("child `{}` starts before its sibling", c.name));
            }
            prev_start = c.start_ns;
            kids = kids.plus(c.totals());
            c.check_well_formed()?;
        }
        let tot = self.totals();
        if kids.packets > tot.packets
            || kids.bytes > tot.bytes
            || kids.virtual_ns > tot.virtual_ns
            || kids.cache_hits > tot.cache_hits
            || kids.faults > tot.faults
        {
            return Err(format!("children of `{}` exceed the parent", self.name));
        }
        Ok(())
    }
}

/// One entry of the wire log: a single bridge event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEvent {
    /// Monotone sequence number (never resets, survives eviction).
    pub seq: u64,
    /// Target address of the access.
    pub addr: u64,
    /// Bytes requested/transferred.
    pub len: u64,
    /// Virtual wire latency paid (0 for cache hits).
    pub latency_ns: u64,
    /// Served from the snapshot block cache — no packet travelled.
    pub cache_hit: bool,
    /// The access faulted on unmapped memory.
    pub fault: bool,
}

/// Bounded ring buffer of [`WireEvent`]s: keeps the most recent
/// `capacity` events, remembers how many were ever seen.
#[derive(Debug)]
pub struct WireLog {
    capacity: usize,
    seen: u64,
    events: VecDeque<WireEvent>,
}

impl WireLog {
    /// An empty log retaining up to `capacity` events.
    pub fn new(capacity: usize) -> WireLog {
        WireLog {
            capacity: capacity.max(1),
            seen: 0,
            events: VecDeque::new(),
        }
    }

    fn push(&mut self, mut ev: WireEvent) -> u64 {
        ev.seq = self.seen;
        self.seen += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(ev);
        ev.seq
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &WireEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever logged (≥ `len`).
    pub fn total_seen(&self) -> u64 {
        self.seen
    }
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    kind: SpanKind,
    opened_at: Counters,
    children: Vec<TraceSpan>,
}

#[derive(Debug)]
struct Inner {
    clock: Counters,
    stack: Vec<OpenSpan>,
    finished: Vec<TraceSpan>,
    wire: WireLog,
    backend: Option<&'static str>,
}

/// The session-wide trace collector. Shared as `Rc<Tracer>` between the
/// session, its bridge targets and the interpreters; interior-mutable so
/// metering (`&Target`) can report through a shared reference.
#[derive(Debug)]
pub struct Tracer {
    inner: RefCell<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer with the default wire-log capacity.
    pub fn new() -> Tracer {
        Tracer::with_wire_capacity(DEFAULT_WIRE_CAPACITY)
    }

    /// A tracer retaining up to `capacity` wire events.
    pub fn with_wire_capacity(capacity: usize) -> Tracer {
        Tracer {
            inner: RefCell::new(Inner {
                clock: Counters::default(),
                stack: Vec::new(),
                finished: Vec::new(),
                wire: WireLog::new(capacity),
                backend: None,
            }),
        }
    }

    /// Open a span; it closes at the matching [`Tracer::end`].
    pub fn begin(&self, kind: SpanKind, name: impl Into<String>) {
        let mut inner = self.inner.borrow_mut();
        let opened_at = inner.clock;
        inner.stack.push(OpenSpan {
            name: name.into(),
            kind,
            opened_at,
            children: Vec::new(),
        });
    }

    /// Close the innermost open span. A no-op when none is open.
    pub fn end(&self) {
        let mut inner = self.inner.borrow_mut();
        let Some(open) = inner.stack.pop() else {
            return;
        };
        let delta = inner.clock.since(open.opened_at);
        let span = TraceSpan {
            name: open.name,
            kind: open.kind,
            start_ns: open.opened_at.virtual_ns,
            end_ns: inner.clock.virtual_ns,
            packets: delta.packets,
            bytes: delta.bytes,
            cache_hits: delta.cache_hits,
            faults: delta.faults,
            children: open.children,
        };
        match inner.stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => {
                if inner.finished.len() == MAX_FINISHED {
                    inner.finished.remove(0);
                }
                inner.finished.push(span);
            }
        }
    }

    /// Depth of the open-span stack.
    pub fn depth(&self) -> usize {
        self.inner.borrow().stack.len()
    }

    /// The bridge sent one wire packet of `len` bytes costing
    /// `latency_ns` of virtual time.
    pub fn on_wire_packet(&self, addr: u64, len: u64, latency_ns: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.clock.packets += 1;
        inner.clock.bytes += len;
        inner.clock.virtual_ns += latency_ns;
        inner.wire.push(WireEvent {
            seq: 0,
            addr,
            len,
            latency_ns,
            cache_hit: false,
            fault: false,
        });
    }

    /// A read was served from the snapshot block cache (no packet).
    pub fn on_cache_hit(&self, addr: u64, len: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.clock.cache_hits += 1;
        inner.wire.push(WireEvent {
            seq: 0,
            addr,
            len,
            latency_ns: 0,
            cache_hit: true,
            fault: false,
        });
    }

    /// An access faulted on unmapped memory. Flags the most recent wire
    /// event (the packet that chased the wild pointer) when one exists,
    /// else logs a standalone faulting probe.
    pub fn on_fault(&self, addr: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.clock.faults += 1;
        match inner.wire.events.back_mut() {
            Some(ev) => ev.fault = true,
            None => {
                inner.wire.push(WireEvent {
                    seq: 0,
                    addr,
                    len: 0,
                    latency_ns: 0,
                    cache_hit: false,
                    fault: true,
                });
            }
        }
    }

    /// Record which wire backend the traced session meters over (set by
    /// the bridge when a target attaches this tracer). Exported as trace
    /// metadata so a replayed trace says it was replayed.
    pub fn set_backend(&self, backend: &'static str) {
        self.inner.borrow_mut().backend = Some(backend);
    }

    /// The backend label, if one was reported.
    pub fn backend(&self) -> Option<&'static str> {
        self.inner.borrow().backend
    }

    /// Snapshot of the monotone clock.
    pub fn clock(&self) -> Counters {
        self.inner.borrow().clock
    }

    /// Copy of the retained wire events, oldest first.
    pub fn wire_events(&self) -> Vec<WireEvent> {
        self.inner.borrow().wire.events().copied().collect()
    }

    /// Total wire events ever logged.
    pub fn wire_seen(&self) -> u64 {
        self.inner.borrow().wire.total_seen()
    }

    /// Drain every finished top-level span, oldest first.
    pub fn take_finished(&self) -> Vec<TraceSpan> {
        std::mem::take(&mut self.inner.borrow_mut().finished)
    }

    /// Pop the most recently finished top-level span.
    pub fn take_last_finished(&self) -> Option<TraceSpan> {
        self.inner.borrow_mut().finished.pop()
    }
}

/// RAII guard closing its span on drop (error paths included).
/// [`span`] builds one; with no tracer it is free.
#[derive(Debug)]
pub struct SpanHandle {
    tracer: Option<Rc<Tracer>>,
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        if let Some(t) = &self.tracer {
            t.end();
        }
    }
}

/// Open a span on `tracer` (when present) for the enclosing scope.
pub fn span(tracer: Option<&Rc<Tracer>>, kind: SpanKind, name: impl Into<String>) -> SpanHandle {
    if let Some(t) = tracer {
        t.begin(kind, name);
    }
    SpanHandle {
        tracer: tracer.cloned(),
    }
}

// ------------------------------------------------------- chrome export --

fn num(n: u64) -> Value {
    Value::Number(Number::from_u64(n))
}

fn us(ns: u64) -> Value {
    Value::Number(Number::from_f64(ns as f64 / 1e3))
}

fn span_events(span: &TraceSpan, tid: u64, out: &mut Vec<Value>) {
    let own = span.own();
    let mut args = Map::new();
    args.insert("packets".into(), num(span.packets));
    args.insert("bytes".into(), num(span.bytes));
    args.insert("cache_hits".into(), num(span.cache_hits));
    args.insert("faults".into(), num(span.faults));
    args.insert("own_packets".into(), num(own.packets));
    args.insert("own_bytes".into(), num(own.bytes));
    let mut ev = Map::new();
    ev.insert("name".into(), Value::String(span.name.clone()));
    ev.insert("cat".into(), Value::String(span.kind.as_str().into()));
    ev.insert("ph".into(), Value::String("X".into()));
    ev.insert("ts".into(), us(span.start_ns));
    ev.insert("dur".into(), us(span.duration_ns()));
    ev.insert("pid".into(), num(1));
    ev.insert("tid".into(), num(tid));
    ev.insert("args".into(), Value::Object(args));
    out.push(Value::Object(ev));
    for c in &span.children {
        span_events(c, tid, out);
    }
}

/// Serialize span trees as Chrome `trace_event` JSON (`chrome://tracing`
/// / Perfetto "complete" events, one tid per root). Timestamps are
/// virtual microseconds.
pub fn chrome_trace<'a>(roots: impl IntoIterator<Item = (u64, &'a TraceSpan)>) -> String {
    chrome_trace_with_backend(None, roots)
}

/// [`chrome_trace`] plus an `otherData.backend` tag naming the wire
/// backend the trace was collected over (sim/record/replay).
pub fn chrome_trace_with_backend<'a>(
    backend: Option<&str>,
    roots: impl IntoIterator<Item = (u64, &'a TraceSpan)>,
) -> String {
    chrome_trace_full(backend, None, roots)
}

/// [`chrome_trace_with_backend`] plus an `otherData.exec_mode` tag
/// naming the execution mode (`interp` / `plan`) the panes were
/// extracted under, so a plan-mode trace is self-describing.
pub fn chrome_trace_full<'a>(
    backend: Option<&str>,
    exec_mode: Option<&str>,
    roots: impl IntoIterator<Item = (u64, &'a TraceSpan)>,
) -> String {
    let mut events = Vec::new();
    for (tid, root) in roots {
        span_events(root, tid, &mut events);
    }
    let mut top = Map::new();
    top.insert("traceEvents".into(), Value::Array(events));
    top.insert("displayTimeUnit".into(), Value::String("ms".into()));
    let mut other = Map::new();
    if let Some(b) = backend {
        other.insert("backend".into(), Value::String(b.into()));
    }
    if let Some(m) = exec_mode {
        other.insert("exec_mode".into(), Value::String(m.into()));
    }
    if !other.is_empty() {
        top.insert("otherData".into(), Value::Object(other));
    }
    serde_json::to_string(&Value::Object(top)).expect("trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(t: &Tracer, len: u64, ns: u64) {
        t.on_wire_packet(0x1000, len, ns);
    }

    #[test]
    fn spans_nest_and_counters_telescope() {
        let t = Rc::new(Tracer::new());
        t.begin(SpanKind::Extract, "extract");
        tick(&t, 8, 100); // own of extract (before any child)
        t.begin(SpanKind::Parse, "parse");
        t.end();
        t.begin(SpanKind::Interp, "interp");
        tick(&t, 16, 200);
        t.begin(SpanKind::Distill, "List(&init_task.tasks)");
        tick(&t, 32, 300);
        t.on_cache_hit(0x2000, 8);
        t.end();
        tick(&t, 4, 50);
        t.end();
        t.end();
        let root = t.take_last_finished().unwrap();
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.packets, 4);
        assert_eq!(root.bytes, 60);
        assert_eq!(root.duration_ns(), 650);
        assert_eq!(root.cache_hits, 1);
        // Parse saw nothing; interp includes the distiller.
        let parse = &root.children[0];
        assert_eq!(parse.totals(), Counters::default());
        let interp = &root.children[1];
        assert_eq!(interp.packets, 3);
        assert_eq!(interp.own().packets, 2);
        // Telescoping: own-sums equal the inclusive root totals.
        assert_eq!(root.leaf_totals(), root.totals());
        root.check_well_formed().unwrap();
    }

    #[test]
    fn end_without_begin_is_a_noop() {
        let t = Tracer::new();
        t.end();
        assert_eq!(t.depth(), 0);
        assert!(t.take_finished().is_empty());
    }

    #[test]
    fn span_handle_closes_on_drop_even_on_unwind_paths() {
        let t = Rc::new(Tracer::new());
        fn failing_stage(t: &Rc<Tracer>) -> Result<(), ()> {
            let _root = span(Some(t), SpanKind::Extract, "extract");
            let _child = span(Some(t), SpanKind::Parse, "parse");
            Err(())
        }
        assert!(failing_stage(&t).is_err());
        assert_eq!(t.depth(), 0, "guards unwound the stack");
        let root = t.take_last_finished().unwrap();
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn wire_log_is_bounded_and_keeps_sequence() {
        let t = Tracer::with_wire_capacity(4);
        for i in 0..10u64 {
            t.on_wire_packet(0x1000 + i, 8, 10);
        }
        let evs = t.wire_events();
        assert_eq!(evs.len(), 4, "ring evicted the oldest");
        assert_eq!(t.wire_seen(), 10);
        assert_eq!(evs.first().unwrap().seq, 6);
        assert_eq!(evs.last().unwrap().seq, 9);
        // Eviction never touches the clock.
        assert_eq!(t.clock().packets, 10);
        assert_eq!(t.clock().bytes, 80);
    }

    #[test]
    fn faults_flag_the_packet_that_chased_the_pointer() {
        let t = Tracer::new();
        t.on_wire_packet(0xdead_0000, 8, 100);
        t.on_fault(0xdead_0000);
        let evs = t.wire_events();
        assert_eq!(evs.len(), 1);
        assert!(evs[0].fault);
        assert_eq!(t.clock().faults, 1);
        // A fault with no prior packet logs a standalone probe.
        let t2 = Tracer::new();
        t2.on_fault(0xbad);
        assert!(t2.wire_events()[0].fault);
        assert_eq!(t2.wire_events()[0].len, 0);
    }

    #[test]
    fn synthetic_roots_absorb_children() {
        let mut root = TraceSpan::synthetic(SpanKind::Pane, "pane-0", 500);
        let mut a = TraceSpan::synthetic(SpanKind::Extract, "extract", 100);
        a.end_ns = 400;
        a.packets = 3;
        a.bytes = 24;
        let mut b = TraceSpan::synthetic(SpanKind::Query, "viewql", 600);
        b.end_ns = 700;
        b.faults = 1;
        root.absorb(a);
        root.absorb(b);
        assert_eq!((root.start_ns, root.end_ns), (100, 700));
        assert_eq!(root.packets, 3);
        assert_eq!(root.faults, 1);
        root.check_well_formed().unwrap();
        assert_eq!(root.leaf_totals().packets, root.totals().packets);
    }

    #[test]
    fn chrome_trace_emits_complete_events() {
        let t = Rc::new(Tracer::new());
        t.begin(SpanKind::Extract, "extract fig3-4");
        tick(&t, 8, 2_000);
        t.begin(SpanKind::Distill, "List(x)");
        tick(&t, 8, 1_000);
        t.end();
        t.end();
        let root = t.take_last_finished().unwrap();
        let json = chrome_trace([(7u64, &root)]);
        let v: Value = serde_json::from_str(&json).unwrap();
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(evs[0].get("tid").unwrap().as_u64(), Some(7));
        assert_eq!(evs[0].get("dur").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            evs[1].get("cat").unwrap().as_str(),
            Some("distill"),
            "{json}"
        );
    }
}
