//! The pane-based interactive debugger front-end (paper §2.4).
//!
//! Panes form a binary layout tree (borrowed from tmux): *primary* panes
//! display a ViewCL-extracted graph that ViewQL programs refine;
//! *secondary* panes display objects picked from another pane. The
//! `focus` operation searches every displayed graph for one object —
//! the paper's Figure 2 shows it locating a task simultaneously in the
//! parent tree and the scheduler tree.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use vgraph::{BoxId, Graph};

/// Handle to a pane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub struct PaneId(pub u32);

/// Split orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitDir {
    /// Side by side.
    Horizontal,
    /// Stacked.
    Vertical,
}

/// The layout tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layout {
    /// A leaf holding one pane.
    Leaf(PaneId),
    /// A split holding two subtrees.
    Split {
        /// Orientation.
        dir: SplitDir,
        /// First child (left/top).
        first: Box<Layout>,
        /// Second child (right/bottom).
        second: Box<Layout>,
    },
}

impl Layout {
    fn replace_leaf(&mut self, target: PaneId, with: Layout) -> bool {
        match self {
            Layout::Leaf(id) if *id == target => {
                *self = with;
                true
            }
            Layout::Leaf(_) => false,
            Layout::Split { first, second, .. } => {
                first.replace_leaf(target, with.clone()) || second.replace_leaf(target, with)
            }
        }
    }

    /// Pane ids in left-to-right, top-to-bottom order.
    pub fn leaves(&self) -> Vec<PaneId> {
        match self {
            Layout::Leaf(id) => vec![*id],
            Layout::Split { first, second, .. } => {
                let mut v = first.leaves();
                v.extend(second.leaves());
                v
            }
        }
    }
}

/// One pane's content.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PaneContent {
    /// A primary pane: an extracted object graph plus the ViewQL programs
    /// applied so far (kept for session persistence / replay).
    Primary {
        /// The displayed graph.
        graph: Graph,
        /// Applied ViewQL programs, in order.
        refinements: Vec<String>,
    },
    /// A secondary pane: a set of boxes picked from another pane.
    Secondary {
        /// The pane the objects were picked from.
        origin: PaneId,
        /// The picked boxes (ids within the origin's graph).
        picks: Vec<BoxId>,
    },
}

/// A focus hit: where a searched object appears.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FocusHit {
    /// The pane displaying the object.
    pub pane: PaneId,
    /// The box within that pane's graph.
    pub boxid: BoxId,
    /// The box's label (for display).
    pub label: String,
}

/// A whole debugger session: layout + panes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Session {
    /// The layout tree.
    pub layout: Layout,
    /// Keyed by pane id; a `BTreeMap` so iteration (and therefore
    /// [`Session::save`] output and focus-hit order) is deterministic.
    panes: BTreeMap<PaneId, PaneContent>,
    next_id: u32,
}

/// Errors from pane operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PanelError {
    /// The pane id does not exist.
    NoSuchPane(PaneId),
    /// The operation needs a primary pane.
    NotPrimary(PaneId),
    /// A ViewQL refinement failed.
    Refine(String),
}

impl std::fmt::Display for PanelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PanelError::NoSuchPane(p) => write!(f, "no such pane {p:?}"),
            PanelError::NotPrimary(p) => write!(f, "pane {p:?} is not primary"),
            PanelError::Refine(m) => write!(f, "refinement failed: {m}"),
        }
    }
}

impl std::error::Error for PanelError {}

impl Session {
    /// Start a session with one primary pane displaying `graph`.
    pub fn new(graph: Graph) -> Self {
        let root = PaneId(0);
        let mut panes = BTreeMap::new();
        panes.insert(
            root,
            PaneContent::Primary {
                graph,
                refinements: Vec::new(),
            },
        );
        Session {
            layout: Layout::Leaf(root),
            panes,
            next_id: 1,
        }
    }

    fn fresh(&mut self) -> PaneId {
        let id = PaneId(self.next_id);
        self.next_id += 1;
        id
    }

    /// The pane content.
    pub fn pane(&self, id: PaneId) -> Option<&PaneContent> {
        self.panes.get(&id)
    }

    /// The graph displayed by a pane (secondary panes resolve through
    /// their origin).
    pub fn graph_of(&self, id: PaneId) -> Option<&Graph> {
        match self.panes.get(&id)? {
            PaneContent::Primary { graph, .. } => Some(graph),
            PaneContent::Secondary { origin, .. } => self.graph_of(*origin),
        }
    }

    /// Mutable access to the graph displayed by a pane (secondary panes
    /// resolve through their origin). Used by annotating commands such
    /// as `vcheck` that decorate boxes in place.
    pub fn graph_of_mut(&mut self, id: PaneId) -> Option<&mut Graph> {
        let mut id = id;
        loop {
            match self.panes.get(&id)? {
                PaneContent::Primary { .. } => break,
                PaneContent::Secondary { origin, .. } => id = *origin,
            }
        }
        match self.panes.get_mut(&id) {
            Some(PaneContent::Primary { graph, .. }) => Some(graph),
            _ => None,
        }
    }

    /// Number of panes.
    pub fn len(&self) -> usize {
        self.panes.len()
    }

    /// Whether the session has no panes.
    pub fn is_empty(&self) -> bool {
        self.panes.is_empty()
    }

    /// *Split*: divide `pane` creating a new primary pane showing `graph`.
    pub fn split(
        &mut self,
        pane: PaneId,
        dir: SplitDir,
        graph: Graph,
    ) -> Result<PaneId, PanelError> {
        if !self.panes.contains_key(&pane) {
            return Err(PanelError::NoSuchPane(pane));
        }
        let new = self.fresh();
        self.panes.insert(
            new,
            PaneContent::Primary {
                graph,
                refinements: Vec::new(),
            },
        );
        let replaced = self.layout.replace_leaf(
            pane,
            Layout::Split {
                dir,
                first: Box::new(Layout::Leaf(pane)),
                second: Box::new(Layout::Leaf(new)),
            },
        );
        debug_assert!(replaced);
        Ok(new)
    }

    /// *Select*: create a secondary pane displaying `picks` from `origin`.
    pub fn select(
        &mut self,
        origin: PaneId,
        dir: SplitDir,
        picks: Vec<BoxId>,
    ) -> Result<PaneId, PanelError> {
        if !self.panes.contains_key(&origin) {
            return Err(PanelError::NoSuchPane(origin));
        }
        let new = self.fresh();
        self.panes
            .insert(new, PaneContent::Secondary { origin, picks });
        self.layout.replace_leaf(
            origin,
            Layout::Split {
                dir,
                first: Box::new(Layout::Leaf(origin)),
                second: Box::new(Layout::Leaf(new)),
            },
        );
        Ok(new)
    }

    /// *Refine*: apply a ViewQL program to a primary pane's graph.
    pub fn refine(&mut self, pane: PaneId, viewql: &str) -> Result<(), PanelError> {
        let mut engine = vql::Engine::new();
        self.refine_with(pane, viewql, &mut engine)
    }

    /// *Refine* with a caller-supplied engine, so the caller can
    /// pre-configure it (e.g. attach a tracer) and inspect the bound
    /// selection variables afterwards.
    pub fn refine_with(
        &mut self,
        pane: PaneId,
        viewql: &str,
        engine: &mut vql::Engine,
    ) -> Result<(), PanelError> {
        match self.panes.get_mut(&pane) {
            None => Err(PanelError::NoSuchPane(pane)),
            Some(PaneContent::Secondary { .. }) => Err(PanelError::NotPrimary(pane)),
            Some(PaneContent::Primary { graph, refinements }) => {
                engine
                    .run(graph, viewql)
                    .map_err(|e| PanelError::Refine(e.to_string()))?;
                refinements.push(viewql.to_string());
                Ok(())
            }
        }
    }

    /// *Focus*: find the object at `addr` in every displayed graph.
    pub fn focus(&self, addr: u64) -> Vec<FocusHit> {
        let mut hits = Vec::new();
        for pane in self.layout.leaves() {
            let Some(graph) = self.graph_of(pane) else {
                continue;
            };
            for b in graph.boxes() {
                if b.addr == addr {
                    hits.push(FocusHit {
                        pane,
                        boxid: b.id,
                        label: b.label.clone(),
                    });
                }
            }
        }
        hits
    }

    /// Persist the session (panes, layouts, applied refinements) to JSON
    /// for reuse across debugging sessions (§4.2).
    pub fn save(&self) -> String {
        serde_json::to_string(self).expect("session serialization cannot fail")
    }

    /// Restore a saved session.
    pub fn load(s: &str) -> serde_json::Result<Session> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgraph::{Item, ViewInst};

    fn graph(tag: &str, addrs: &[u64]) -> Graph {
        let mut g = Graph::new();
        for &a in addrs {
            let (id, _) = g.intern(a, tag, "task_struct", 64);
            g.get_mut(id).views.push(ViewInst {
                name: "default".into(),
                items: vec![Item::Text {
                    name: "pid".into(),
                    value: "7".into(),
                    raw: Some(7),
                }],
            });
        }
        g
    }

    #[test]
    fn split_and_layout_order() {
        let mut s = Session::new(graph("A", &[0x1000]));
        let right = s
            .split(PaneId(0), SplitDir::Horizontal, graph("B", &[0x2000]))
            .unwrap();
        let bottom = s
            .split(right, SplitDir::Vertical, graph("C", &[0x3000]))
            .unwrap();
        assert_eq!(s.layout.leaves(), vec![PaneId(0), right, bottom]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn focus_finds_object_across_panes() {
        let mut s = Session::new(graph("ParentTree", &[0x1000, 0x2000]));
        s.split(
            PaneId(0),
            SplitDir::Horizontal,
            graph("SchedTree", &[0x2000, 0x3000]),
        )
        .unwrap();
        let hits = s.focus(0x2000);
        assert_eq!(hits.len(), 2, "found in both panes (paper Fig 2)");
        assert_eq!(hits[0].label, "ParentTree");
        assert_eq!(hits[1].label, "SchedTree");
        assert!(s.focus(0xdead).is_empty());
    }

    #[test]
    fn refine_applies_viewql_and_records_history() {
        let mut s = Session::new(graph("Task", &[0x1000, 0x2000]));
        s.refine(
            PaneId(0),
            "a = SELECT task_struct FROM *\nUPDATE a WITH collapsed: true",
        )
        .unwrap();
        let g = s.graph_of(PaneId(0)).unwrap();
        assert!(g.boxes().iter().all(|b| b.attrs.collapsed));
        match s.pane(PaneId(0)).unwrap() {
            PaneContent::Primary { refinements, .. } => assert_eq!(refinements.len(), 1),
            _ => unreachable!(),
        }
        // Bad ViewQL reports, does not panic.
        assert!(matches!(
            s.refine(PaneId(0), "UPDATE nope WITH x: 1"),
            Err(PanelError::Refine(_))
        ));
    }

    #[test]
    fn secondary_panes_resolve_origin_graph() {
        let mut s = Session::new(graph("Task", &[0x1000]));
        let sec = s
            .select(PaneId(0), SplitDir::Vertical, vec![BoxId(0)])
            .unwrap();
        assert!(matches!(s.pane(sec), Some(PaneContent::Secondary { .. })));
        assert_eq!(s.graph_of(sec).unwrap().len(), 1);
        assert!(matches!(
            s.refine(sec, "a = SELECT x FROM *"),
            Err(PanelError::NotPrimary(_))
        ));
    }

    #[test]
    fn session_round_trips_through_json() {
        let mut s = Session::new(graph("Task", &[0x1000]));
        s.split(PaneId(0), SplitDir::Horizontal, graph("B", &[0x2000]))
            .unwrap();
        s.refine(
            PaneId(0),
            "a = SELECT task_struct FROM *\nUPDATE a WITH view: sched",
        )
        .unwrap();
        let saved = s.save();
        let restored = Session::load(&saved).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.layout, s.layout);
        match restored.pane(PaneId(0)).unwrap() {
            PaneContent::Primary { refinements, .. } => assert_eq!(refinements.len(), 1),
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod prop_tests {
    //! The layout tree stays consistent under arbitrary split sequences.

    use super::*;
    use proptest::prelude::*;
    use vgraph::Graph;

    proptest! {
        #[test]
        fn prop_splits_preserve_all_panes(
            ops in proptest::collection::vec((0u32..16, any::<bool>()), 1..24)
        ) {
            let mut s = Session::new(Graph::new());
            let mut created = vec![PaneId(0)];
            for (pick, horizontal) in ops {
                let target = created[pick as usize % created.len()];
                let dir = if horizontal { SplitDir::Horizontal } else { SplitDir::Vertical };
                let new = s.split(target, dir, Graph::new()).unwrap();
                created.push(new);
            }
            // Every created pane appears exactly once in the layout.
            let mut leaves = s.layout.leaves();
            leaves.sort();
            let mut want = created.clone();
            want.sort();
            prop_assert_eq!(leaves, want);
            prop_assert_eq!(s.len(), created.len());
        }
    }
}
