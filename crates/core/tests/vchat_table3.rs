//! Table 3 / §4.2: every debugging objective must be synthesizable from
//! its natural-language description, with the same effect on the graph as
//! the hand-written ViewQL (the paper reports DeepSeek-V2 going 10/10).

use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use vgraph::Graph;
use visualinux::{figures, PlotSpec, Session};

/// One box's observable display state: addr, label, collapsed, trimmed,
/// view, direction, and per-member container states.
type BoxState = (
    u64,
    String,
    bool,
    bool,
    Option<String>,
    Option<String>,
    Vec<(String, bool, Option<String>)>,
);

/// The observable display state of a graph, for semantic comparison.
fn display_state(g: &Graph) -> Vec<BoxState> {
    let mut v: Vec<_> = g
        .boxes()
        .iter()
        .map(|b| {
            let members: Vec<(String, bool, Option<String>)> = b
                .views
                .iter()
                .flat_map(|view| &view.items)
                .filter_map(|i| match i {
                    vgraph::Item::Container { name, attrs, .. } => {
                        Some((name.clone(), attrs.collapsed, attrs.direction.clone()))
                    }
                    _ => None,
                })
                .collect();
            (
                b.addr,
                b.label.clone(),
                b.attrs.collapsed,
                b.attrs.trimmed,
                b.attrs.view.clone(),
                b.attrs.direction.clone(),
                members,
            )
        })
        .collect();
    v.sort();
    v
}

#[test]
fn vchat_synthesizes_all_ten_objectives() {
    let objectives: Vec<_> = figures::all()
        .into_iter()
        .filter(|f| f.objective.is_some())
        .collect();
    assert_eq!(objectives.len(), 10);

    let mut score = 0;
    let mut notes = Vec::new();
    for fig in &objectives {
        let obj = fig.objective.as_ref().unwrap();

        // Reference: hand-written ViewQL on a fresh plot.
        let mut s1 = Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::free())
            .attach()
            .unwrap();
        let p1 = s1.plot(PlotSpec::Source(fig.viewcl)).unwrap();
        s1.vctrl_refine(p1, obj.viewql).unwrap();
        let want = display_state(s1.graph(p1).unwrap());

        // Candidate: vchat synthesis from the description.
        let mut s2 = Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::free())
            .attach()
            .unwrap();
        let p2 = s2.plot(PlotSpec::Source(fig.viewcl)).unwrap();
        match s2.vchat(p2, obj.description, true) {
            Err(e) => notes.push(format!("{}: synthesis failed: {e}", fig.id)),
            Ok(out) => {
                let got = display_state(s2.graph(p2).unwrap());
                if got == want {
                    score += 1;
                } else {
                    notes.push(format!(
                        "{}: effect differs\n  desc: {}\n  synthesized:\n{}",
                        fig.id, obj.description, out.viewql
                    ));
                }
            }
        }
    }
    assert_eq!(
        score,
        10,
        "vchat must go 10/10 like the paper:\n{}",
        notes.join("\n")
    );
}
