//! Every Table 2 figure must extract a non-trivial graph from the
//! evaluation workload (the C1 claim of the paper's artifact).

use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::{figures, PlotSpec, Session};

#[test]
fn all_21_figures_extract_nontrivial_graphs() {
    let mut session = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .attach()
        .unwrap();
    let mut failures = Vec::new();
    for fig in figures::all() {
        match session.plot(PlotSpec::Source(fig.viewcl)) {
            Err(e) => failures.push(format!("{}: {e}", fig.id)),
            Ok(pane) => {
                let stats = session.plot_stats(pane).unwrap();
                if stats.graph.objects < 2 {
                    failures.push(format!(
                        "{}: trivial graph ({} objects)",
                        fig.id, stats.graph.objects
                    ));
                }
                // Text items must not contain evaluation errors.
                let g = session.graph(pane).unwrap();
                for b in g.boxes() {
                    for v in &b.views {
                        for item in &v.items {
                            if let vgraph::Item::Text { name, value, .. } = item {
                                if value.starts_with("<error") {
                                    failures.push(format!(
                                        "{}: {}.{} = {}",
                                        fig.id, b.label, name, value
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "figure failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn figure_graphs_have_expected_shapes() {
    let mut session = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .attach()
        .unwrap();

    // fig3-4: the process tree holds every task.
    let pane = session.plot(PlotSpec::Figure("fig3-4")).unwrap();
    let g = session.graph(pane).unwrap();
    let tasks = g
        .boxes()
        .iter()
        .filter(|b| b.ctype == "task_struct")
        .count();
    assert_eq!(tasks, session.roots.all_tasks.len());

    // fig9-2: maple nodes + every VMA of the current task.
    let pane = session.plot(PlotSpec::Figure("fig9-2")).unwrap();
    let g = session.graph(pane).unwrap();
    let nodes = g.boxes().iter().filter(|b| b.label == "MapleNode").count();
    let vmas = g
        .boxes()
        .iter()
        .filter(|b| b.ctype == "vm_area_struct")
        .count();
    assert!(nodes >= 2, "expected a multi-node maple tree, got {nodes}");
    assert!(vmas >= 8, "expected the full VMA set, got {vmas}");

    // fig15-1: a real radix tree with pages.
    let pane = session.plot(PlotSpec::Figure("fig15-1")).unwrap();
    let g = session.graph(pane).unwrap();
    let pages = g.boxes().iter().filter(|b| b.ctype == "page").count();
    assert!(pages >= 1, "page cache must hold pages");

    // workqueue: both enclosing types present (heterogeneous list).
    let pane = session.plot(PlotSpec::Figure("workqueue")).unwrap();
    let g = session.graph(pane).unwrap();
    assert!(g.boxes().iter().any(|b| b.label == "DelayedWork"));
    assert!(g
        .boxes()
        .iter()
        .any(|b| b.label == "Work" && b.ctype == "work_struct"));

    // socketconn: one socket per process, with skbs.
    let pane = session.plot(PlotSpec::Figure("socketconn")).unwrap();
    let g = session.graph(pane).unwrap();
    let socks = g.boxes().iter().filter(|b| b.ctype == "socket").count();
    assert_eq!(socks, 5);
}

#[test]
fn table3_objectives_run_hand_written_viewql() {
    let mut session = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .attach()
        .unwrap();
    for fig in figures::all() {
        let Some(obj) = &fig.objective else { continue };
        let pane = session
            .plot(PlotSpec::Source(fig.viewcl))
            .unwrap_or_else(|e| panic!("{}: {e}", fig.id));
        session
            .vctrl_refine(pane, obj.viewql)
            .unwrap_or_else(|e| panic!("{} objective: {e}", fig.id));
        // Each objective must actually change something.
        let g = session.graph(pane).unwrap();
        let touched = g.boxes().iter().any(|b| {
            b.attrs.collapsed
                || b.attrs.trimmed
                || b.attrs.view.is_some()
                || b.attrs.direction.is_some()
                || b.views.iter().flat_map(|v| &v.items).any(|i| {
                    matches!(i, vgraph::Item::Container { attrs, .. }
                        if attrs.collapsed || attrs.direction.is_some())
                })
        });
        assert!(touched, "{}: objective had no effect", fig.id);
    }
}
