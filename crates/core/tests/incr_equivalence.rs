//! Incremental transparency: vincr refresh is a pure cost optimization.
//! Between stops, an incremental session must produce *byte-identical*
//! vgraph JSON to a plain session's fresh extraction — across every
//! Table 2 figure, both latency profiles, and corpus tick workloads —
//! whether each pane was kept (dirty set missed its spans) or re-walked
//! and spliced. A backend that cannot report dirty ranges degrades to
//! full re-walks, never to stale graphs; and an incremental `.vrec`
//! capture replays bit-identically, dirty events and all.

use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, LatencyProfile, TargetStats, WireEvent};
use visualinux::{figures, Session};

fn profiles() -> [(&'static str, LatencyProfile); 2] {
    [
        ("gdb_qemu", LatencyProfile::gdb_qemu()),
        ("kgdb_rpi400", LatencyProfile::kgdb_rpi400()),
    ]
}

#[test]
fn all_figures_byte_identical_across_tick_stops_both_profiles() {
    let mut failures = Vec::new();
    for (pname, profile) in profiles() {
        let mut incr = Session::builder(build(&WorkloadConfig::default()))
            .profile(profile)
            .cache(CacheConfig::default())
            .incremental()
            .attach()
            .unwrap();
        assert!(incr.incremental());
        let mut fresh = Session::builder(build(&WorkloadConfig::default()))
            .profile(profile)
            .attach()
            .unwrap();
        let (mut hits, mut rewalks) = (0u64, 0u64);
        for round in 0..3u64 {
            if round > 0 {
                let roots = incr.roots.clone();
                incr.stop_event(|img| {
                    ksim::tick::tick(img, &roots, round);
                })
                .unwrap();
                let roots = fresh.roots.clone();
                fresh
                    .stop_event(|img| {
                        ksim::tick::tick(img, &roots, round);
                    })
                    .unwrap();
            }
            for fig in figures::all() {
                let (g_i, s_i) = incr.extract(fig.viewcl).expect(fig.id);
                let (g_f, _) = fresh.extract(fig.viewcl).expect(fig.id);
                if g_i.to_json() != g_f.to_json() {
                    failures.push(format!("{pname}/{}/round {round}: drift", fig.id));
                }
                hits += s_i.target.vincr_hits;
                rewalks += s_i.target.vincr_rewalks;
            }
        }
        // The refresh path actually exercised both arms: a tick's dirty
        // set misses most panes (keeps) but lands on the task panes
        // (re-walks). Neither arm may be vacuous.
        assert!(hits > 0, "{pname}: no pane was ever served retained");
        assert!(rewalks > 0, "{pname}: no pane was ever re-walked");
    }
    assert!(
        failures.is_empty(),
        "incremental equivalence failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_tick_workloads_stay_byte_identical() {
    // Generated populations, not just the hand-built default workload:
    // tick the first two corpus scale rungs, comparing incremental
    // against fresh at every stop.
    for name in ["clean-100", "clean-1k"] {
        let spec = ksim::corpus::by_name(name).expect(name);
        let (builder, _) = Session::from_scenario(&spec);
        let mut incr = builder
            .profile(LatencyProfile::free())
            .cache(CacheConfig::default())
            .incremental()
            .attach()
            .unwrap();
        let (builder, _) = Session::from_scenario(&spec);
        let mut fresh = builder.profile(LatencyProfile::free()).attach().unwrap();
        let all = figures::all();
        let figs: Vec<_> = all.iter().step_by(4).collect();
        for round in 0..3u64 {
            if round > 0 {
                let roots = incr.roots.clone();
                incr.stop_event(|img| {
                    ksim::tick::tick(img, &roots, round);
                })
                .unwrap();
                let roots = fresh.roots.clone();
                fresh
                    .stop_event(|img| {
                        ksim::tick::tick(img, &roots, round);
                    })
                    .unwrap();
            }
            for fig in &figs {
                let (g_i, _) = incr.extract(fig.viewcl).expect(fig.id);
                let (g_f, _) = fresh.extract(fig.viewcl).expect(fig.id);
                assert_eq!(
                    g_i.to_json(),
                    g_f.to_json(),
                    "{name}/{}/round {round}",
                    fig.id
                );
            }
        }
    }
}

#[test]
fn unknown_dirty_degrades_to_full_rewalks() {
    // A capture recorded *without* dirty events (pre-incremental tape)
    // replayed under an incremental session: every resume reports
    // `DirtyInfo::Unknown`, so every retained pane re-walks — reads
    // follow the tape exactly and no stale graph is ever served.
    let dir = std::env::temp_dir().join(format!("vrec-incr-unk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plain.vrec");
    let fig = figures::by_id("fig3-4").unwrap();

    let mut rec = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .cache(CacheConfig::default())
        .record(&path)
        .attach()
        .unwrap();
    let mut live = Vec::new();
    for round in 0..3u64 {
        if round > 0 {
            let roots = rec.roots.clone();
            rec.stop_event(|img| {
                ksim::tick::tick(img, &roots, round);
            })
            .unwrap();
        }
        live.push(rec.extract(fig.viewcl).unwrap().0.to_json());
    }
    rec.save_recording().unwrap();

    let cap = vbridge::Capture::load(&path).unwrap();
    assert!(
        !cap.events
            .iter()
            .any(|e| matches!(e, WireEvent::Dirty { .. })),
        "a non-incremental recording must not tape dirty events"
    );
    assert_ne!(
        cap.meta.get("incremental").and_then(|v| v.as_bool()),
        Some(true)
    );

    let mut rep = Session::replay(cap).incremental().attach().unwrap();
    assert!(rep.incremental());
    let mut rewalks = 0u64;
    for (round, expected) in live.iter().enumerate() {
        if round > 0 {
            rep.resume();
        }
        let (g, s) = rep.extract(fig.viewcl).unwrap();
        assert_eq!(&g.to_json(), expected, "round {round}");
        rewalks += s.target.vincr_rewalks;
        assert_eq!(s.target.vincr_hits, 0, "unknown dirty can never keep");
        assert_eq!(s.target.dirty_bytes, 0, "unknown dirty reports no bytes");
    }
    assert_eq!(rewalks, 2, "both post-stop refreshes fell back to re-walks");
    assert_eq!(rep.replay_state().unwrap().remaining(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn incremental_capture_round_trips_with_dirty_events() {
    // An incremental recording tapes each resume's dirty ranges and
    // stamps `meta.incremental`; replay auto-follows the stamp and
    // reproduces the exact keep/re-walk sequence — graphs and stats
    // byte-identical, tape fully consumed.
    let dir = std::env::temp_dir().join(format!("vrec-incr-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("incr.vrec");
    // One task-heavy pane (re-walks on tick) and one that a tick's task
    // writes miss (keeps): the tape must carry both arms.
    let figs = [
        figures::by_id("fig3-4").unwrap(),
        figures::all().last().unwrap().clone(),
    ];

    let mut rec = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .cache(CacheConfig::default())
        .incremental()
        .record(&path)
        .attach()
        .unwrap();
    let mut live: Vec<(String, TargetStats)> = Vec::new();
    for round in 0..3u64 {
        if round > 0 {
            let roots = rec.roots.clone();
            rec.stop_event(|img| {
                ksim::tick::tick(img, &roots, round);
            })
            .unwrap();
        }
        for fig in &figs {
            let (g, s) = rec.extract(fig.viewcl).unwrap();
            live.push((g.to_json(), s.target));
        }
    }
    rec.save_recording().unwrap();

    let cap = vbridge::Capture::load(&path).unwrap();
    assert_eq!(
        cap.meta.get("incremental").and_then(|v| v.as_bool()),
        Some(true),
        "capture header records the incremental mode"
    );
    let dirty_events = cap
        .events
        .iter()
        .filter(|e| matches!(e, WireEvent::Dirty { .. }))
        .count();
    assert_eq!(dirty_events, 2, "one dirty event per recorded resume");

    let mut rep = Session::replay(cap).attach().unwrap();
    assert!(rep.incremental(), "replay follows the capture header");
    let mut replayed = live.iter();
    for round in 0..3u64 {
        if round > 0 {
            rep.resume();
        }
        for fig in &figs {
            let (g, s) = rep.extract(fig.viewcl).unwrap();
            let (g_live, s_live) = replayed.next().unwrap();
            assert_eq!(&g.to_json(), g_live, "{}/round {round}", fig.id);
            assert_eq!(
                s.target,
                TargetStats {
                    backend: vbridge::BackendKind::Replay,
                    ..*s_live
                },
                "{}/round {round}",
                fig.id
            );
        }
    }
    assert_eq!(rep.replay_state().unwrap().remaining(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_kept_pane_serves_with_zero_wire_packets() {
    // A stop whose dirty set is empty (the mutation wrote nothing)
    // invalidates no pane: the refresh serves every retained graph
    // without a single wire packet.
    let mut s = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .cache(CacheConfig::default())
        .incremental()
        .attach()
        .unwrap();
    let fig = figures::by_id("fig3-4").unwrap();
    let (g0, s0) = s.extract(fig.viewcl).unwrap();
    assert_eq!(s0.target.vincr_hits + s0.target.vincr_rewalks, 0);
    s.stop_event(|_img| {}).unwrap();
    let (g1, s1) = s.extract(fig.viewcl).unwrap();
    assert_eq!(g0.to_json(), g1.to_json());
    assert_eq!(s1.target.vincr_hits, 1);
    assert_eq!(s1.target.vincr_rewalks, 0);
    assert_eq!(s1.target.reads, 0, "a keep issues no wire packets");
    assert_eq!(s1.target.dirty_bytes, 0);
}
