//! Plan transparency: plan-mode extraction is a pure cost optimization,
//! gated exactly like the cache. Every Table 2 figure must extract
//! *byte-identical* vgraph JSON under plan mode — both latency profiles,
//! cached and uncached, cold and warm — as an interp-mode session
//! produces; the plan counters must be deterministic across runs; and a
//! plan-mode replay of an interp-mode capture must fail loudly naming
//! the mode mismatch.

use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, ExecMode, LatencyProfile, TargetStats};
use visualinux::{figures, Session};

fn profiles() -> [(&'static str, LatencyProfile); 2] {
    [
        ("gdb_qemu", LatencyProfile::gdb_qemu()),
        ("kgdb_rpi400", LatencyProfile::kgdb_rpi400()),
    ]
}

#[test]
fn all_figures_byte_identical_under_plan_mode_both_profiles() {
    let mut failures = Vec::new();
    for (pname, profile) in profiles() {
        let interp = Session::builder(build(&WorkloadConfig::default()))
            .profile(profile)
            .attach()
            .unwrap();
        let mut plan = Session::builder(build(&WorkloadConfig::default()))
            .profile(profile)
            .cache(CacheConfig::default())
            .plan()
            .attach()
            .unwrap();
        assert_eq!(plan.exec_mode(), ExecMode::Plan);
        for fig in figures::all() {
            let (g, s_interp) = interp.extract(fig.viewcl).expect(fig.id);
            let reference = g.to_json();
            // Cold: resume() empties the cache first.
            plan.resume();
            let (g_cold, s_cold) = plan.extract(fig.viewcl).expect(fig.id);
            if g_cold.to_json() != reference {
                failures.push(format!("{pname}/{}: cold plan JSON differs", fig.id));
            }
            // Warm: the plan pre-pass plus the interp walk both come
            // from cache.
            let (g_warm, _) = plan.extract(fig.viewcl).expect(fig.id);
            if g_warm.to_json() != reference {
                failures.push(format!("{pname}/{}: warm plan JSON differs", fig.id));
            }
            // Plan mode never costs more virtual time than interp: it
            // replaces per-element round trips with merged spans.
            if s_cold.target.virtual_ns > s_interp.target.virtual_ns {
                failures.push(format!(
                    "{pname}/{}: plan costs more than interp ({} > {} ns)",
                    fig.id, s_cold.target.virtual_ns, s_interp.target.virtual_ns
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "plan equivalence failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn uncached_plan_mode_degrades_to_interp_exactly() {
    // Without a cache there is nothing to warm: plan mode must produce
    // identical graphs AND identical stats (the plan pre-pass does not
    // run at all).
    let interp = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .attach()
        .unwrap();
    let plan = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .plan()
        .attach()
        .unwrap();
    for fig in figures::all() {
        let (g_i, s_i) = interp.extract(fig.viewcl).expect(fig.id);
        let (g_p, s_p) = plan.extract(fig.viewcl).expect(fig.id);
        assert_eq!(g_i.to_json(), g_p.to_json(), "{}", fig.id);
        assert_eq!(s_i.target, s_p.target, "{}", fig.id);
    }
}

#[test]
fn plan_counters_are_deterministic_across_runs() {
    // Two independent plan-mode sessions over identical workloads must
    // report identical TargetStats — including the plan counters, which
    // derive from the deterministic schedule, never thread timing.
    let run = || {
        let session = Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::kgdb_rpi400())
            .cache(CacheConfig::default())
            .plan()
            .attach()
            .unwrap();
        figures::all()
            .iter()
            .map(|fig| session.extract(fig.viewcl).expect(fig.id).1.target)
            .collect::<Vec<TargetStats>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    // The plan actually ran: some multi-walk figure planned nodes and
    // merged shared subwalks.
    assert!(
        a.iter().any(|s| s.plan_nodes > 0),
        "no figure executed any plan node"
    );
    assert!(
        a.iter().any(|s| s.dedup_walks > 0),
        "no figure deduplicated a shared subwalk"
    );
    assert!(
        a.iter().any(|s| s.parallel_batches > 0),
        "no figure ran a parallel batch"
    );
}

#[test]
fn plan_mode_replay_of_interp_capture_names_the_mismatch() {
    let dir = std::env::temp_dir().join(format!("vrec-plan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("interp.vrec");
    let fig = figures::by_id("fig3-4").unwrap();

    // Record an interp-mode session (cached, so a plan-mode session
    // over the same capture would issue a genuinely different wire
    // sequence).
    let rec = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .cache(CacheConfig::default())
        .record(&path)
        .attach()
        .unwrap();
    let _ = rec.extract(fig.viewcl).unwrap();
    rec.save_recording().unwrap();
    let cap = vbridge::Capture::load(&path).unwrap();
    assert_eq!(
        cap.meta.get("exec_mode").and_then(|v| v.as_str()),
        Some("interp"),
        "capture header records the execution mode"
    );

    // Replaying without forcing a mode follows the capture header.
    let auto = Session::replay(cap.clone()).attach().unwrap();
    assert_eq!(auto.exec_mode(), ExecMode::Interp);
    let (_, _) = auto.extract(fig.viewcl).unwrap();

    // Forcing plan mode diverges from the tape and the error names the
    // mode mismatch, not just the raw divergence.
    let forced = Session::replay(cap).exec(ExecMode::Plan).attach().unwrap();
    assert_eq!(forced.exec_mode(), ExecMode::Plan);
    let err = forced.extract(fig.viewcl).unwrap_err().to_string();
    assert!(err.contains("execution-mode mismatch"), "{err}");
    assert!(err.contains("plan-mode"), "{err}");
    assert!(err.contains("recorded under interp-mode"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_mode_record_replay_round_trips() {
    // A plan-mode capture replays bit-identically: the serializing
    // planner mode issues its discovery reads and span fetches in
    // deterministic order, and replay auto-selects plan mode from the
    // capture header.
    let dir = std::env::temp_dir().join(format!("vrec-plan-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plan.vrec");
    let fig = figures::by_id("fig3-4").unwrap();

    let mut rec = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .cache(CacheConfig::default())
        .plan()
        .record(&path)
        .attach()
        .unwrap();
    let (g_live, s_live) = rec.extract(fig.viewcl).unwrap();
    rec.resume();
    let (_, s_live2) = rec.extract(fig.viewcl).unwrap();
    rec.save_recording().unwrap();

    let cap = vbridge::Capture::load(&path).unwrap();
    assert_eq!(
        cap.meta.get("exec_mode").and_then(|v| v.as_str()),
        Some("plan")
    );
    let mut rep = Session::replay(cap).attach().unwrap();
    assert_eq!(rep.exec_mode(), ExecMode::Plan);
    let (g_rep, s_rep) = rep.extract(fig.viewcl).unwrap();
    rep.resume();
    let (_, s_rep2) = rep.extract(fig.viewcl).unwrap();
    assert_eq!(g_live.to_json(), g_rep.to_json());
    assert_eq!(
        s_rep.target,
        TargetStats {
            backend: vbridge::BackendKind::Replay,
            ..s_live.target
        }
    );
    assert_eq!(
        s_rep2.target,
        TargetStats {
            backend: vbridge::BackendKind::Replay,
            ..s_live2.target
        }
    );
    assert_eq!(rep.replay_state().unwrap().remaining(), 0);
    std::fs::remove_dir_all(&dir).ok();
}
