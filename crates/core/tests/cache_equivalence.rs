//! Cache transparency: the snapshot block cache is a pure cost
//! optimization. Every Table 2 figure must extract *byte-identical*
//! vgraph JSON with the cache enabled — both cold (empty cache) and warm
//! (second extraction of the same figure) — as a plain uncached session
//! produces, while never costing more virtual time than uncached.
//!
use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::{figures, Session};

#[test]
fn all_figures_byte_identical_cached_cold_and_warm() {
    let uncached = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .attach()
        .unwrap();
    let mut cached = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .cache(CacheConfig::default())
        .attach()
        .unwrap();
    let mut failures = Vec::new();
    for fig in figures::all() {
        let (g, s) = uncached.extract(fig.viewcl).expect(fig.id);
        let reference = g.to_json();
        // Cold: resume() empties the cache, so the first cached
        // extraction starts from nothing.
        cached.resume();
        assert!(cached.cache().unwrap().is_empty());
        let (g_cold, s_cold) = cached.extract(fig.viewcl).expect(fig.id);
        if g_cold.to_json() != reference {
            failures.push(format!("{}: cold cached JSON differs", fig.id));
        }
        // Warm: same snapshot, so the re-extraction is mostly cache hits.
        let (g_warm, s_warm) = cached.extract(fig.viewcl).expect(fig.id);
        if g_warm.to_json() != reference {
            failures.push(format!("{}: warm cached JSON differs", fig.id));
        }
        if s_cold.target.virtual_ns > s.target.virtual_ns {
            failures.push(format!(
                "{}: cold cache costs more than uncached ({} > {} ns)",
                fig.id, s_cold.target.virtual_ns, s.target.virtual_ns
            ));
        }
        if s_warm.target.virtual_ns > s_cold.target.virtual_ns {
            failures.push(format!(
                "{}: warm costs more than cold ({} > {} ns)",
                fig.id, s_warm.target.virtual_ns, s_cold.target.virtual_ns
            ));
        }
        if s_warm.target.cache_hits == 0 {
            failures.push(format!("{}: warm extraction never hit the cache", fig.id));
        }
    }
    assert!(
        failures.is_empty(),
        "cache equivalence failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn block_size_sweep_preserves_equivalence() {
    // The invariants hold at every legal block size, not just the default.
    let uncached = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .attach()
        .unwrap();
    let fig = figures::by_id("fig3-4").unwrap();
    let (g, _) = uncached.extract(fig.viewcl).unwrap();
    let reference = g.to_json();
    for bs in [8u64, 64, 256, 4096] {
        let cached = Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::free())
            .cache(CacheConfig::with_block_size(bs))
            .attach()
            .unwrap();
        let (g_c, _) = cached.extract(fig.viewcl).unwrap();
        assert_eq!(g_c.to_json(), reference, "block size {bs}");
    }
}
