//! Wire-format coverage of the v-command protocol: every `VCommand`
//! variant (and both `VResponse` arms) must survive a JSON round trip
//! byte-for-byte, and malformed payloads must surface as parse errors,
//! never panics.

use vgraph::{diff, Graph, ViewInst};
use visualinux::proto::{VCommand, VResponse, VERSION};
use vpanels::{PaneId, SplitDir};

fn sample_graph() -> Graph {
    let mut g = Graph::new();
    let (a, _) = g.intern(0x1000, "Task", "task_struct", 0x40);
    let (b, _) = g.intern(0x2000, "Task", "task_struct", 0x40);
    g.get_mut(a).views.push(ViewInst {
        name: "default".into(),
        items: vec![
            vgraph::Item::Text {
                name: "pid".into(),
                value: "1".into(),
                raw: Some(1),
            },
            vgraph::Item::Link {
                name: "next".into(),
                target: b,
            },
        ],
    });
    g.roots.push(a);
    g
}

fn mutated_graph() -> Graph {
    let mut g = sample_graph();
    let id = g.roots[0];
    if let vgraph::Item::Text { value, raw, .. } = &mut g.get_mut(id).views[0].items[0] {
        *value = "2".into();
        *raw = Some(2);
    }
    g
}

/// Every wire variant under test, one constructor per `VCommand` arm.
fn all_commands() -> Vec<(&'static str, VCommand)> {
    let base = sample_graph();
    let delta = diff::diff(&base, &mutated_graph());
    vec![
        (
            "vplot",
            VCommand::Vplot {
                graph: base,
                source: "plot @root".into(),
            },
        ),
        (
            "vctrl_apply",
            VCommand::VctrlApply {
                pane: PaneId(3),
                viewql: "a = SELECT task_struct FROM *\nUPDATE a WITH collapsed: true".into(),
            },
        ),
        (
            "vctrl_split",
            VCommand::VctrlSplit {
                pane: PaneId(1),
                dir: SplitDir::Horizontal,
            },
        ),
        ("vctrl_focus", VCommand::VctrlFocus { addr: 0xffff_8880 }),
        (
            "vchat",
            VCommand::Vchat {
                pane: PaneId(0),
                message: "shrink idle tasks".into(),
            },
        ),
        (
            "vplot_request",
            VCommand::VplotRequest {
                viewcl: "define T as Box<task_struct> [ Text pid ]".into(),
            },
        ),
        (
            "vplot_delta",
            VCommand::VplotDelta {
                source: "plot @root".into(),
                seq: 7,
                delta,
            },
        ),
        (
            "vack",
            VCommand::Vack {
                source: "plot @root".into(),
                seq: 7,
                proto: VERSION,
            },
        ),
        (
            "vattach",
            VCommand::Vattach {
                session: "replay-03".into(),
            },
        ),
    ]
}

#[test]
fn every_vcommand_variant_round_trips() {
    let cmds = all_commands();
    // Exhaustiveness guard: adding a VCommand variant must extend this
    // test. The match below fails to compile on a new variant.
    for (_, c) in &cmds {
        match c {
            VCommand::Vplot { .. }
            | VCommand::VctrlApply { .. }
            | VCommand::VctrlSplit { .. }
            | VCommand::VctrlFocus { .. }
            | VCommand::Vchat { .. }
            | VCommand::VplotRequest { .. }
            | VCommand::VplotDelta { .. }
            | VCommand::Vack { .. }
            | VCommand::Vattach { .. } => {}
        }
    }
    for (tag, cmd) in cmds {
        let json = cmd.to_json();
        assert!(
            json.contains(&format!("\"command\":\"{tag}\"")),
            "{tag}: tag missing in {json}"
        );
        let back = VCommand::from_json(&json).unwrap_or_else(|e| panic!("{tag}: {e}"));
        // Serialization is deterministic, so a byte-identical re-encode
        // proves the round trip lost nothing.
        assert_eq!(back.to_json(), json, "{tag}: round trip changed bytes");
    }
}

#[test]
fn vack_carries_the_protocol_version_and_defaults_for_old_peers() {
    // The current revision round-trips through the stamped field.
    assert!(VERSION >= 2, "binary framing shipped at revision 2");
    let ack = VCommand::Vack {
        source: "plot @root".into(),
        seq: 3,
        proto: VERSION,
    };
    let json = ack.to_json();
    assert!(
        json.contains(&format!("\"proto\":{VERSION}")),
        "version stamp missing in {json}"
    );
    let VCommand::Vack { proto, .. } = VCommand::from_json(&json).unwrap() else {
        panic!("variant changed in flight");
    };
    assert_eq!(proto, VERSION);
    // Pre-stamping peers omit the field entirely; serde defaults it to 0
    // so the serving side can tell "old client" from any real revision.
    let legacy = "{\"command\":\"vack\",\"source\":\"plot @root\",\"seq\":3}";
    let VCommand::Vack { source, seq, proto } = VCommand::from_json(legacy).unwrap() else {
        panic!("legacy ack no longer parses");
    };
    assert_eq!((source.as_str(), seq, proto), ("plot @root", 3, 0));
}

#[test]
fn delta_payload_survives_the_wire_semantically() {
    let base = sample_graph();
    let new = mutated_graph();
    let cmd = VCommand::VplotDelta {
        source: "plot @root".into(),
        seq: 1,
        delta: diff::diff(&base, &new),
    };
    let back = VCommand::from_json(&cmd.to_json()).unwrap();
    let VCommand::VplotDelta { seq, delta, .. } = back else {
        panic!("variant changed in flight");
    };
    assert_eq!(seq, 1);
    let rebuilt = diff::apply(&base, &delta).unwrap();
    assert_eq!(rebuilt.to_json(), new.to_json());
}

#[test]
fn responses_round_trip() {
    for resp in [
        VResponse::Ok {
            pane: Some(PaneId(2)),
            synthesized: Some("UPDATE a WITH collapsed: true".into()),
        },
        VResponse::Ok {
            pane: None,
            synthesized: None,
        },
        VResponse::Err {
            message: "no such pane".into(),
        },
    ] {
        let json = resp.to_json();
        let back = VResponse::from_json(&json).unwrap();
        assert_eq!(back.to_json(), json);
    }
}

#[test]
fn malformed_json_is_an_error_not_a_panic() {
    for bad in [
        "",
        "{",
        "not json at all",
        "42",
        "[]",
        "{}",                                // no command tag
        "{\"command\":\"no_such_command\"}", // unknown tag
        "{\"command\":\"vack\"}",            // missing fields
        "{\"command\":\"vctrl_focus\",\"addr\":\"not a number\"}",
        "{\"command\":\"vplot_delta\",\"source\":\"s\",\"seq\":1,\"delta\":{\"base_len\":\"x\"}}",
        // Routing frames: a vattach must carry a string session key.
        "{\"command\":\"vattach\"}",
        "{\"command\":\"vattach\",\"session\":42}",
        "{\"command\":\"vattach\",\"session\":null}",
        "{\"command\":\"vattach\",\"session\":[\"a\"]}",
    ] {
        assert!(
            VCommand::from_json(bad).is_err(),
            "accepted malformed payload: {bad:?}"
        );
    }
    assert!(VResponse::from_json("{\"status\":\"nope\"}").is_err());
}
