//! Public-API snapshot: the exported surface of `vbridge` (the backend
//! trait, capture format and target layering), `core::session` (the
//! builder and v-commands), `core::proto` (the wire protocol and its
//! version constant) and `vserve` (the Io/Framing transport seam, the
//! evented pump and the serving surface) is locked against a checked-in
//! golden, so an accidental signature change or a silently dropped
//! export fails here instead of shipping.
//!
//! Regenerating after an *intentional* API change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p visualinux --test api_surface
//! git diff crates/core/tests/goldens/   # review, then commit
//! ```

use std::fs;
use std::path::{Path, PathBuf};

const ITEM_PREFIXES: [&str; 8] = [
    "pub fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub type ",
    "pub const ",
    "pub use ",
    "pub mod ",
];

/// Collect the `pub` item signatures of one source file, in order,
/// stopping at the test module. One line per item: `file: signature`.
fn harvest(path: &Path, out: &mut String) {
    let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let file = path.file_name().unwrap().to_str().unwrap();
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("#[cfg(test)]") {
            break;
        }
        if !ITEM_PREFIXES.iter().any(|p| t.starts_with(p)) {
            continue;
        }
        let sig = t
            .split(" {")
            .next()
            .unwrap()
            .trim_end_matches(';')
            .trim_end();
        out.push_str(&format!("{file}: {sig}\n"));
    }
}

#[test]
fn public_api_matches_golden() {
    let core = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut snap = String::new();

    for dir in ["../vbridge/src", "../vserve/src"] {
        let dir = core.join(dir);
        let mut files: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        files.sort();
        for f in &files {
            harvest(f, &mut snap);
        }
    }
    harvest(&core.join("src/proto.rs"), &mut snap);
    harvest(&core.join("src/session.rs"), &mut snap);

    let golden = core.join("tests/goldens/api_surface.txt");
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        fs::create_dir_all(golden.parent().unwrap()).unwrap();
        fs::write(&golden, &snap).unwrap();
        return;
    }
    let want = fs::read_to_string(&golden).expect(
        "golden missing; generate it with \
         UPDATE_GOLDENS=1 cargo test -p visualinux --test api_surface",
    );
    if want != snap {
        let diff: Vec<String> = {
            let w: Vec<&str> = want.lines().collect();
            let s: Vec<&str> = snap.lines().collect();
            let mut d = Vec::new();
            for i in 0..w.len().max(s.len()) {
                match (w.get(i), s.get(i)) {
                    (Some(a), Some(b)) if a == b => {}
                    (a, b) => d.push(format!(
                        "  line {}: golden `{}` vs current `{}`",
                        i + 1,
                        a.unwrap_or(&"<absent>"),
                        b.unwrap_or(&"<absent>")
                    )),
                }
            }
            d
        };
        panic!(
            "public API surface drifted from the golden ({} lines differ).\n\
             If intentional: UPDATE_GOLDENS=1 cargo test -p visualinux --test api_surface\n\
             First differences:\n{}",
            diff.len(),
            diff.iter().take(20).cloned().collect::<Vec<_>>().join("\n")
        );
    }
}
