//! The §5.3 case studies: StackRot (CVE-2023-3269) and Dirty Pipe
//! (CVE-2022-0847), driven end to end.
//!
//! Each driver builds the workload, injects the bug state
//! ([`ksim::scenarios`]), attaches a [`crate::Session`], extracts the
//! plots the paper shows, applies the ViewQL (hand-written and
//! vchat-synthesized), and returns a structured report the benches and
//! examples assert on.

use ksim::scenarios;
use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use vgraph::Item;
use vpanels::PaneId;

use crate::{PlotSpec, Session, SessionError};

/// The RCU side of the StackRot plot, appended to the Fig 9-2 program.
pub const STACKROT_RCU_VIEWCL: &str = r#"
define RcuHead as Box<callback_head> [
    Text<fptr> func
    Link next -> switch ${@this.next != NULL} {
        case ${true}: RcuHead(${@this.next})
        otherwise: NULL
    }
]
define RcuData as Box<rcu_data> [
    Text cpu
    Text len: cblist.len
    Text<u64:x> gp_seq
    Link cblist_head -> switch ${@this.cblist.head != NULL} {
        case ${true}: RcuHead(${@this.cblist.head})
        otherwise: NULL
    }
]
rcu0 = RcuData(${rcu_data_of(0)})
rcu1 = RcuData(${rcu_data_of(1)})
plot @rcu0
plot @rcu1
"#;

/// Findings of the StackRot investigation.
pub struct StackRotReport {
    /// The attached session (panes intact for rendering).
    pub session: Session,
    /// The combined maple-tree + RCU pane.
    pub pane: PaneId,
    /// The injected ground truth.
    pub injected: scenarios::StackRot,
    /// Was the victim node found in the plotted maple tree?
    pub node_in_tree: bool,
    /// Was the victim's `rcu_head` found on the RCU callback list with
    /// destructor `mt_free_rcu`?
    pub node_on_rcu_list: bool,
    /// The ViewQL program used to pin the victim (vchat-synthesized).
    pub pin_viewql: String,
    /// VMAs left visible after pinning.
    pub visible_vmas: usize,
}

/// Run the StackRot case study.
pub fn stackrot(profile: LatencyProfile) -> Result<StackRotReport, SessionError> {
    let mut workload = build(&WorkloadConfig::default());
    let injected = scenarios::inject_stackrot(&mut workload);
    let mut session = Session::builder(workload).profile(profile).attach()?;

    // One pane: the process address space (Fig 9-2's maple tree) plus the
    // per-CPU RCU callback lists.
    let fig = crate::figures::by_id("fig9-2").expect("figure library");
    let combined = format!("{}\n{}", fig.viewcl, STACKROT_RCU_VIEWCL);
    let pane = session.plot(PlotSpec::Source(&combined))?;

    // Force the maple-tree view everywhere (Fig 4 uses :show_mt).
    session.vctrl_refine(
        pane,
        "m = SELECT mm_struct FROM *\nUPDATE m WITH view: show_mt",
    )?;

    // Evidence 1: the victim node is still linked below the tree root.
    let graph = session.graph(pane)?;
    let node_in_tree = graph.boxes().iter().any(|b| {
        b.label == "MapleNode" && ksim::maple::mte_to_node(b.addr) == injected.victim_node
    });
    // Evidence 2: its embedded rcu_head sits on CPU 0's callback list with
    // the maple destructor.
    let node_on_rcu_list = graph.boxes().iter().any(|b| {
        b.label == "RcuHead"
            && b.addr == injected.rcu_head
            && matches!(
                b.item("func"),
                Some(Item::Text { value, .. }) if value == "mt_free_rcu"
            )
    });

    // §3.2: pin one VMA through natural language; every other VMA
    // collapses.
    let keep = graph
        .boxes()
        .iter()
        .find(|b| b.ctype == "vm_area_struct")
        .map(|b| b.addr)
        .unwrap_or(0);
    let out = session.vchat(
        pane,
        &format!("Find me all vm_area_struct whose address is not {keep:#x}, and collapse them"),
        true,
    )?;
    let graph = session.graph(pane)?;
    let visible_vmas = graph
        .boxes()
        .iter()
        .filter(|b| b.ctype == "vm_area_struct" && !b.attrs.collapsed && !b.attrs.trimmed)
        .count();

    Ok(StackRotReport {
        session,
        pane,
        injected,
        node_in_tree,
        node_on_rcu_list,
        pin_viewql: out.viewql,
        visible_vmas,
    })
}

/// The Dirty Pipe plot: page caches of all files and all pipes reachable
/// from the current thread's file table (paper Fig 7, ~60 LoC).
pub const DIRTY_PIPE_VIEWCL: &str = r#"
define PageDP as Box<page> [
    Text index
    Text<flag:page> flags
    Text refcount: _refcount.counter
]
define PageCache as Box<address_space> [
    Text nrpages
    Container pagecache: XArray(${&@this.i_pages}).forEach |e| {
        yield PageDP(@e)
    }
]
define FileDP as Box<file> [
    Text<string> name: ${@this.f_path.dentry->d_iname}
    Link pagecache -> PageCache(${@this.f_mapping})
]
define PipeBuffer as Box<pipe_buffer> [
    Text offset, len
    Text<flag:pipe_buf> flags
    Link page -> switch ${@this.page != NULL} {
        case ${true}: PageDP(${@this.page})
        otherwise: NULL
    }
]
define Pipe as Box<pipe_inode_info> [
    Text head, tail, ring_size
    Container bufs: Array(${@this.bufs}, ${@this.head}).forEach |b| {
        yield PipeBuffer(@b)
    }
]
define TaskDP as Box<task_struct> [
    Text pid
    Text<string> comm
    Container files: Array(${@this.files->fdt->fd}, ${@this.files->next_fd}).forEach |f| {
        yield switch ${@f != NULL} {
            case ${true}: switch ${(@f->f_inode->i_mode & 61440) == S_IFIFO} {
                case ${true}: Pipe(${@f->private_data})
                otherwise: switch ${(@f->f_inode->i_mode & 61440) == S_IFREG} {
                    case ${true}: FileDP(@f)
                    otherwise: NULL
                }
            }
            otherwise: NULL
        }
    }
]
t = TaskDP(${current_task})
plot @t
"#;

/// The paper's Fig 7 ViewQL: isolate pages shared between a file and a
/// pipe.
pub const DIRTY_PIPE_VIEWQL: &str = r#"
// Find pages belonging to any file
file_pgc = SELECT file->pagecache FROM *
file_pgs = SELECT page FROM REACHABLE(file_pgc)
// Find pages belonging to any pipe
pipe_buf = SELECT pipe_inode_info->bufs FROM *
pipe_pgs = SELECT page FROM REACHABLE(pipe_buf)
// Trim pages except for shared ones
UPDATE pipe_pgs \ file_pgs WITH trimmed: true
UPDATE file_pgs \ pipe_pgs WITH trimmed: true
"#;

/// Findings of the Dirty Pipe investigation.
pub struct DirtyPipeReport {
    /// The attached session.
    pub session: Session,
    /// The Fig 7 pane.
    pub pane: PaneId,
    /// The injected ground truth.
    pub injected: scenarios::DirtyPipe,
    /// Pages left visible after the ViewQL (should be exactly the shared
    /// one).
    pub visible_pages: Vec<u64>,
    /// Does the surviving pipe buffer carry `PIPE_BUF_FLAG_CAN_MERGE`?
    pub can_merge_flagged: bool,
}

/// Run the Dirty Pipe case study.
pub fn dirty_pipe(profile: LatencyProfile) -> Result<DirtyPipeReport, SessionError> {
    let mut workload = build(&WorkloadConfig::default());
    let injected = scenarios::inject_dirty_pipe(&mut workload);
    let mut session = Session::builder(workload).profile(profile).attach()?;

    let pane = session.plot(PlotSpec::Source(DIRTY_PIPE_VIEWCL))?;
    session.vctrl_refine(pane, DIRTY_PIPE_VIEWQL)?;

    let graph = session.graph(pane)?;
    let visible_pages: Vec<u64> = graph
        .boxes()
        .iter()
        .filter(|b| b.ctype == "page" && !b.attrs.trimmed)
        .map(|b| b.addr)
        .collect();
    let can_merge_flagged = graph.boxes().iter().any(|b| {
        b.ctype == "pipe_buffer"
            && matches!(
                b.item("flags"),
                Some(Item::Text { value, .. }) if value.contains("PIPE_BUF_FLAG_CAN_MERGE")
            )
    });

    Ok(DirtyPipeReport {
        session,
        pane,
        injected,
        visible_pages,
        can_merge_flagged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stackrot_evidence_is_visible() {
        let r = stackrot(LatencyProfile::free()).unwrap();
        assert!(r.node_in_tree, "victim node must still hang in the tree");
        assert!(
            r.node_on_rcu_list,
            "victim rcu_head must be on the callback list"
        );
        assert_eq!(r.visible_vmas, 1, "pin leaves exactly one VMA visible");
        assert!(r.pin_viewql.contains("AS obj WHERE obj !="));
    }

    #[test]
    fn dirty_pipe_isolates_the_shared_page() {
        let r = dirty_pipe(LatencyProfile::free()).unwrap();
        assert_eq!(
            r.visible_pages,
            vec![r.injected.shared_page],
            "exactly the shared page survives the trim"
        );
        assert!(r.can_merge_flagged, "the buggy CAN_MERGE flag is displayed");
    }
}
