//! Visualinux: visual interactive debugging of the (simulated) Linux
//! kernel.
//!
//! This is the top-level crate of the Visualinux reproduction: it wires
//! the kernel image ([`ksim`]), the debugger bridge ([`vbridge`]), the two
//! DSLs ([`viewcl`], [`vql`]), the pane system ([`vpanels`]) and the
//! renderers ([`vrender`]) into the tool the paper describes:
//!
//! * [`helpers`] registers the kernel helper functions (the ~500 lines of
//!   GDB scripts in the paper) callable from `${...}` expressions;
//! * [`figures`] is the ULK figure library: one ViewCL program per row of
//!   Table 2, plus the Table 3 debugging objectives;
//! * [`Session`] implements the three *v-commands* — `vplot`, `vctrl`,
//!   `vchat` (§4) — over a pane tree;
//! * [`casestudies`] drives the two CVE investigations of §5.3.
//!
//! # Examples
//!
//! ```
//! use ksim::workload::{build, WorkloadConfig};
//! use visualinux::{PlotSpec, Session};
//!
//! let workload = build(&WorkloadConfig::default());
//! let mut session = Session::builder(workload)
//!     .profile(vbridge::LatencyProfile::gdb_qemu())
//!     .attach()
//!     .unwrap();
//! let pane = session.plot(PlotSpec::Figure("fig7-1")).unwrap();
//! let text = session.render_text(pane).unwrap();
//! assert!(text.contains("pid"));
//! ```

pub mod casestudies;
pub mod figures;
pub mod helpers;
pub mod proto;
mod session;
mod spec;

pub use session::{PlotSpec, PlotStats, Session, SessionBuilder, SessionError, VChatOutcome};
pub use spec::SessionSpec;

// Re-export the full stack for examples and downstream users.
pub use ksim;
pub use ktypes;
pub use vbridge;
pub use vchat;
pub use vgraph;
pub use viewcl;
pub use vpanels;
pub use vql;
pub use vrender;
