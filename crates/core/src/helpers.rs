//! Kernel helper functions exposed to `${...}` expressions.
//!
//! The paper ships ~500 lines of GDB scripts that "expose kernel functions
//! invisible to the debugger" — static inlines and macros like `cpu_rq()`,
//! `mte_to_node()` and `task_state()`. This module is that layer: each
//! helper is a closure over the target, registered by its kernel name so
//! ViewCL programs read exactly like they would against a live kernel.

use ksim::maple;
use ktypes::CValue;
use vbridge::{BridgeError, HelperRegistry, Target};

fn arg_u64(args: &[CValue], i: usize, who: &str) -> vbridge::Result<u64> {
    args.get(i)
        .and_then(|v| v.as_u64().or_else(|| v.address()))
        .ok_or_else(|| BridgeError::Eval(format!("{who}: argument {i} must be scalar")))
}

fn long_ty(t: &Target<'_>) -> ktypes::TypeId {
    t.types.find("long").expect("long interned")
}

fn int_val(t: &Target<'_>, v: i64) -> CValue {
    CValue::Int {
        value: v,
        ty: long_ty(t),
    }
}

/// Register every kernel helper.
///
/// Safe to call on any image built by [`ksim::workload::build`]; helpers
/// that need a symbol (e.g. `runqueues`) resolve it lazily at call time so
/// partial images (unit tests) can still register the full set.
pub fn register_all(h: &mut HelperRegistry) {
    // ------------------------------------------------------------ sched --
    // cpu_rq(cpu): address of CPU's struct rq inside the per-cpu area.
    h.register("cpu_rq", |t, args| {
        let cpu = arg_u64(args, 0, "cpu_rq")?;
        let sym = t
            .symbols
            .lookup("runqueues")
            .ok_or_else(|| BridgeError::UnknownIdent("runqueues".into()))?;
        let rq_ty = t
            .types
            .find("rq")
            .ok_or_else(|| BridgeError::Eval("struct rq not registered".into()))?;
        let size = t.types.size_of(rq_ty);
        let pty = t
            .types
            .find_pointer_to(rq_ty)
            .ok_or_else(|| BridgeError::Eval("rq* not interned".into()))?;
        Ok(CValue::Ptr {
            addr: sym.addr + cpu * size,
            ty: pty,
        })
    });

    // task_state(task): the one-letter state like ps(1).
    h.register("task_state", |t, args| {
        let task = arg_u64(args, 0, "task_state")?;
        let ty = t
            .types
            .find("task_struct")
            .ok_or_else(|| BridgeError::Eval("task_struct not registered".into()))?;
        let (off, _) = t.types.field_path(ty, "__state")?;
        let (flags_off, _) = t.types.field_path(ty, "flags")?;
        let s = t.read_uint(task + off, 4)?;
        let flags = t.read_uint(task + flags_off, 4)?;
        let letter = match s {
            0 => "R",
            1 => "S",
            2 => "D",
            4 => "T",
            _ => "?",
        };
        let suffix = if flags & ksim::tasks::PF_KTHREAD != 0 {
            "k"
        } else {
            ""
        };
        Ok(CValue::Str(format!("{letter}{suffix}")))
    });

    // ------------------------------------------------------- maple tree --
    h.register("mte_to_node", |t, args| {
        let e = arg_u64(args, 0, "mte_to_node")?;
        let node_ty = t
            .types
            .find("maple_node")
            .ok_or_else(|| BridgeError::Eval("maple_node not registered".into()))?;
        let pty = t
            .types
            .find_pointer_to(node_ty)
            .ok_or_else(|| BridgeError::Eval("maple_node* not interned".into()))?;
        Ok(CValue::Ptr {
            addr: maple::mte_to_node(e),
            ty: pty,
        })
    });
    h.register("mte_node_type", |t, args| {
        let e = arg_u64(args, 0, "mte_node_type")?;
        Ok(int_val(t, maple::mte_node_type(e) as i64))
    });
    h.register("mte_is_leaf", |t, args| {
        let e = arg_u64(args, 0, "mte_is_leaf")?;
        Ok(int_val(
            t,
            maple::ma_is_leaf(maple::mte_node_type(e)) as i64,
        ))
    });
    h.register("xa_is_node", |t, args| {
        let e = arg_u64(args, 0, "xa_is_node")?;
        Ok(int_val(t, maple::xa_is_node(e) as i64))
    });
    // ma_slot_check(entry): a live slot? (non-NULL and not reserved).
    h.register("ma_slot_check", |t, args| {
        let e = arg_u64(args, 0, "ma_slot_check")?;
        Ok(int_val(t, (e != 0) as i64))
    });
    // mt_node_max(type): maximum index spanned by a node of this type.
    h.register("mt_node_max", |t, args| {
        let ty = arg_u64(args, 0, "mt_node_max")?;
        let max = match ty {
            0 => 63,              // maple_dense
            _ => i64::MAX as u64, // range nodes cover the full space
        };
        Ok(int_val(t, max as i64))
    });
    // mte_parent(node): the parent maple_node (untagged), 0 at the root.
    h.register("mte_parent", |t, args| {
        let node = arg_u64(args, 0, "mte_parent")?;
        let parent = t.read_uint(node, 8)?;
        let addr = if parent & 1 == 1 {
            0
        } else {
            maple::mte_to_node(parent)
        };
        Ok(int_val(t, addr as i64))
    });

    // ----------------------------------------------------------- percpu --
    // per_cpu_ptr(base, cpu, size): base + cpu * size.
    h.register("per_cpu_ptr", |t, args| {
        let base = arg_u64(args, 0, "per_cpu_ptr")?;
        let cpu = arg_u64(args, 1, "per_cpu_ptr")?;
        let size = arg_u64(args, 2, "per_cpu_ptr")?;
        Ok(int_val(t, (base + cpu * size) as i64))
    });
    // timer_base_of(cpu) / rcu_data_of(cpu): typed per-cpu accessors.
    h.register("timer_base_of", |t, args| {
        let cpu = arg_u64(args, 0, "timer_base_of")?;
        let sym = t
            .symbols
            .lookup("timer_bases")
            .ok_or_else(|| BridgeError::UnknownIdent("timer_bases".into()))?;
        let ty = t
            .types
            .find("timer_base")
            .ok_or_else(|| BridgeError::Eval("timer_base not registered".into()))?;
        let pty = t.types.find_pointer_to(ty).expect("ensure_pointers ran");
        Ok(CValue::Ptr {
            addr: sym.addr + cpu * t.types.size_of(ty),
            ty: pty,
        })
    });
    h.register("rcu_data_of", |t, args| {
        let cpu = arg_u64(args, 0, "rcu_data_of")?;
        let sym = t
            .symbols
            .lookup("rcu_data")
            .ok_or_else(|| BridgeError::UnknownIdent("rcu_data".into()))?;
        let ty = t
            .types
            .find("rcu_data")
            .ok_or_else(|| BridgeError::Eval("rcu_data not registered".into()))?;
        let pty = t.types.find_pointer_to(ty).expect("ensure_pointers ran");
        Ok(CValue::Ptr {
            addr: sym.addr + cpu * t.types.size_of(ty),
            ty: pty,
        })
    });

    h.register("xa_to_node", |t, args| {
        let e = arg_u64(args, 0, "xa_to_node")?;
        let ty = t
            .types
            .find("xa_node")
            .ok_or_else(|| BridgeError::Eval("xa_node not registered".into()))?;
        let pty = t.types.find_pointer_to(ty).expect("ensure_pointers ran");
        Ok(CValue::Ptr {
            addr: e & !3,
            ty: pty,
        })
    });

    // find_vma(mm, addr): the kernel's VMA lookup — walks the maple tree
    // through metered reads and returns the covering vm_area_struct.
    h.register("find_vma", |t, args| {
        let mm = arg_u64(args, 0, "find_vma")?;
        let addr = arg_u64(args, 1, "find_vma")?;
        let mm_ty = t
            .types
            .find("mm_struct")
            .ok_or_else(|| BridgeError::Eval("mm_struct not registered".into()))?;
        let (root_off, _) = t.types.field_path(mm_ty, "mm_mt.ma_root")?;
        let mut entry = t.read_uint(mm + root_off, 8)?;
        let vma_ty = t.types.find("vm_area_struct").expect("registered");
        let pty = t
            .types
            .find_pointer_to(vma_ty)
            .expect("ensure_pointers ran");
        // Descend through tagged nodes picking the slot whose pivot covers
        // `addr` (mas_walk, simplified).
        let mut lo = 0u64;
        while maple::xa_is_node(entry) {
            let node = maple::mte_to_node(entry);
            // A maple node is 256 bytes and the walk below reads pivots
            // and slots scattered across it: pull it in one span.
            t.prefetch(node, 256);
            let ty = maple::mte_node_type(entry);
            let (nslots, piv_off, slot_off) = if ty == maple::MapleType::Arange64 as u64 {
                (
                    maple::MAPLE_ARANGE64_SLOTS,
                    8,
                    8 + 8 * (maple::MAPLE_ARANGE64_SLOTS - 1),
                )
            } else {
                (
                    maple::MAPLE_RANGE64_SLOTS,
                    8,
                    8 + 8 * (maple::MAPLE_RANGE64_SLOTS - 1),
                )
            };
            let mut next = 0u64;
            for i in 0..nslots {
                let piv = if i + 1 < nslots {
                    t.read_uint(node + piv_off + 8 * i, 8)?
                } else {
                    u64::MAX
                };
                let piv = if piv == 0 && i > 0 { u64::MAX } else { piv };
                if addr <= piv {
                    next = t.read_uint(node + slot_off + 8 * i, 8)?;
                    break;
                }
                lo = piv.wrapping_add(1);
            }
            let _ = lo;
            entry = next;
            if entry == 0 {
                break;
            }
        }
        Ok(CValue::Ptr {
            addr: entry,
            ty: pty,
        })
    });

    // fname_eq(fnptr, "name"): does the function pointer resolve to the
    // named symbol? The discriminator for heterogeneous work lists (§4.1).
    h.register("fname_eq", |t, args| {
        let f = arg_u64(args, 0, "fname_eq")?;
        let name = match args.get(1) {
            Some(CValue::Str(s)) => s.clone(),
            _ => {
                return Err(BridgeError::Eval(
                    "fname_eq: second arg must be a string".into(),
                ))
            }
        };
        let eq = t.symbols.name_at(f) == Some(name.as_str());
        Ok(int_val(t, eq as i64))
    });

    // ------------------------------------------------------------- misc --
    // zone_of(node_data, idx): &pglist_data->node_zones[idx].
    h.register("zone_of", |t, args| {
        let nd = arg_u64(args, 0, "zone_of")?;
        let idx = arg_u64(args, 1, "zone_of")?;
        let pgdat = t
            .types
            .find("pglist_data")
            .ok_or_else(|| BridgeError::Eval("pglist_data not registered".into()))?;
        let (zones_off, _) = t.types.field_path(pgdat, "node_zones")?;
        let zone_ty = t.types.find("zone").expect("zone registered");
        let pty = t
            .types
            .find_pointer_to(zone_ty)
            .expect("ensure_pointers ran");
        Ok(CValue::Ptr {
            addr: nd + zones_off + idx * t.types.size_of(zone_ty),
            ty: pty,
        })
    });
    // pfn_of_page(page): vmemmap arithmetic, for display.
    h.register("pfn_of_page", |t, args| {
        let page = arg_u64(args, 0, "pfn_of_page")?;
        let page_ty = t
            .types
            .find("page")
            .ok_or_else(|| BridgeError::Eval("struct page not registered".into()))?;
        let pfn = (page - ksim::image::VMEMMAP_BASE) / t.types.size_of(page_ty);
        Ok(int_val(t, pfn as i64))
    });
    // i_mapping_of(inode): follows inode->i_mapping.
    h.register("i_mapping_of", |t, args| {
        let inode = arg_u64(args, 0, "i_mapping_of")?;
        let ity = t
            .types
            .find("inode")
            .ok_or_else(|| BridgeError::Eval("inode not registered".into()))?;
        let (off, _) = t.types.field_path(ity, "i_mapping")?;
        let asty = t.types.find("address_space").expect("registered");
        let pty = t.types.find_pointer_to(asty).expect("ensure_pointers ran");
        Ok(CValue::Ptr {
            addr: t.read_uint(inode + off, 8)?,
            ty: pty,
        })
    });
    // sem_base(sem_array): address of the inline sems[] flexible array.
    h.register("sem_base", |t, args| {
        let sa = arg_u64(args, 0, "sem_base")?;
        let saty = t
            .types
            .find("sem_array")
            .ok_or_else(|| BridgeError::Eval("sem_array not registered".into()))?;
        let sem_ty = t.types.find("sem").expect("registered");
        let pty = t
            .types
            .find_pointer_to(sem_ty)
            .expect("ensure_pointers ran");
        Ok(CValue::Ptr {
            addr: sa + t.types.size_of(saty),
            ty: pty,
        })
    });
    // ntohs(port): byte-swap a 16-bit port for display.
    h.register("ntohs", |t, args| {
        let v = arg_u64(args, 0, "ntohs")? as u16;
        Ok(int_val(t, v.swap_bytes() as i64))
    });
    // ip4_str(addr): dotted quad of a little-endian stored IPv4 address.
    h.register("ip4_str", |_t, args| {
        let v = arg_u64(args, 0, "ip4_str")? as u32;
        let b = v.to_le_bytes();
        Ok(CValue::Str(format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])))
    });
}

/// A registry with everything registered — the common entry point.
pub fn registry() -> HelperRegistry {
    let mut h = HelperRegistry::new();
    register_all(&mut h);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::workload::{build, WorkloadConfig};
    use vbridge::{Evaluator, LatencyProfile};

    #[test]
    fn helpers_work_through_expressions() {
        let (img, _t, roots) = build(&WorkloadConfig::default()).finish();
        let target = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        let h = registry();
        let ev = Evaluator::new(&target, &h);

        // cpu_rq(1)->cpu == 1.
        assert_eq!(ev.eval_str("cpu_rq(1)->cpu").unwrap().as_int(), Some(1));
        // task_state(&init_task) is a running kthread.
        match ev.eval_str("task_state(&init_task)").unwrap() {
            CValue::Str(s) => assert_eq!(s, "Rk"),
            other => panic!("unexpected {other:?}"),
        }
        // Maple tagging round-trips.
        let leader = roots.leaders[0];
        let root = ev
            .eval_str(&format!(
                "((struct task_struct *){leader})->mm->mm_mt.ma_root"
            ))
            .unwrap()
            .as_u64()
            .unwrap();
        assert_eq!(
            ev.eval_str(&format!("xa_is_node({root})"))
                .unwrap()
                .as_int(),
            Some(1)
        );
        let node = ev.eval_str(&format!("mte_to_node({root})")).unwrap();
        assert_eq!(node.address(), Some(ksim::maple::mte_to_node(root)));
        // Network byte order.
        assert_eq!(ev.eval_str("ntohs(0x5000)").unwrap().as_int(), Some(0x0050));
        match ev.eval_str("ip4_str(0x0100007f)").unwrap() {
            CValue::Str(s) => assert_eq!(s, "127.0.0.1"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
