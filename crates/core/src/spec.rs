//! Session recipes: everything needed to (re)build an attached
//! [`Session`] from scratch, as plain `Send + Sync` data.
//!
//! `Session` itself is deliberately single-threaded (`Rc`/`RefCell`
//! tracing state), so a fleet cannot move sessions between threads — it
//! moves *specs* and rebuilds. A [`SessionSpec`] is the unit of
//! spawn/evict/respawn in `vfleet`: evicting an engine keeps its spec
//! (plus a served-extraction journal), and the next request rebuilds an
//! identical session on a fresh thread. Because `ksim` workloads are
//! seed-deterministic and `.vrec` captures replay bit-identically, two
//! sessions built from equal specs serve byte-identical graphs — which
//! is what [`SessionSpec::fingerprint`] certifies for the fleet's
//! cross-session share groups.

use std::sync::Arc;

use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, Capture, ExecMode, LatencyProfile};

use crate::session::{Result, Session};

/// A serializable recipe for building an attached session.
#[derive(Debug, Clone)]
pub enum SessionSpec {
    /// Build a live simulated kernel image and attach to it.
    Live {
        /// The workload to build (seed-deterministic).
        workload: WorkloadConfig,
        /// Latency profile to meter under.
        profile: LatencyProfile,
        /// Snapshot block cache, if enabled.
        cache: Option<CacheConfig>,
        /// Interpreter or plan-driven extraction.
        exec: ExecMode,
    },
    /// Rebuild a replay session over a recorded wire capture. The
    /// capture is shared (`Arc`): respawns clone the events once per
    /// build, not once per registration.
    Replay {
        /// The `.vrec` capture to serve.
        capture: Arc<Capture>,
    },
}

impl SessionSpec {
    /// A live spec with the default cache and interpreter execution.
    pub fn live(workload: WorkloadConfig, profile: LatencyProfile) -> SessionSpec {
        SessionSpec::Live {
            workload,
            profile,
            cache: Some(CacheConfig::default()),
            exec: ExecMode::Interp,
        }
    }

    /// A replay spec over a recorded capture (profile, cache and exec
    /// mode come from the capture header, as `Session::replay` defaults).
    pub fn replay(capture: Capture) -> SessionSpec {
        SessionSpec::Replay {
            capture: Arc::new(capture),
        }
    }

    /// Whether this spec builds a replay session (strict tape order; the
    /// fleet must never warm its cache or reorder its walks).
    pub fn is_replay(&self) -> bool {
        matches!(self, SessionSpec::Replay { .. })
    }

    /// Build a fresh attached session from the recipe.
    pub fn build(&self) -> Result<Session> {
        match self {
            SessionSpec::Live {
                workload,
                profile,
                cache,
                exec,
            } => {
                let mut b = Session::builder(build(workload))
                    .profile(*profile)
                    .exec(*exec);
                if let Some(cfg) = cache {
                    b = b.cache(*cfg);
                }
                b.attach()
            }
            SessionSpec::Replay { capture } => Session::replay((**capture).clone()).attach(),
        }
    }

    /// A content fingerprint: equal fingerprints mean "these specs build
    /// sessions that serve byte-identical graphs", so the fleet may pool
    /// them into one cross-session share group. Live specs hash the
    /// workload/profile/cache/exec configuration; replay specs hash the
    /// full capture document.
    pub fn fingerprint(&self) -> u64 {
        match self {
            SessionSpec::Live {
                workload,
                profile,
                cache,
                exec,
            } => fnv64(format!("live:{workload:?}:{profile:?}:{cache:?}:{exec:?}").as_bytes()),
            SessionSpec::Replay { capture } => fnv64(capture.to_json().as_bytes()),
        }
    }
}

/// FNV-1a, 64-bit: stable across processes (unlike `DefaultHasher`'s
/// unspecified keys), so fingerprints are reproducible in bench output.
fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_fingerprints_separate_configs_and_build_sessions() {
        let a = SessionSpec::live(WorkloadConfig::default(), LatencyProfile::free());
        let b = SessionSpec::live(WorkloadConfig::default(), LatencyProfile::free());
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal specs pool");
        let c = SessionSpec::live(
            WorkloadConfig {
                processes: 7,
                ..WorkloadConfig::default()
            },
            LatencyProfile::free(),
        );
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "different workloads split"
        );
        assert!(!a.is_replay());

        let s = a.build().unwrap();
        let fig = crate::figures::by_id("fig3-4").unwrap();
        let (g1, _) = s.extract(fig.viewcl).unwrap();
        let (g2, _) = b.build().unwrap().extract(fig.viewcl).unwrap();
        assert_eq!(g1, g2, "equal specs build byte-identical sessions");
    }

    #[test]
    fn replay_spec_round_trips_a_capture() {
        let fig = crate::figures::by_id("fig3-4").unwrap();
        let rec = Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::free())
            .record("unused.vrec")
            .attach()
            .unwrap();
        let (live_graph, _) = rec.extract(fig.viewcl).unwrap();
        let cap = rec.capture().unwrap();

        let spec = SessionSpec::replay(cap.clone());
        assert!(spec.is_replay());
        assert_eq!(
            spec.fingerprint(),
            SessionSpec::replay(cap).fingerprint(),
            "same capture, same share group"
        );
        let (replayed, _) = spec.build().unwrap().extract(fig.viewcl).unwrap();
        assert_eq!(live_graph, replayed);
    }
}
