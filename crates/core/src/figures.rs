//! The ULK figure library: Table 2's 21 figures as ViewCL programs, plus
//! the Table 3 debugging objectives (description + hand-written ViewQL).
//!
//! Each entry carries the paper-reported LoC and data-structure-drift
//! class so the Table 2 harness can print the comparison. The ViewCL
//! programs target the Linux 6.1 layouts of the simulated kernel — e.g.
//! Fig 9-2 walks the *maple tree*, Fig 15-1 the *xarray*, Fig 8-4 *SLUB*:
//! exactly the "underlying data structure underwent significant changes"
//! rows of the paper.

/// Kernel drift since ULK's Linux 2.6.11, per Table 2's Δ column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delta {
    /// ○ — negligible changes.
    Negligible,
    /// ⊙ — some variables or fields changed.
    Vars,
    /// ◐ — fields, data structures or object relations changed.
    Fields,
    /// ● — the underlying data structure was replaced.
    Major,
}

impl Delta {
    /// The glyph used in Table 2.
    pub fn glyph(self) -> &'static str {
        match self {
            Delta::Negligible => "o",
            Delta::Vars => "(.)",
            Delta::Fields => "(|)",
            Delta::Major => "(*)",
        }
    }
}

/// A Table 3 debugging objective: a natural-language description plus the
/// hand-written ViewQL that achieves it.
#[derive(Debug, Clone)]
pub struct Objective {
    /// The natural-language description fed to `vchat`.
    pub description: &'static str,
    /// The reference ViewQL program.
    pub viewql: &'static str,
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Stable id (`fig3-4`, `workqueue`, …).
    pub id: &'static str,
    /// ULK figure number, or a dash for the added figures.
    pub ulk: &'static str,
    /// Diagram description from Table 2.
    pub title: &'static str,
    /// ViewCL LoC the paper reports.
    pub paper_loc: u32,
    /// Drift class from Table 2's Δ column.
    pub delta: Delta,
    /// The ViewCL program.
    pub viewcl: &'static str,
    /// The Table 3 objective for this figure, if any.
    pub objective: Option<Objective>,
}

/// Look up a figure by id.
pub fn by_id(id: &str) -> Option<Figure> {
    all().into_iter().find(|f| f.id == id)
}

/// All 21 figures in Table 2 order.
pub fn all() -> Vec<Figure> {
    vec![
        fig3_4(),
        fig3_6(),
        fig4_5(),
        fig6_1(),
        fig7_1(),
        fig8_2(),
        fig8_4(),
        fig9_2(),
        fig11_1(),
        fig12_3(),
        fig13_3(),
        fig14_3(),
        fig15_1(),
        fig16_2(),
        fig17_1(),
        fig17_6(),
        fig19_1(),
        fig19_2(),
        workqueue(),
        proc2vfs(),
        socketconn(),
    ]
}

fn fig3_4() -> Figure {
    Figure {
        id: "fig3-4",
        ulk: "Fig 3-4",
        title: "process parenthood tree",
        paper_loc: 27,
        delta: Delta::Negligible,
        viewcl: r#"
define MM as Box<mm_struct> [
    Text map_count, total_vm
    Text<u64:x> mmap_base
]
define Task as Box<task_struct> {
    :default [
        Text pid, tgid
        Text<string> comm
        Text<string> state: ${task_state(@this)}
        Link mm -> switch ${@this.mm != NULL} {
            case ${true}: MM(${@this.mm})
            otherwise: NULL
        }
        Container children: List(${&@this.children}).forEach |node| {
            yield Task<task_struct.sibling>(@node)
        }
    ]
    :default => :show_children [
        Text ppid: ${@this.parent != NULL ? @this.parent->pid : 0}
    ]
    // The three-view example of §2.3: default / show_mm / full.
    :default => :show_mm [
        Text active_mm: ${@this.active_mm}
    ]
    :show_mm => :full [
        Text prio, static_prio, normal_prio
        Text se.vruntime
        Text utime, stime, start_time
        Text<u64:x> flags
        Text on_cpu, cpu
    ]
}
root = Task(${&init_task})
plot @root
"#,
        objective: Some(Objective {
            description: "Display view show_children of all tasks, and shrink tasks that have no address space",
            viewql: r#"
a = SELECT task_struct FROM *
UPDATE a WITH view: show_children
b = SELECT task_struct FROM * WHERE mm == NULL
UPDATE b WITH collapsed: true
"#,
        }),
    }
}

fn fig3_6() -> Figure {
    Figure {
        id: "fig3-6",
        ulk: "Fig 3-6",
        title: "PID hash tables",
        paper_loc: 48,
        delta: Delta::Vars,
        viewcl: r#"
define TaskRef as Box<task_struct> [
    Text pid
    Text<string> comm
]
define PidEntry as Box<pid> [
    Text nr: numbers[0].nr
    Text count: count.refs.counter
    Container tasks: HList(${&@this.tasks[0]}).forEach |node| {
        yield TaskRef<task_struct.pid_links[0]>(@node)
    }
]
buckets = Array(${pid_hash}).forEach |bucket| {
    yield Box Bucket [
        Container chain: HList(@bucket).forEach |node| {
            yield PidEntry<pid.numbers[0].pid_chain>(@node)
        }
    ]
}
ht = Box HashTable [
    Text size: ${PID_HASH_SIZE}
    Container buckets: @buckets
]
plot @ht
"#,
        objective: Some(Objective {
            description: "Shrink all pid entries except for pids 0 and 100",
            viewql: r#"
all = SELECT pid FROM *
keep = SELECT pid FROM * WHERE nr == 0 OR nr == 100
UPDATE all \ keep WITH collapsed: true
"#,
        }),
    }
}

fn fig4_5() -> Figure {
    Figure {
        id: "fig4-5",
        ulk: "Fig 4-5",
        title: "IRQ descriptors",
        paper_loc: 59,
        delta: Delta::Fields,
        viewcl: r#"
define IrqAction as Box<irqaction> [
    Text irq
    Text<fptr> handler
    Text<string> name: ${@this.name}
    Text<u64:x> flags
    Link next -> switch ${@this.next != NULL} {
        case ${true}: IrqAction(${@this.next})
        otherwise: NULL
    }
]
define IrqDesc as Box<irq_desc> [
    Text irq: irq_data.irq
    Text hwirq: irq_data.hwirq
    Text<string> chip: ${@this.irq_data.chip->name}
    Text depth
    Link action -> switch ${@this.action != NULL} {
        case ${true}: IrqAction(${@this.action})
        otherwise: NULL
    }
]
descs = Array(${irq_desc}).forEach |d| {
    yield IrqDesc(@d)
}
table = Box IrqTable [
    Text nr_irqs: ${NR_IRQS}
    Container irqs: @descs
]
plot @table
"#,
        objective: Some(Objective {
            description: "Shrink irq descriptors whose action is not configured",
            viewql: r#"
a = SELECT irq_desc FROM * WHERE action == NULL
UPDATE a WITH collapsed: true
"#,
        }),
    }
}

fn fig6_1() -> Figure {
    Figure {
        id: "fig6-1",
        ulk: "Fig 6-1",
        title: "dynamic timers",
        paper_loc: 46,
        delta: Delta::Fields,
        viewcl: r#"
define Timer as Box<timer_list> [
    Text expires
    Text<fptr> function
    Text<u64:x> flags
]
wheel = Array(${timer_base_of(0)->vectors}).forEach |bucket| {
    yield switch ${@bucket.first != NULL} {
        case ${true}: Box Bucket [
            Container timers: HList(@bucket).forEach |n| {
                yield Timer<timer_list.entry>(@n)
            }
        ]
        otherwise: NULL
    }
}
tb = Box TimerBase [
    Text clk: ${timer_base_of(0)->clk}
    Text next_expiry: ${timer_base_of(0)->next_expiry}
    Text jiffies_now: ${jiffies}
    Container wheel: @wheel
]
plot @tb
"#,
        objective: None,
    }
}

fn fig7_1() -> Figure {
    Figure {
        id: "fig7-1",
        ulk: "Fig 7-1",
        title: "runqueue of CFS scheduler",
        paper_loc: 35,
        delta: Delta::Fields,
        viewcl: r#"
define Task as Box<task_struct> {
    :default [
        Text pid, comm
        Text ppid: ${@this.parent != NULL ? @this.parent->pid : 0}
        Text<string> state: ${task_state(@this)}
    ]
    :default => :sched [
        Text se.vruntime
        Text prio
    ]
}
tree = Box RBTree [
    Container nodes: RBTree(${&cpu_rq(0)->cfs.tasks_timeline}).forEach |node| {
        yield Task<task_struct.se.run_node>(@node)
    }
]
rq = Box RQ [
    Text cpu: ${cpu_rq(0)->cpu}
    Text nr_running: ${cpu_rq(0)->nr_running}
    Text min_vruntime: ${cpu_rq(0)->cfs.min_vruntime}
    Link tasks_timeline -> @tree
]
plot @rq
"#,
        objective: Some(Objective {
            description:
                "Display view sched of all processes, and display the red-black tree top-down",
            viewql: r#"
a = SELECT task_struct FROM *
UPDATE a WITH view: sched
b = SELECT RBTree FROM *
UPDATE b WITH direction: vertical
"#,
        }),
    }
}

fn fig8_2() -> Figure {
    Figure {
        id: "fig8-2",
        ulk: "Fig 8-2",
        title: "buddy system and pages",
        paper_loc: 64,
        delta: Delta::Vars,
        viewcl: r#"
define Page as Box<page> [
    Text pfn: ${pfn_of_page(@this)}
    Text order: private
    Text<u64:x> flags
]
define FreeArea as Box<free_area> [
    Text nr_free
    Container unmovable: List(${&@this.free_list[0]}).forEach |n| {
        yield Page<page.lru>(@n)
    }
    Container movable: List(${&@this.free_list[1]}).forEach |n| {
        yield Page<page.lru>(@n)
    }
    Container reclaimable: List(${&@this.free_list[2]}).forEach |n| {
        yield Page<page.lru>(@n)
    }
]
define Zone as Box<zone> [
    Text<string> name: ${@this.name}
    Text managed_pages
    Text low_wm: _watermark[0]
    Container free_area: Array(${@this.free_area}).forEach |fa| {
        yield FreeArea(@fa)
    }
]
z = Zone(${zone_of(&contig_page_data, 1)})
plot @z
"#,
        objective: None,
    }
}

fn fig8_4() -> Figure {
    Figure {
        id: "fig8-4",
        ulk: "Fig 8-4",
        title: "kmem cache and slab allocator",
        paper_loc: 102,
        delta: Delta::Major,
        viewcl: r#"
define Slab as Box<slab> [
    Text inuse, objects, frozen
    Text<raw_ptr> freelist
]
define CacheNode as Box<kmem_cache_node> [
    Text nr_partial
    Container partial: List(${&@this.partial}).forEach |n| {
        yield Slab<slab.slab_list>(@n)
    }
]
define KmemCache as Box<kmem_cache> [
    Text<string> name: ${@this.name}
    Text object_size, size, min_partial
    Link node -> CacheNode(${@this.node[0]})
]
caches = List(${&slab_caches}).forEach |n| {
    yield KmemCache<kmem_cache.list>(@n)
}
reg = Box List [
    Container caches: @caches
]
plot @reg
"#,
        objective: None,
    }
}

fn fig9_2() -> Figure {
    Figure {
        id: "fig9-2",
        ulk: "Fig 9-2",
        title: "process address space",
        paper_loc: 145,
        delta: Delta::Major,
        viewcl: r#"
// The maple tree program of the paper's Figure 3, Linux 6.1 layouts.
define FileRef as Box<file> [
    Text<string> name: ${@this.f_path.dentry->d_iname}
]
define VMArea as Box<vm_area_struct> [
    Text<u64:x> vm_start, vm_end
    Text<flag:vm> vm_flags
    Text is_writable: ${(@this.vm_flags & VM_WRITE) != 0}
    Link vm_file -> switch ${@this.vm_file != NULL} {
        case ${true}: FileRef(${@this.vm_file})
        otherwise: NULL
    }
]
define MapleNode as Box<maple_node> [
    Text<enum:maple_type> ntype: ${mte_node_type(@this)}
    Text is_leaf: ${mte_is_leaf(@this)}
    Container slots: @slots
    Container pivots: @pivots
] where {
    node = ${mte_to_node(@this)}
    is_leaf = ${mte_is_leaf(@this)}
    pivots = switch ${mte_node_type(@this)} {
        case ${maple_arange_64}: Array(${@node->ma64.pivot}).forEach |p| {
            yield Box Pivot [
                Text<u64:x> value: @p
            ]
        }
        otherwise: Array(${@node->mr64.pivot}).forEach |p| {
            yield Box Pivot [
                Text<u64:x> value: @p
            ]
        }
    }
    slots = switch ${mte_node_type(@this)} {
        case ${maple_arange_64}:
            Array(${@node->ma64.slot}).forEach |item| {
                yield switch ${ma_slot_check(@item)} {
                    case ${true}: MapleNode(@item)
                    otherwise: NULL
                }
            }
        otherwise:
            Array(${@node->mr64.slot}).forEach |item| {
                yield switch ${ma_slot_check(@item)} {
                    case ${true}: switch @is_leaf {
                        case ${true}: VMArea(@item)
                        otherwise: MapleNode(@item)
                    }
                    otherwise: NULL
                }
            }
    }
}
define MapleTree as Box<maple_tree> [
    Text<u64:x> ma_flags
    Link ma_root -> @root_box
] where {
    root_box = switch ${xa_is_node(@this.ma_root)} {
        case ${true}: MapleNode(${@this.ma_root})
        otherwise: switch ${@this.ma_root != NULL} {
            case ${true}: VMArea(${@this.ma_root})
            otherwise: NULL
        }
    }
}
define MMStruct as Box<mm_struct> {
    :default [
        Text<u64:x> mmap_base
        Text mm_count: mm_count.counter
        Text map_count
    ]
    :default => :show_mt [
        Link mm_maple_tree -> @mm_mt_box
    ]
    :default => :show_addrspace [
        Container mm_addr_space: Array.selectFrom(@mm_mt_box, VMArea)
    ]
    :dummy [
    ] where {
        mm_mt_box = MapleTree(${&@this.mm_mt})
    }
}
mm = MMStruct(${current_task->mm})
plot @mm
"#,
        objective: Some(Objective {
            description: "Display view show_mt of mm_struct, collapse the slot pointer list, and shrink all writable vm_area_structs",
            viewql: r#"
a = SELECT mm_struct FROM *
UPDATE a WITH view: show_mt
slots = SELECT maple_node.slots FROM *
UPDATE slots WITH collapsed: true
w = SELECT vm_area_struct FROM * WHERE is_writable == true
UPDATE w WITH collapsed: true
"#,
        }),
    }
}

fn fig11_1() -> Figure {
    Figure {
        id: "fig11-1",
        ulk: "Fig 11-1",
        title: "components for signal handling",
        paper_loc: 71,
        delta: Delta::Negligible,
        viewcl: r#"
define SigAction as Box<k_sigaction> [
    Text<fptr> handler: sa.sa_handler
    Text<u64:x> mask: sa.sa_mask.sig[0]
    Text<u64:x> flags: sa.sa_flags
]
define SigQueue as Box<sigqueue> [
    Text signo: info.si_signo
    Text code: info.si_code
]
define SigHand as Box<sighand_struct> [
    Text count: count.refs.counter
    Container action: Array(${@this.action}).forEach |a| {
        yield SigAction(@a)
    }
]
define SignalStruct as Box<signal_struct> [
    Text nr_threads
    Text live: live.counter
    Text<u64:x> pending_mask: shared_pending.signal.sig[0]
    Container shared_pending: List(${&@this.shared_pending.list}).forEach |n| {
        yield SigQueue<sigqueue.list>(@n)
    }
]
define TaskSig as Box<task_struct> [
    Text pid
    Text<string> comm
    Link signal -> SignalStruct(${@this.signal})
    Link sighand -> SigHand(${@this.sighand})
]
t = TaskSig(${current_task})
plot @t
"#,
        objective: Some(Objective {
            description: "Shrink all non-configured sigactions",
            viewql: r#"
a = SELECT k_sigaction FROM * WHERE handler == 0
UPDATE a WITH collapsed: true
"#,
        }),
    }
}

fn fig12_3() -> Figure {
    Figure {
        id: "fig12-3",
        ulk: "Fig 12-3",
        title: "the fd array",
        paper_loc: 55,
        delta: Delta::Fields,
        viewcl: r#"
define File as Box<file> [
    Text<string> name: ${@this.f_path.dentry->d_iname}
    Text pos: f_pos
    Text count: f_count.counter
    Text<u64:x> f_mode
]
define FdTable as Box<fdtable> [
    Text max_fds
    Container fd: Array(${@this.fd}, ${@this.max_fds}).forEach |f| {
        yield switch ${@f != NULL} {
            case ${true}: File(@f)
            otherwise: NULL
        }
    }
]
define FilesStruct as Box<files_struct> [
    Text count: count.counter
    Text next_fd
    Text<u64:b> open_fds: open_fds_init
    Link fdt -> FdTable(${@this.fdt})
]
fs = FilesStruct(${current_task->files})
plot @fs
"#,
        objective: None,
    }
}

fn fig13_3() -> Figure {
    Figure {
        id: "fig13-3",
        ulk: "Fig 13-3",
        title: "device driver and kobject",
        paper_loc: 55,
        delta: Delta::Vars,
        viewcl: r#"
define Driver as Box<device_driver> [
    Text<string> name: ${@this.name}
    Text<string> bus: ${@this.bus->name}
]
define Device as Box<device> [
    Text<string> name: ${@this.kobj.name}
    Text refs: kobj.kref.refcount.refs.counter
    Text<emoji:lock> in_sysfs: kobj.state_in_sysfs
    Link driver -> switch ${@this.driver != NULL} {
        case ${true}: Driver(${@this.driver})
        otherwise: NULL
    }
    Link parent -> switch ${@this.parent != NULL} {
        case ${true}: Device(${@this.parent})
        otherwise: NULL
    }
]
define Kset as Box<kset> [
    Text<string> name: ${@this.kobj.name}
    Container devices: List(${&@this.list}).forEach |n| {
        yield Device<device.kobj.entry>(@n)
    }
]
ks = Kset(${devices_kset})
plot @ks
"#,
        objective: None,
    }
}

fn fig14_3() -> Figure {
    Figure {
        id: "fig14-3",
        ulk: "Fig 14-3",
        title: "block device descriptors",
        paper_loc: 75,
        delta: Delta::Vars,
        viewcl: r#"
define Disk as Box<gendisk> [
    Text<string> disk_name
    Text major, minors
]
define BlockDevice as Box<block_device> [
    Text bd_partno
    Text bd_start_sect, bd_nr_sectors
    Link bd_disk -> Disk(${@this.bd_disk})
]
define SuperBlock as Box<super_block> [
    Text<string> s_id
    Text<string> fstype: ${@this.s_type->name}
    Text s_blocksize
    Link s_bdev -> switch ${@this.s_bdev != NULL} {
        case ${true}: BlockDevice(${@this.s_bdev})
        otherwise: NULL
    }
]
sbs = List(${&super_blocks}).forEach |n| {
    yield SuperBlock<super_block.s_list>(@n)
}
lst = Box List [
    Container super_blocks: @sbs
]
plot @lst
"#,
        objective: Some(Objective {
            description: "Display the superblock list vertically, and collapse superblocks that are not connected to any block device",
            viewql: r#"
a = SELECT List FROM *
UPDATE a WITH direction: vertical
b = SELECT super_block FROM * WHERE s_bdev == NULL
UPDATE b WITH collapsed: true
"#,
        }),
    }
}

fn fig15_1() -> Figure {
    Figure {
        id: "fig15-1",
        ulk: "Fig 15-1",
        title: "the radix tree managing page cache",
        paper_loc: 70,
        delta: Delta::Major,
        viewcl: r#"
define Page as Box<page> [
    Text pfn: ${pfn_of_page(@this)}
    Text index
    Text<flag:page> flags
]
define XaNode as Box<xa_node> [
    Text shift, count
    Container slots: Array(${@this.slots}).forEach |e| {
        yield switch ${@e != NULL} {
            case ${true}: switch ${xa_is_node(@e)} {
                case ${true}: XaNode(${xa_to_node(@e)})
                otherwise: Page(@e)
            }
            otherwise: NULL
        }
    }
]
define AddressSpace as Box<address_space> [
    Text nrpages
    Link i_pages -> @root_box
    Container pages: XArray(${&@this.i_pages}).forEach |e| {
        yield Page(@e)
    }
] where {
    head = ${@this.i_pages.xa_head}
    root_box = switch ${xa_is_node(@head)} {
        case ${true}: XaNode(${xa_to_node(@head)})
        otherwise: switch ${@head != NULL} {
            case ${true}: Page(@head)
            otherwise: NULL
        }
    }
}
m = AddressSpace(${current_task->files->fd_array[0]->f_mapping})
plot @m
"#,
        objective: Some(Objective {
            description: "Shrink the extremely large page list in file mappings",
            viewql: r#"
a = SELECT address_space.pages FROM *
UPDATE a WITH collapsed: true
"#,
        }),
    }
}

fn fig16_2() -> Figure {
    Figure {
        id: "fig16-2",
        ulk: "Fig 16-2",
        title: "file memory mapping",
        paper_loc: 53,
        delta: Delta::Vars,
        viewcl: r#"
define Page16 as Box<page> [
    Text index
    Text<flag:page> flags
]
define Mapping as Box<address_space> [
    Text nrpages
    Container pages: XArray(${&@this.i_pages}).forEach |e| {
        yield Page16(@e)
    }
]
define MappedFile as Box<file> [
    Text<string> name: ${@this.f_path.dentry->d_iname}
    Text count: f_count.counter
    Link mapping -> switch ${@this.f_mapping != NULL && ((struct address_space *)@this.f_mapping)->nrpages > 0} {
        case ${true}: Mapping(${@this.f_mapping})
        otherwise: NULL
    }
]
files = Array(${current_task->files->fdt->fd}, ${current_task->files->next_fd}).forEach |f| {
    yield switch ${@f != NULL} {
        case ${true}: MappedFile(@f)
        otherwise: NULL
    }
}
tbl = Box List [
    Container files: @files
]
plot @tbl
"#,
        objective: Some(Objective {
            description: "Shrink all files that have no memory mapping",
            viewql: r#"
a = SELECT file FROM * WHERE mapping == NULL
UPDATE a WITH collapsed: true
"#,
        }),
    }
}

fn fig17_1() -> Figure {
    Figure {
        id: "fig17-1",
        ulk: "Fig 17-1",
        title: "reverse map of anonymous pages",
        paper_loc: 154,
        delta: Delta::Negligible,
        viewcl: r#"
define Vma17 as Box<vm_area_struct> {
    :default [
        Text<u64:x> vm_start, vm_end
        Text<flag:vm> vm_flags
    ]
    :default => :show_chains [
        Container anon_vma_chain: List(${&@this.anon_vma_chain}).forEach |n| {
            yield Avc<anon_vma_chain.same_vma>(@n)
        }
    ]
}
define Avc as Box<anon_vma_chain> [
    Text<u64:x> rb_subtree_last
    Link vma -> Vma17(${@this.vma})
    Link anon_vma -> AnonVma(${@this.anon_vma})
]
define AnonVma as Box<anon_vma> [
    Text refcount: refcount.counter
    Text num_active_vmas, num_children
    Text<raw_ptr> root
    Container rb_root: RBTree(${&@this.rb_root}).forEach |n| {
        yield Avc<anon_vma_chain.rb>(@n)
    }
]
av = AnonVma(${find_vma(current_task->mm, 0x500000)->anon_vma})
plot @av
"#,
        objective: None,
    }
}

fn fig17_6() -> Figure {
    Figure {
        id: "fig17-6",
        ulk: "Fig 17-6",
        title: "swap area descriptors",
        paper_loc: 19,
        delta: Delta::Negligible,
        viewcl: r#"
define SwapInfo as Box<swap_info_struct> [
    Text prio, pages, inuse_pages
    Text<flag:swp> flags
    Text lowest_bit, highest_bit
]
areas = Array(${swap_info}).forEach |p| {
    yield switch ${@p != NULL} {
        case ${true}: SwapInfo(@p)
        otherwise: NULL
    }
}
reg = Box List [
    Text nr_swapfiles: ${nr_swapfiles}
    Container swap_info: @areas
]
plot @reg
"#,
        objective: None,
    }
}

fn fig19_1() -> Figure {
    Figure {
        id: "fig19-1",
        ulk: "Fig 19-1",
        title: "IPC semaphore management",
        paper_loc: 126,
        delta: Delta::Fields,
        viewcl: r#"
define Sem as Box<sem> [
    Text semval, sempid
    Text<emoji:lock> lock: lock.locked
]
define SemArray as Box<sem_array> {
    :default [
        Text id: sem_perm.id
        Text<u64:x> key: sem_perm.key
        Text sem_nsems
        Container sems: Array(${sem_base(@this)}, ${@this.sem_nsems}).forEach |s| {
            yield Sem(@s)
        }
    ]
    :default => :show_perm [
        Text<u64:o> mode: sem_perm.mode
        Text uid: sem_perm.uid
        Text refs: sem_perm.refcount.refs.counter
        Text complex_count
    ]
}
sems = List(${&sem_ids.entries}).forEach |n| {
    yield SemArray<sem_array.list_id>(@n)
}
reg = Box List [
    Text in_use: ${sem_ids.in_use}
    Container entries: @sems
]
plot @reg
"#,
        objective: None,
    }
}

fn fig19_2() -> Figure {
    Figure {
        id: "fig19-2",
        ulk: "Fig 19-2",
        title: "IPC message queue management",
        paper_loc: 0, // merged with Fig 19-1 in the paper's table
        delta: Delta::Fields,
        viewcl: r#"
define MsgMsg as Box<msg_msg> [
    Text m_type, m_ts
]
define MsgQueue as Box<msg_queue> [
    Text id: q_perm.id
    Text<u64:x> key: q_perm.key
    Text q_qnum, q_cbytes, q_qbytes
    Container messages: List(${&@this.q_messages}).forEach |n| {
        yield MsgMsg<msg_msg.m_list>(@n)
    }
]
queues = List(${&msg_ids.entries}).forEach |n| {
    yield MsgQueue<msg_queue.list_id>(@n)
}
reg = Box List [
    Text in_use: ${msg_ids.in_use}
    Container entries: @queues
]
plot @reg
"#,
        objective: None,
    }
}

fn workqueue() -> Figure {
    Figure {
        id: "workqueue",
        ulk: "-",
        title: "work queue",
        paper_loc: 89,
        delta: Delta::Fields,
        viewcl: r#"
// Heterogeneous work list: the enclosing type of each node is decided by
// its function pointer (the paper's Figure 6).
define Work as Box<work_struct> [
    Text<fptr> func
]
define DelayedWork as Box<delayed_work> [
    Text<fptr> func: work.func
    Text expires: timer.expires
]
define Pool as Box<worker_pool> [
    Text cpu, id, nr_workers, nr_idle
    Container worklist: List(${&@this.worklist}).forEach |n| {
        w = ${container_of(@n, struct work_struct, entry)}
        yield switch ${fname_eq(@w->func, "vmstat_update")} {
            case ${true}: DelayedWork<delayed_work.work.entry>(@n)
            otherwise: Work<work_struct.entry>(@n)
        }
    }
]
define Pwq as Box<pool_workqueue> [
    Text refcnt, max_active
    Link pool -> Pool(${@this.pool})
]
define Wq as Box<workqueue_struct> [
    Text<string> name
    Container pwqs: List(${&@this.pwqs}).forEach |n| {
        yield Pwq<pool_workqueue.pwqs_node>(@n)
    }
]
wq = Wq(${&mm_percpu_wq})
plot @wq
"#,
        objective: None,
    }
}

fn proc2vfs() -> Figure {
    Figure {
        id: "proc2vfs",
        ulk: "-",
        title: "from process to VFS",
        paper_loc: 96,
        delta: Delta::Negligible,
        viewcl: r#"
define Sb20 as Box<super_block> [
    Text<string> s_id
    Text<string> fstype: ${@this.s_type->name}
]
define Inode20 as Box<inode> [
    Text i_ino
    Text<u64:o> i_mode
    Text size: i_size
    Link i_sb -> Sb20(${@this.i_sb})
]
define Dentry20 as Box<dentry> [
    Text<string> name: ${@this.d_name}
    Link d_inode -> switch ${@this.d_inode != NULL} {
        case ${true}: Inode20(${@this.d_inode})
        otherwise: NULL
    }
]
define File20 as Box<file> [
    Text<string> name: ${@this.f_path.dentry->d_iname}
    Text pos: f_pos
    Link dentry -> Dentry20(${@this.f_path.dentry})
]
define Fs20 as Box<fs_struct> [
    Text users
    Link root -> Dentry20(${@this.root.dentry})
    Link pwd -> Dentry20(${@this.pwd.dentry})
]
define Files20 as Box<files_struct> [
    Text next_fd
    Container open_files: Array(${@this.fdt->fd}, ${@this.next_fd}).forEach |f| {
        yield switch ${@f != NULL} {
            case ${true}: File20(@f)
            otherwise: NULL
        }
    }
]
define Task20 as Box<task_struct> [
    Text pid
    Text<string> comm
    Link fs -> Fs20(${@this.fs})
    Link files -> Files20(${@this.files})
]
t = Task20(${current_task})
plot @t
"#,
        objective: None,
    }
}

fn socketconn() -> Figure {
    Figure {
        id: "socketconn",
        ulk: "-",
        title: "socket connection",
        paper_loc: 92,
        delta: Delta::Vars,
        viewcl: r#"
define SkBuff as Box<sk_buff> [
    Text len
]
define Sock as Box<sock> [
    Text<string> saddr: ${ip4_str(@this.__sk_common.skc_rcv_saddr)}
    Text sport: __sk_common.skc_num
    Text<string> daddr: ${ip4_str(@this.__sk_common.skc_daddr)}
    Text dport: __sk_common.skc_dport
    Text state: __sk_common.skc_state
    Text rmem: sk_rmem_alloc.counter
    Container receive_queue: List(${&@this.sk_receive_queue}).forEach |n| {
        yield SkBuff(@n)
    }
    Container write_queue: List(${&@this.sk_write_queue}).forEach |n| {
        yield SkBuff(@n)
    }
]
define Socket as Box<socket> [
    Text state, type
    Link sk -> Sock(${@this.sk})
]
socks = List(${&init_task.tasks}).forEach |n| {
    t = ${container_of(@n, struct task_struct, tasks)}
    yield switch ${@t->files != NULL && @t->pid == @t->tgid} {
        case ${true}: Socket(${@t->files->fd_array[5]->private_data})
        otherwise: NULL
    }
}
all = Box List [
    Container sockets: @socks
]
plot @all
"#,
        objective: Some(Objective {
            description: "Shrink sockets whose write buffer and receive buffer are both empty",
            viewql: r#"
a = SELECT sock FROM * WHERE write_queue == 0 AND receive_queue == 0
UPDATE a WITH collapsed: true
"#,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_one_figures() {
        assert_eq!(all().len(), 21);
        let ids: std::collections::HashSet<&str> = all().iter().map(|f| f.id).collect();
        assert_eq!(ids.len(), 21, "ids unique");
    }

    #[test]
    fn ten_objectives_like_table_3() {
        let n = all().iter().filter(|f| f.objective.is_some()).count();
        assert_eq!(n, 10);
    }

    #[test]
    fn every_program_parses() {
        for f in all() {
            viewcl::parse_program(f.viewcl)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", f.id));
        }
    }

    #[test]
    fn every_objective_viewql_parses_and_is_short() {
        for f in all() {
            if let Some(o) = &f.objective {
                vql::parse(o.viewql)
                    .unwrap_or_else(|e| panic!("{} objective does not parse: {e}", f.id));
                assert!(
                    vql::loc_of(o.viewql) < 10,
                    "{}: Table 3 promises <10 lines",
                    f.id
                );
            }
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("fig9-2").is_some());
        assert!(by_id("nope").is_none());
    }
}
