//! The v-command wire protocol (§4.2).
//!
//! The paper's GDB extension talks to the detached visualizer via HTTP
//! POST; this module defines that payload: a JSON envelope carrying
//! either a freshly extracted graph (`vplot`) or a pane-control request
//! (`vctrl` with a ViewQL program or a pane operation). A front-end can
//! consume these messages verbatim — the library stays transport-
//! agnostic (any HTTP server can forward `VCommand::to_json` bodies).

use serde::{Deserialize, Serialize};
use vgraph::{Graph, GraphDelta};
use vpanels::{PaneId, SplitDir};

/// The protocol revision this build speaks. Negotiated (and pinned) by
/// the binary wire handshake (`vserve::framing`): a peer announcing a
/// different revision is rejected loudly, naming both versions, instead
/// of silently misparsing frames. Newline-JSON connections predate the
/// handshake and are treated as implicitly compatible; clients stamp the
/// revision into every [`VCommand::Vack`] so the serving side can still
/// observe what its peers speak.
///
/// History: 1 = the blocking newline-JSON protocol (PR 4–9);
/// 2 = length-prefixed binary framing + hello/accept negotiation +
/// version-stamped acks.
pub const VERSION: u16 = 2;

/// A message from the GDB side to the visualizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "command", rename_all = "snake_case")]
pub enum VCommand {
    /// `vplot`: display a new object graph.
    Vplot {
        /// The extracted graph.
        graph: Graph,
        /// The ViewCL source it came from (for session replay).
        source: String,
    },
    /// `vctrl apply`: run a ViewQL program on a pane.
    VctrlApply {
        /// Target pane.
        pane: PaneId,
        /// The ViewQL program.
        viewql: String,
    },
    /// `vctrl split`: split a pane.
    VctrlSplit {
        /// Pane to split.
        pane: PaneId,
        /// Orientation.
        dir: SplitDir,
    },
    /// `vctrl focus`: search an object across panes.
    VctrlFocus {
        /// The object address.
        addr: u64,
    },
    /// `vchat`: natural-language request (the visualizer synthesizes and
    /// echoes back the ViewQL it ran).
    Vchat {
        /// Target pane.
        pane: PaneId,
        /// The user's message.
        message: String,
    },
    /// `vplot_request`: ask the serving side to extract and ship a graph
    /// (clients of `vserve`; the GDB side pushes `Vplot` instead).
    VplotRequest {
        /// The ViewCL program to extract.
        viewcl: String,
    },
    /// `vplot_delta`: incremental update to a previously shipped plot —
    /// apply `delta` to the last graph received for `source`.
    VplotDelta {
        /// The ViewCL source identifying the pane's plot.
        source: String,
        /// Sequence number; increments per delta, resets on a full ship.
        seq: u64,
        /// The semantic delta against the client's current graph.
        delta: GraphDelta,
    },
    /// `vack`: client acknowledges having applied `seq` for `source` —
    /// the server falls back to a full ship when the client is out of
    /// sync.
    Vack {
        /// The ViewCL source identifying the pane's plot.
        source: String,
        /// Last sequence number applied client-side.
        seq: u64,
        /// The protocol revision the acking client speaks
        /// ([`VERSION`]); `0` from peers that predate version stamping.
        #[serde(default)]
        proto: u16,
    },
    /// `vattach`: routing frame — the **first** line on a fleet
    /// (`vfleet`) connection names the session the client wants; every
    /// later frame flows to that session's engine. A single-session
    /// endpoint (or an already-routed connection) answers with an error.
    Vattach {
        /// The fleet session key.
        session: String,
    },
}

/// The visualizer's reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum VResponse {
    /// Success; `pane` identifies the created/affected pane.
    Ok {
        /// Affected pane.
        pane: Option<PaneId>,
        /// For `vchat`: the synthesized ViewQL.
        synthesized: Option<String>,
    },
    /// Failure with a message.
    Err {
        /// What went wrong.
        message: String,
    },
}

impl VCommand {
    /// Serialize to the JSON body of the HTTP POST.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("command serialization cannot fail")
    }

    /// Parse a received command.
    pub fn from_json(s: &str) -> serde_json::Result<VCommand> {
        serde_json::from_str(s)
    }
}

impl VResponse {
    /// Serialize the reply.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("response serialization cannot fail")
    }

    /// Parse a reply.
    pub fn from_json(s: &str) -> serde_json::Result<VResponse> {
        serde_json::from_str(s)
    }
}

/// Dispatch a received command against a live [`crate::Session`] — what
/// the visualizer's request handler does.
pub fn dispatch(session: &mut crate::Session, cmd: &VCommand) -> VResponse {
    let result: Result<VResponse, crate::SessionError> = (|| {
        Ok(match cmd {
            VCommand::Vplot { graph, .. } => {
                // The GDB side already paid the extraction cost; adopt the
                // shipped graph instead of re-extracting from `source`
                // (which is carried for session replay only).
                let pane = session.adopt_graph(graph.clone(), None)?;
                VResponse::Ok {
                    pane: Some(pane),
                    synthesized: None,
                }
            }
            VCommand::VctrlApply { pane, viewql } => {
                session.vctrl_refine(*pane, viewql)?;
                VResponse::Ok {
                    pane: Some(*pane),
                    synthesized: None,
                }
            }
            VCommand::VctrlSplit { .. } => VResponse::Err {
                message: "split requires a ViewCL source; use Session::vctrl_split".into(),
            },
            VCommand::VctrlFocus { addr } => {
                let hits = session.focus(*addr);
                VResponse::Ok {
                    pane: hits.first().map(|h| h.pane),
                    synthesized: None,
                }
            }
            VCommand::Vchat { pane, message } => {
                let out = session.vchat(*pane, message, true)?;
                VResponse::Ok {
                    pane: Some(*pane),
                    synthesized: Some(out.viewql),
                }
            }
            VCommand::VplotRequest { viewcl } => {
                let pane = session.plot(crate::PlotSpec::Source(viewcl))?;
                VResponse::Ok {
                    pane: Some(pane),
                    synthesized: None,
                }
            }
            VCommand::VplotDelta { .. } => VResponse::Err {
                message: "vplot_delta needs the client's base graph; \
                          apply it with vserve::Replica"
                    .into(),
            },
            VCommand::Vack { .. } => VResponse::Ok {
                pane: None,
                synthesized: None,
            },
            VCommand::Vattach { session } => VResponse::Err {
                message: format!(
                    "vattach `{session}`: this endpoint serves a single session \
                     (already routed, or not a fleet router)"
                ),
            },
        })
    })();
    result.unwrap_or_else(|e| VResponse::Err {
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::workload::{build, WorkloadConfig};
    use vbridge::LatencyProfile;

    #[test]
    fn commands_round_trip_as_json() {
        let cmd = VCommand::Vchat {
            pane: PaneId(0),
            message: "shrink idle tasks".into(),
        };
        let json = cmd.to_json();
        assert!(json.contains("\"command\":\"vchat\""));
        let back = VCommand::from_json(&json).unwrap();
        assert!(matches!(back, VCommand::Vchat { .. }));
    }

    #[test]
    fn dispatch_runs_the_full_v_command_path() {
        let mut s = crate::Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::free())
            .attach()
            .unwrap();
        // vplot over the wire.
        let fig = crate::figures::by_id("fig3-4").unwrap();
        let (graph, _) = s.extract(fig.viewcl).unwrap();
        let resp = dispatch(
            &mut s,
            &VCommand::Vplot {
                graph,
                source: fig.viewcl.to_string(),
            },
        );
        let pane = match resp {
            VResponse::Ok { pane: Some(p), .. } => p,
            other => panic!("unexpected {other:?}"),
        };
        // vctrl apply over the wire.
        let resp = dispatch(
            &mut s,
            &VCommand::VctrlApply {
                pane,
                viewql:
                    "a = SELECT task_struct FROM * WHERE mm == NULL\nUPDATE a WITH collapsed: true"
                        .into(),
            },
        );
        assert!(matches!(resp, VResponse::Ok { .. }));
        // vchat over the wire.
        let resp = dispatch(
            &mut s,
            &VCommand::Vchat {
                pane,
                message: "shrink tasks that have no address space".into(),
            },
        );
        match resp {
            VResponse::Ok {
                synthesized: Some(v),
                ..
            } => assert!(v.contains("mm == NULL")),
            other => panic!("unexpected {other:?}"),
        }
        // Errors come back as Err responses, not panics.
        let resp = dispatch(
            &mut s,
            &VCommand::VctrlApply {
                pane,
                viewql: "UPDATE nope WITH x: 1".into(),
            },
        );
        assert!(matches!(resp, VResponse::Err { .. }));
    }
}
