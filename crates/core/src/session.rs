//! The interactive debugging session and its v-commands (§4).

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::rc::Rc;

use ksim::workload::{AllTypes, Workload, WorkloadConfig, WorkloadRoots};
use ksim::KernelImage;
use vbridge::{
    BackendKind, BlockCache, BridgeError, CacheConfig, Capture, DirtyInfo, DirtySet, ExecMode,
    HelperRegistry, LatencyProfile, RecordBackend, Recorder, ReplayBackend, ReplayState,
    SimBackend, Target, TargetBackend, TargetStats,
};
use vgraph::{Graph, GraphStats};
use vpanels::{FocusHit, PaneId, SplitDir};
use vtrace::{SpanKind, TraceSpan, Tracer};

/// Errors surfaced by session operations.
#[derive(Debug)]
pub enum SessionError {
    /// ViewCL parse/evaluation failure.
    ViewCl(viewcl::VclError),
    /// ViewQL failure.
    ViewQl(vql::VqlError),
    /// Pane operation failure.
    Panel(vpanels::PanelError),
    /// vchat synthesis failure.
    Chat(vchat::VchatError),
    /// No such figure / pane.
    NotFound(String),
    /// A wire-capture problem: unloadable/underspecified `.vrec`, an
    /// attach combination that cannot work (recording a replay), or a
    /// failed capture write.
    Capture(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::ViewCl(e) => write!(f, "{e}"),
            SessionError::ViewQl(e) => write!(f, "{e}"),
            SessionError::Panel(e) => write!(f, "{e}"),
            SessionError::Chat(e) => write!(f, "{e}"),
            SessionError::NotFound(what) => write!(f, "not found: {what}"),
            SessionError::Capture(msg) => write!(f, "capture error: {msg}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<viewcl::VclError> for SessionError {
    fn from(e: viewcl::VclError) -> Self {
        SessionError::ViewCl(e)
    }
}
impl From<vql::VqlError> for SessionError {
    fn from(e: vql::VqlError) -> Self {
        SessionError::ViewQl(e)
    }
}
impl From<vpanels::PanelError> for SessionError {
    fn from(e: vpanels::PanelError) -> Self {
        SessionError::Panel(e)
    }
}
impl From<vchat::VchatError> for SessionError {
    fn from(e: vchat::VchatError) -> Self {
        SessionError::Chat(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, SessionError>;

/// Cost and size of one `vplot` extraction (the measurements of Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlotStats {
    /// Graph composition.
    pub graph: GraphStats,
    /// Target access totals during extraction.
    pub target: TargetStats,
}

impl PlotStats {
    /// Total virtual extraction time in milliseconds (Table 4 column 1).
    pub fn total_ms(&self) -> f64 {
        self.target.virtual_ns as f64 / 1e6
    }

    /// Cost per plotted kernel object in milliseconds (column 2).
    pub fn ms_per_object(&self) -> f64 {
        if self.graph.kernel_objects == 0 {
            return 0.0;
        }
        self.total_ms() / self.graph.kernel_objects as f64
    }

    /// Cost per KiB of data structure (column 3). "Data structure" here
    /// is the bytes the debugger actually transferred — the quantity the
    /// per-read packet cost is paid against, which is how the paper's
    /// per-KB column scales relative to its per-object column.
    pub fn ms_per_kb(&self) -> f64 {
        if self.target.bytes == 0 {
            return 0.0;
        }
        self.total_ms() / (self.target.bytes as f64 / 1024.0)
    }
}

/// What `vchat` did with a message.
#[derive(Debug, Clone, PartialEq)]
pub struct VChatOutcome {
    /// The synthesized ViewQL program.
    pub viewql: String,
    /// Whether it was applied to the pane.
    pub applied: bool,
}

/// What to plot — the single argument of [`Session::plot`], unifying the
/// three historical entry points (`vplot`, `vplot_figure`, `vplot_auto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlotSpec<'a> {
    /// A ViewCL program.
    Source(&'a str),
    /// A library figure by id (e.g. `"fig7-1"`).
    Figure(&'a str),
    /// Synthesized "naive" ViewCL (§4): every scalar field of `ctype`
    /// for the object at the debugger expression `root`.
    Auto {
        /// The C struct name.
        ctype: &'a str,
        /// Debugger expression evaluating to the object's address.
        root: &'a str,
    },
}

/// Scope of one checker run (the internal entry behind `vcheck` and
/// `vcheck_scoped`).
enum CheckScope<'a> {
    /// Full-image sweep from the well-known root symbols.
    Image,
    /// Only these candidates: (box on the pane, object address, C type).
    Boxes(&'a [(vgraph::BoxId, u64, String)]),
}

/// A box that produced fresh violations: (id, count, first diagnostic).
type Flagged = (vgraph::BoxId, usize, String);

/// Embed a [`WorkloadConfig`] in capture metadata (`meta.workload`).
fn workload_cfg_to_meta(cfg: &WorkloadConfig) -> serde_json::Value {
    use serde_json::{Map, Number, Value};
    let num = |n: u64| Value::Number(Number::from_u64(n));
    let mut w = Map::new();
    w.insert("processes".into(), num(cfg.processes as u64));
    w.insert("extra_threads".into(), num(cfg.extra_threads as u64));
    w.insert(
        "files_per_process".into(),
        num(cfg.files_per_process as u64),
    );
    w.insert("pages_per_file".into(), num(cfg.pages_per_file as u64));
    w.insert("anon_vmas".into(), num(cfg.anon_vmas as u64));
    w.insert("kthreads".into(), num(cfg.kthreads as u64));
    w.insert("seed".into(), num(cfg.seed));
    let mut meta = Map::new();
    meta.insert("workload".into(), Value::Object(w));
    Value::Object(meta)
}

/// Recover the [`WorkloadConfig`] from capture metadata, if present.
fn workload_cfg_from_meta(meta: &serde_json::Value) -> Option<WorkloadConfig> {
    let w = meta.get("workload")?;
    let field = |name: &str| w.get(name).and_then(|v| v.as_u64());
    Some(WorkloadConfig {
        processes: field("processes")? as usize,
        extra_threads: field("extra_threads")? as usize,
        files_per_process: field("files_per_process")? as usize,
        pages_per_file: field("pages_per_file")? as usize,
        anon_vmas: field("anon_vmas")? as usize,
        kthreads: field("kthreads")? as usize,
        seed: field("seed")?,
    })
}

/// What a [`SessionBuilder`] attaches to.
enum BuilderSource {
    /// A live (simulated) kernel image.
    Live(Box<Workload>),
    /// A recorded wire capture, served with zero image access.
    Replay(Box<Capture>),
}

/// Staged construction of a [`Session`] — the one entry surface for
/// every attach flavor:
///
/// ```
/// # use ksim::workload::{build, WorkloadConfig};
/// # use visualinux::Session;
/// let session = Session::builder(build(&WorkloadConfig::default()))
///     .profile(vbridge::LatencyProfile::kgdb_rpi400())
///     .cache(16)
///     .tracing()
///     .attach()
///     .unwrap();
/// # drop(session);
/// ```
///
/// Add `.record(path)` to capture every wire span into a `.vrec` file
/// (written by [`Session::save_recording`]), or start from
/// [`Session::replay`] to serve a capture back without any live image.
pub struct SessionBuilder {
    source: BuilderSource,
    profile: Option<LatencyProfile>,
    cache: Option<CacheConfig>,
    tracing: bool,
    record: Option<PathBuf>,
    exec: Option<ExecMode>,
    scenario: Option<(String, u64)>,
    incremental: bool,
}

impl SessionBuilder {
    /// Set the latency profile. Live sessions default to
    /// [`LatencyProfile::free`]; replay sessions default to the profile
    /// recorded in the capture header.
    pub fn profile(mut self, profile: LatencyProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Enable the snapshot block cache. Accepts a full [`CacheConfig`]
    /// or a bare block size (`.cache(16)`). Replay sessions default to
    /// the cache configuration recorded in the capture header.
    pub fn cache(mut self, cfg: impl Into<CacheConfig>) -> Self {
        self.cache = Some(cfg.into());
        self
    }

    /// Turn on vtrace span recording from the first extraction.
    pub fn tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Record every wire operation; [`Session::save_recording`] writes
    /// the capture to `path`. Only valid for live sessions.
    pub fn record(mut self, path: impl Into<PathBuf>) -> Self {
        self.record = Some(path.into());
        self
    }

    /// Set the execution mode. Live sessions default to
    /// [`ExecMode::Interp`]; replay sessions default to the mode
    /// recorded in the capture header (`meta.exec_mode`), because the
    /// two modes issue different wire sequences — forcing a mismatch
    /// makes the replay fail loudly naming the mode difference.
    pub fn exec(mut self, mode: ExecMode) -> Self {
        self.exec = Some(mode);
        self
    }

    /// Shorthand for `.exec(ExecMode::Plan)`: compile each pane into a
    /// walk plan and warm the cache with scheduled spans before the
    /// interpreter runs.
    pub fn plan(self) -> Self {
        self.exec(ExecMode::Plan)
    }

    /// Enable incremental re-extraction (vincr). The live image logs
    /// exact mutated byte ranges; across a [`Session::resume`] the
    /// session intersects them with the address spans each retained
    /// pane read, re-walking only panes the mutation could have
    /// changed — everything else is served from its retained graph,
    /// byte-identical and wire-free. Recorded captures tape the dirty
    /// sets (and stamp `meta.incremental`), so replay sessions follow
    /// the same decisions automatically; backends that cannot report
    /// dirty info degrade to full re-walks.
    pub fn incremental(mut self) -> Self {
        self.incremental = true;
        self
    }

    /// Stamp the corpus scenario this session's image was built from.
    /// Recorded capture headers then carry `meta.scenario` and
    /// `meta.scenario_fingerprint`, so a `.vrec` names the exact
    /// [`ksim::corpus::ScenarioSpec`] (content-addressed) it replays.
    pub fn scenario(mut self, spec: &ksim::corpus::ScenarioSpec) -> Self {
        self.scenario = Some((spec.name.clone(), spec.fingerprint()));
        self
    }

    /// Build the session.
    ///
    /// Live attaches cannot fail; replay attaches fail loudly when the
    /// capture lacks an embedded workload config or when `.record` was
    /// requested (a replay session cannot re-record).
    pub fn attach(self) -> Result<Session> {
        let (img, types, roots, cfg, profile, cache, recorder, record_path, replay) =
            match self.source {
                BuilderSource::Live(workload) => {
                    let cfg = workload.cfg.clone();
                    let (img, types, roots) = workload.finish();
                    let recorder = self.record.as_ref().map(|_| Rc::new(Recorder::new()));
                    let profile = self.profile.unwrap_or_else(LatencyProfile::free);
                    (
                        img,
                        types,
                        roots,
                        cfg,
                        profile,
                        self.cache,
                        recorder,
                        self.record,
                        None,
                    )
                }
                BuilderSource::Replay(capture) => {
                    if self.record.is_some() {
                        return Err(SessionError::Capture(
                            "a replay session cannot re-record; copy the .vrec instead".into(),
                        ));
                    }
                    let cfg = workload_cfg_from_meta(&capture.meta).ok_or_else(|| {
                        SessionError::Capture(
                            "capture has no embedded workload config (meta.workload); \
                             cannot rebuild the debug info"
                                .into(),
                        )
                    })?;
                    let profile = self.profile.unwrap_or(capture.profile);
                    let cache = self.cache.or(capture.cache);
                    let (img, types, roots) = ksim::workload::debug_info(&cfg);
                    (
                        img,
                        types,
                        roots,
                        cfg,
                        profile,
                        cache,
                        None,
                        None,
                        Some(ReplayState::new(*capture)),
                    )
                }
            };
        // A replay session follows the capture's recorded execution
        // mode unless the builder forces one; interp and plan issue
        // different wire sequences, so a forced mismatch is noted on
        // the replay state and surfaces in divergence diagnostics.
        let capture_mode = replay.as_ref().map(|st| {
            st.capture()
                .meta
                .get("exec_mode")
                .and_then(|v| v.as_str())
                .and_then(ExecMode::from_str_opt)
                .unwrap_or(ExecMode::Interp)
        });
        let exec_mode = self.exec.or(capture_mode).unwrap_or(ExecMode::Interp);
        if let (Some(st), Some(cm)) = (&replay, capture_mode) {
            if exec_mode != cm {
                st.note_mode_mismatch(exec_mode.as_str(), cm.as_str());
            }
        }
        // Replay sessions inherit the scenario identity stamped in the
        // capture header.
        let scenario = self.scenario.or_else(|| {
            replay.as_ref().and_then(|st| {
                st.capture()
                    .scenario()
                    .map(|(name, fp)| (name.to_string(), fp))
            })
        });
        // An incremental capture tapes dirty events before each resume
        // marker; the replay must follow the same refresh decisions to
        // keep its cursor (and counters) in step with the tape.
        let incremental = self.incremental
            || replay.as_ref().is_some_and(|st| {
                st.capture()
                    .meta
                    .get("incremental")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false)
            });
        let mut s = Session {
            img,
            types,
            roots,
            helpers: crate::helpers::registry(),
            profile,
            cache: cache.map(BlockCache::new),
            panes: None,
            stats: HashMap::new(),
            tracer: None,
            traces: RefCell::new(HashMap::new()),
            workload_cfg: cfg,
            recorder,
            record_path,
            replay,
            exec_mode,
            scenario,
            incremental,
            dirty_log: Vec::new(),
            touched: RefCell::new(vincr::TouchedIndex::new()),
            retained: RefCell::new(HashMap::new()),
        };
        if incremental && s.replay.is_none() {
            // The image's write log is the source of exact dirty sets.
            s.img.mem.enable_dirty_tracking();
        }
        if self.tracing {
            s.enable_tracing();
        }
        Ok(s)
    }
}

/// An attached Visualinux debugging session: one kernel image, a helper
/// registry, and a pane tree. Implements the three v-commands.
pub struct Session {
    img: KernelImage,
    /// Registered subsystem type handles.
    pub types: AllTypes,
    /// Interesting root addresses of the attached image.
    pub roots: WorkloadRoots,
    helpers: HelperRegistry,
    profile: LatencyProfile,
    cache: Option<BlockCache>,
    panes: Option<vpanels::Session>,
    stats: HashMap<PaneId, PlotStats>,
    tracer: Option<Rc<Tracer>>,
    /// Per-pane span trees (extraction + later refinements/renders).
    /// Interior-mutable so `&self` render paths can record their spans.
    traces: RefCell<HashMap<PaneId, TraceSpan>>,
    /// The workload config this session's image (or capture) came from.
    workload_cfg: WorkloadConfig,
    /// Wire tape when the session is recording.
    recorder: Option<Rc<Recorder>>,
    /// Where `save_recording` writes the capture.
    record_path: Option<PathBuf>,
    /// Replay cursor when the session serves a capture.
    replay: Option<ReplayState>,
    /// How extractions run: plain interpreter walk, or walk-plan
    /// compilation + scheduled cache warming first.
    exec_mode: ExecMode,
    /// Corpus scenario identity (name, spec fingerprint), when the
    /// session was built from or replays a corpus scenario.
    scenario: Option<(String, u64)>,
    /// Incremental re-extraction (vincr) is on: retained pane graphs
    /// refresh against backend-reported dirty sets between stops.
    incremental: bool,
    /// One entry per resume since attach: what changed across it.
    /// Retained panes remember the log length at extraction; the dirty
    /// set they must survive is the union of everything after.
    dirty_log: Vec<DirtyInfo>,
    /// Address spans each retained pane read during its last walk.
    touched: RefCell<vincr::TouchedIndex>,
    /// Retained graphs keyed by ViewCL source, with the dirty-log
    /// length at extraction time.
    retained: RefCell<HashMap<String, (Graph, usize)>>,
}

impl Session {
    /// Start building a live session over a built workload. See
    /// [`SessionBuilder`] for the knobs.
    pub fn builder(workload: Workload) -> SessionBuilder {
        SessionBuilder {
            source: BuilderSource::Live(Box::new(workload)),
            profile: None,
            cache: None,
            tracing: false,
            record: None,
            exec: None,
            scenario: None,
            incremental: false,
        }
    }

    /// Start building a live session from a corpus scenario: build the
    /// spec's workload, apply its declared injections, and stamp the
    /// scenario identity (so recorded captures name their spec). Returns
    /// the builder plus the scenario's ground-truth findings — the
    /// violations a [`Session::vcheck`] sweep must (and may only)
    /// report, ready for `kcheck::Checker::verify_expected`.
    pub fn from_scenario(
        spec: &ksim::corpus::ScenarioSpec,
    ) -> (SessionBuilder, Vec<ksim::corpus::ExpectedFinding>) {
        let built = spec.build();
        let builder = Session::builder(built.workload).scenario(spec);
        (builder, built.expected)
    }

    /// Start building a replay session over a recorded capture: the
    /// attached image holds the types/symbols of the recorded workload
    /// but **zero** target memory — every read is served from the
    /// capture, and any read that escapes it errors loudly.
    pub fn replay(capture: Capture) -> SessionBuilder {
        SessionBuilder {
            source: BuilderSource::Replay(Box::new(capture)),
            profile: None,
            cache: None,
            tracing: false,
            record: None,
            exec: None,
            scenario: None,
            incremental: false,
        }
    }

    /// Whether the bridge cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The session's bridge cache, if enabled.
    pub fn cache(&self) -> Option<&BlockCache> {
        self.cache.as_ref()
    }

    /// Export the cache's resident blocks for cross-session sharing
    /// (`vfleet` share groups). `None` when the cache is disabled.
    pub fn cache_snapshot(&self) -> Option<vbridge::CacheSnapshot> {
        self.cache.as_ref().map(|c| c.snapshot())
    }

    /// Adopt warmed spans from a sibling session stopped at the same
    /// machine state; returns the number of blocks adopted. A no-op on
    /// uncached sessions — and on replay sessions, whose tape must
    /// observe every fetch in recorded order (a warmed block would skip
    /// wire reads and diverge the capture cursor).
    pub fn warm_cache(&self, snap: &vbridge::CacheSnapshot) -> usize {
        if self.replay.is_some() {
            return 0;
        }
        self.cache.as_ref().map_or(0, |c| c.warm_from(snap))
    }

    /// Resume the (simulated) kernel: cached target bytes may now be
    /// stale. With exact dirty info (an incremental session over a
    /// backend that reports it) only the mutated blocks drop; otherwise
    /// the cache epoch is bumped and all blocks drop. Plots already on
    /// panes are unaffected — they are snapshots.
    ///
    /// A recording session notes the resume (and any known dirty set)
    /// on the tape; a replay session consumes the matching events (a
    /// divergence here poisons the replay and surfaces at the next
    /// wire read).
    pub fn resume(&mut self) {
        // What changed since the last stop, as observed on the live
        // image's write log (exact when dirty tracking is on).
        let observed = match self.img.mem.take_dirty() {
            Some(ranges) if self.replay.is_none() => {
                DirtyInfo::Known(DirtySet::from_ranges(ranges))
            }
            _ => DirtyInfo::Unknown,
        };
        // Route the observation through the same backend stack that
        // serves reads: a recording wire tapes known sets, a replay
        // wire substitutes the taped set, anything else reports
        // Unknown — the bottom rung of the degradation ladder.
        let info = {
            let backend: Box<dyn TargetBackend + '_> = match (&self.replay, &self.recorder) {
                (Some(state), _) => Box::new(ReplayBackend::new(state)),
                (None, Some(tape)) => Box::new(RecordBackend::new(
                    Box::new(SimBackend::new(&self.img.mem)),
                    tape.clone(),
                )),
                (None, None) => Box::new(SimBackend::new(&self.img.mem)),
            };
            backend.resume_dirty(observed)
        };
        if let Some(c) = &self.cache {
            match info.known() {
                Some(set) => {
                    c.invalidate_spans(set.ranges());
                }
                None => c.bump_epoch(),
            }
        }
        if let Some(r) = &self.recorder {
            r.note_resume();
        }
        if let Some(s) = &self.replay {
            let _ = s.consume_resume();
        }
        if self.incremental {
            self.dirty_log.push(info);
        }
    }

    /// The attached image (read-only).
    pub fn image(&self) -> &KernelImage {
        &self.img
    }

    /// Simulate the kernel running between two stop events: let `mutate`
    /// rewrite the image, then [`Session::resume`] so the bridge cache
    /// drops its now-stale blocks. The next extraction sees the new
    /// machine state; plots already on panes keep their old snapshots.
    ///
    /// A replay session has no image to rewrite — the capture already
    /// contains whatever the recorded kernel did between stops — so the
    /// call errors loudly, naming the backend kind, instead of silently
    /// dropping the mutation and diverging from the tape. Callers
    /// driving a replay should advance it with [`Session::resume`].
    pub fn stop_event(&mut self, mutate: impl FnOnce(&mut KernelImage)) -> vbridge::Result<()> {
        if self.replay.is_some() {
            return Err(BridgeError::Capture(format!(
                "stop_event on a `{}` session: there is no image to mutate — the \
                 capture already contains the recorded kernel's changes; call \
                 resume() to advance the tape instead",
                self.backend_kind().as_str()
            )));
        }
        mutate(&mut self.img);
        self.resume();
        Ok(())
    }

    /// The active latency profile.
    pub fn profile(&self) -> LatencyProfile {
        self.profile
    }

    /// Switch latency profile (affects subsequent plots).
    pub fn set_profile(&mut self, profile: LatencyProfile) {
        self.profile = profile;
    }

    /// Whether incremental re-extraction (vincr) is on.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// What changed since a retained pane's extraction: the union of
    /// every dirty set logged after `epoch`; `Unknown` if any resume in
    /// the window could not say.
    fn dirty_since(&self, epoch: usize) -> DirtyInfo {
        let mut ranges = Vec::new();
        for info in &self.dirty_log[epoch..] {
            match info.known() {
                Some(set) => ranges.extend_from_slice(set.ranges()),
                None => return DirtyInfo::Unknown,
            }
        }
        DirtyInfo::Known(DirtySet::from_ranges(ranges))
    }

    /// The active execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Switch execution mode (affects subsequent plots).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// Turn on vtrace span recording for this session. Idempotent;
    /// returns the (shared) tracer so callers can read the wire log or
    /// drain finished spans directly.
    pub fn enable_tracing(&mut self) -> Rc<Tracer> {
        if self.tracer.is_none() {
            self.tracer = Some(Rc::new(Tracer::new()));
        }
        self.tracer.clone().expect("just set")
    }

    /// Whether vtrace recording is on.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// The session tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Rc<Tracer>> {
        self.tracer.as_ref()
    }

    /// *vtrace*: the recorded span tree of a pane — a synthetic `pane`
    /// root whose children are the extraction and every traced
    /// refinement/render applied since. `None` when tracing was off or
    /// the pane has no plot.
    pub fn vtrace(&self, pane: PaneId) -> Option<TraceSpan> {
        self.traces.borrow().get(&pane).cloned()
    }

    /// Pop the most recent finished top-level span (e.g. the `extract`
    /// span of a bare [`Session::extract`] call, which has no pane to
    /// land on).
    pub fn take_last_trace(&self) -> Option<TraceSpan> {
        self.tracer.as_ref().and_then(|t| t.take_last_finished())
    }

    /// Export every recorded pane trace as Chrome `trace_event` JSON
    /// (load in `chrome://tracing` or Perfetto; one tid per pane).
    pub fn export_chrome_trace(&self) -> String {
        let traces = self.traces.borrow();
        let mut panes: Vec<(&PaneId, &TraceSpan)> = traces.iter().collect();
        panes.sort_by_key(|(p, _)| p.0);
        vtrace::chrome_trace_full(
            Some(self.backend_kind().as_str()),
            Some(self.exec_mode.as_str()),
            panes.into_iter().map(|(p, s)| (p.0 as u64, s)),
        )
    }

    /// Compose the backend stack and build a bridge target over it.
    /// Metering, caching and tracing live in [`Target`], once, above
    /// whichever backend the session attaches to:
    ///
    /// * replay session → [`ReplayBackend`] (the empty image is never
    ///   read);
    /// * recording session → [`RecordBackend`] over [`SimBackend`];
    /// * plain live session → [`SimBackend`].
    fn target(&self) -> Target<'_> {
        let backend: Box<dyn TargetBackend + '_> = match (&self.replay, &self.recorder) {
            (Some(state), _) => Box::new(ReplayBackend::new(state)),
            (None, Some(tape)) => Box::new(RecordBackend::new(
                Box::new(SimBackend::new(&self.img.mem)),
                tape.clone(),
            )),
            (None, None) => Box::new(SimBackend::new(&self.img.mem)),
        };
        let mut target = Target::over(backend, &self.img.types, &self.img.symbols, self.profile);
        if let Some(cache) = &self.cache {
            target.set_cache(cache);
        }
        if let Some(t) = &self.tracer {
            target.set_tracer(t.clone());
        }
        target
    }

    /// The backend kind the next extraction will meter against.
    pub fn backend_kind(&self) -> BackendKind {
        match (&self.replay, &self.recorder) {
            (Some(_), _) => BackendKind::Replay,
            (None, Some(_)) => BackendKind::Record,
            (None, None) => BackendKind::Sim,
        }
    }

    /// The workload config the attached image (or capture) was built
    /// from.
    pub fn workload_cfg(&self) -> &WorkloadConfig {
        &self.workload_cfg
    }

    /// The corpus scenario this session was built from (name, spec
    /// fingerprint) — stamped by [`SessionBuilder::scenario`] on live
    /// sessions, inherited from the capture header on replay.
    pub fn scenario(&self) -> Option<(&str, u64)> {
        self.scenario.as_ref().map(|(n, fp)| (n.as_str(), *fp))
    }

    /// The replay cursor, when this session serves a capture.
    pub fn replay_state(&self) -> Option<&ReplayState> {
        self.replay.as_ref()
    }

    /// Snapshot the wire tape of a recording session into a [`Capture`]
    /// (`None` when the session is not recording). The capture embeds
    /// the workload config so [`Session::replay`] can rebuild the debug
    /// info; the tape keeps recording — a later snapshot is longer.
    pub fn capture(&self) -> Option<Capture> {
        let tape = self.recorder.as_ref()?;
        let cache = self.cache.as_ref().map(|c| c.config());
        let mut meta = workload_cfg_to_meta(&self.workload_cfg);
        if let serde_json::Value::Object(m) = &mut meta {
            // The wire sequence depends on the execution mode; replay
            // defaults to the recorded mode and names any mismatch.
            m.insert(
                "exec_mode".into(),
                serde_json::Value::String(self.exec_mode.as_str().into()),
            );
            // An incremental session tapes dirty events; replay must
            // follow the same refresh decisions to stay in step.
            if self.incremental {
                m.insert("incremental".into(), serde_json::Value::Bool(true));
            }
            // A capture recorded from a corpus scenario names its spec,
            // content-addressed, so CI can refuse a stale fixture.
            if let Some((name, fp)) = &self.scenario {
                m.insert("scenario".into(), serde_json::Value::String(name.clone()));
                m.insert(
                    "scenario_fingerprint".into(),
                    serde_json::Value::Number(serde_json::Number::from_u64(*fp)),
                );
            }
        }
        Some(tape.capture(BackendKind::Sim, self.profile, cache, meta))
    }

    /// Write the recording to the `.vrec` path given to
    /// [`SessionBuilder::record`]; returns that path.
    pub fn save_recording(&self) -> Result<PathBuf> {
        let path = self.record_path.clone().ok_or_else(|| {
            SessionError::Capture("session is not recording (builder lacked .record(path))".into())
        })?;
        let capture = self
            .capture()
            .expect("record_path implies an active recorder");
        capture
            .save(&path)
            .map_err(|e| SessionError::Capture(format!("cannot write {}: {e}", path.display())))?;
        Ok(path)
    }

    /// Evaluate a ViewCL program against the stopped kernel, producing a
    /// graph, without creating a pane. Returns the graph and its stats.
    pub fn extract(&self, viewcl_src: &str) -> Result<(Graph, PlotStats)> {
        self.extract_labeled(viewcl_src, "extract")
    }

    /// [`Session::extract`] with a span label (the figure id for library
    /// plots). The root `extract` span covers the whole pipeline; parse
    /// and interp get child spans, distillers nest inside interp.
    fn extract_labeled(&self, viewcl_src: &str, label: &str) -> Result<(Graph, PlotStats)> {
        let tracer = self.tracer.as_ref();
        let _root = vtrace::span(tracer, SpanKind::Extract, label);
        let program = {
            let _s = vtrace::span(tracer, SpanKind::Parse, "viewcl::parse");
            viewcl::parse_program(viewcl_src)?
        };
        let target = self.target();
        // vincr: if a retained graph exists and the dirty set since its
        // extraction provably misses every span it read, serve it as-is
        // — zero wire traffic, byte-identical by the splice invariant.
        let mut prior: Option<(Graph, usize)> = None;
        if self.incremental {
            prior = self.retained.borrow().get(viewcl_src).cloned();
            if let Some((retained, epoch)) = &prior {
                let _s = vtrace::span(tracer, SpanKind::Incr, format!("incr::decide {label}"));
                let dirty = self.dirty_since(*epoch);
                let bytes = dirty.known().map_or(0, |s| s.total_bytes());
                let decision = vincr::decide(self.touched.borrow().get(viewcl_src), &dirty);
                if decision.is_keep() {
                    target.note_incr(1, 0, bytes);
                    let stats = PlotStats {
                        graph: GraphStats::of(retained),
                        target: target.stats(),
                    };
                    return Ok((retained.clone(), stats));
                }
                target.note_incr(0, 1, bytes);
            }
            target.set_touched_tracking(true);
        }
        if self.exec_mode == ExecMode::Plan {
            // Plan mode: compile the pane into a walk plan and warm the
            // cache with scheduled spans. The interpreter below then
            // runs unchanged over the warm cache, so the graph is
            // byte-identical to interp mode by construction.
            let _s = vtrace::span(tracer, SpanKind::Plan, "plan::run");
            let plan = viewcl::plan::compile(&program);
            viewcl::plan::execute(&plan, &target, &self.helpers);
        }
        let fresh = {
            let _s = vtrace::span(tracer, SpanKind::Interp, "interp::run");
            let mut interp = viewcl::Interp::new(&target, &self.helpers);
            interp.run(&program)?;
            interp.into_graph()
        };
        let graph = if self.incremental {
            // Remember what this walk read, then fold the fresh result
            // into the retained predecessor (when there is one) — the
            // splice reconstructs the fresh graph exactly, and its
            // delta is the same wire object vserve ships.
            self.touched
                .borrow_mut()
                .record(viewcl_src, target.take_touched());
            let graph = match &prior {
                Some((retained, _)) => {
                    let _s = vtrace::span(tracer, SpanKind::Incr, format!("incr::splice {label}"));
                    vincr::splice(retained, &fresh).graph
                }
                None => fresh,
            };
            self.retained.borrow_mut().insert(
                viewcl_src.to_string(),
                (graph.clone(), self.dirty_log.len()),
            );
            graph
        } else {
            fresh
        };
        let stats = PlotStats {
            graph: GraphStats::of(&graph),
            target: target.stats(),
        };
        // The distillers tolerate per-object memory faults (corrupt
        // pointers render as diagnostics), but a capture-level failure
        // means the replay itself is broken: surface it loudly instead
        // of returning a graph riddled with wire errors.
        if let Some(msg) = self.replay.as_ref().and_then(|s| s.poisoned()) {
            return Err(SessionError::Capture(msg));
        }
        Ok((graph, stats))
    }

    /// Fold a finished top-level span into the pane's trace record,
    /// creating the synthetic per-pane root on first use.
    fn absorb_into_pane(&self, pane: PaneId, span: TraceSpan) {
        let mut traces = self.traces.borrow_mut();
        match traces.get_mut(&pane) {
            Some(root) => root.absorb(span),
            None => {
                let mut root =
                    TraceSpan::synthetic(SpanKind::Pane, format!("pane-{}", pane.0), span.start_ns);
                root.absorb(span);
                traces.insert(pane, root);
            }
        }
    }

    /// Move the tracer's most recent finished span onto `pane`.
    fn record_trace(&self, pane: PaneId) {
        if let Some(span) = self.take_last_trace() {
            self.absorb_into_pane(pane, span);
        }
    }

    /// *vplot*: extract an object graph per `spec` and display it on a
    /// new primary pane (the first plot creates the pane tree; later
    /// plots split). The single entry point behind the historical
    /// `vplot` / `vplot_figure` / `vplot_auto` trio.
    pub fn plot(&mut self, spec: PlotSpec<'_>) -> Result<PaneId> {
        match spec {
            PlotSpec::Source(src) => self.plot_labeled(src, "extract"),
            PlotSpec::Figure(id) => {
                let fig = crate::figures::by_id(id)
                    .ok_or_else(|| SessionError::NotFound(format!("figure `{id}`")))?;
                self.plot_labeled(fig.viewcl, &format!("extract {id}"))
            }
            PlotSpec::Auto { ctype, root } => {
                let src = self.synthesize_viewcl(ctype, root)?;
                self.plot_labeled(&src, "extract")
            }
        }
    }

    fn plot_labeled(&mut self, viewcl_src: &str, label: &str) -> Result<PaneId> {
        let (graph, stats) = self.extract_labeled(viewcl_src, label)?;
        let pane = self.adopt_graph(graph, Some(stats))?;
        self.record_trace(pane);
        Ok(pane)
    }

    /// Generate the naive ViewCL program used by [`PlotSpec::Auto`]
    /// (public so callers can inspect or edit it first).
    pub fn synthesize_viewcl(&self, ctype: &str, root_expr: &str) -> Result<String> {
        let ty = self
            .img
            .types
            .find(ctype)
            .ok_or_else(|| SessionError::NotFound(format!("type `{ctype}`")))?;
        let def = self
            .img
            .types
            .struct_def(ty)
            .ok_or_else(|| SessionError::NotFound(format!("struct `{ctype}`")))?;
        let mut items = String::new();
        for f in &def.fields {
            use ktypes::TypeKind;
            match &self.img.types.get(f.ty).kind {
                TypeKind::Prim(p) if p.size() > 0 => {
                    items.push_str(&format!(
                        "    Text {}
",
                        f.name
                    ));
                }
                TypeKind::Enum(_) => {
                    items.push_str(&format!(
                        "    Text {}
",
                        f.name
                    ));
                }
                TypeKind::Pointer(_) => {
                    items.push_str(&format!(
                        "    Text<raw_ptr> {}
",
                        f.name
                    ));
                }
                TypeKind::Array { elem, .. }
                    if matches!(
                        self.img.types.get(*elem).kind,
                        TypeKind::Prim(ktypes::Prim::Char)
                    ) =>
                {
                    items.push_str(&format!(
                        "    Text<string> {}
",
                        f.name
                    ));
                }
                _ => {} // nested aggregates are beyond a naive plot
            }
        }
        Ok(format!(
            "define Auto as Box<{ctype}> [
{items}]
root = Auto(${{{root_expr}}})
plot @root
"
        ))
    }

    /// *vctrl*: pick boxes from a pane into a new secondary pane.
    pub fn vctrl_select(
        &mut self,
        origin: PaneId,
        dir: SplitDir,
        picks: Vec<vgraph::BoxId>,
    ) -> Result<PaneId> {
        Ok(self.panes_mut()?.select(origin, dir, picks)?)
    }

    /// Display an already-extracted graph on a new primary pane (the
    /// receive path of the wire protocol: the GDB side extracted and
    /// shipped the graph; re-extracting would double the metered cost).
    pub fn adopt_graph(&mut self, graph: Graph, stats: Option<PlotStats>) -> Result<PaneId> {
        let pane = match &mut self.panes {
            None => {
                self.panes = Some(vpanels::Session::new(graph));
                PaneId(0)
            }
            Some(session) => {
                let last = *session.layout.leaves().last().expect("non-empty layout");
                session.split(last, SplitDir::Horizontal, graph)?
            }
        };
        if let Some(s) = stats {
            self.stats.insert(pane, s);
        }
        Ok(pane)
    }

    /// *vctrl*: apply a ViewQL program to a pane.
    pub fn vctrl_refine(&mut self, pane: PaneId, viewql: &str) -> Result<()> {
        match self.tracer.clone() {
            None => self.panes_mut()?.refine(pane, viewql)?,
            Some(t) => {
                // One Query span per program; the engine adds one Clause
                // span per statement inside it.
                let mut engine = vql::Engine::new();
                engine.set_tracer(t.clone());
                let res = {
                    let _s =
                        vtrace::span(Some(&t), SpanKind::Query, format!("viewql pane-{}", pane.0));
                    self.panes_mut()
                        .and_then(|p| Ok(p.refine_with(pane, viewql, &mut engine)?))
                };
                self.record_trace(pane);
                res?;
            }
        }
        Ok(())
    }

    /// *vctrl*: split a pane with a fresh plot.
    pub fn vctrl_split(&mut self, pane: PaneId, dir: SplitDir, viewcl_src: &str) -> Result<PaneId> {
        let (graph, stats) = self.extract(viewcl_src)?;
        let new = self.panes_mut()?.split(pane, dir, graph)?;
        self.stats.insert(new, stats);
        self.record_trace(new);
        Ok(new)
    }

    /// *vctrl*: the focus operation — search an address in all panes.
    pub fn focus(&self, addr: u64) -> Vec<FocusHit> {
        match &self.panes {
            Some(s) => s.focus(addr),
            None => Vec::new(),
        }
    }

    /// *vchat*: synthesize ViewQL from natural language against the
    /// pane's plot schema and (optionally) apply it.
    pub fn vchat(&mut self, pane: PaneId, message: &str, apply: bool) -> Result<VChatOutcome> {
        let graph = self
            .panes
            .as_ref()
            .and_then(|s| s.graph_of(pane))
            .ok_or_else(|| SessionError::NotFound(format!("pane {pane:?}")))?;
        let schema = vchat::Schema::of(graph);
        let synth = vchat::Synthesizer::new(schema);
        let viewql = synth.synthesize(message)?;
        if apply {
            self.vctrl_refine(pane, &viewql)?;
        }
        Ok(VChatOutcome {
            viewql,
            applied: apply,
        })
    }

    /// The single checker entry point behind [`Session::vcheck`] and
    /// [`Session::vcheck_scoped`]: build one target over the session's
    /// backend stack and run the invariant checkers at the requested
    /// scope. Returns the report plus, for the scoped flavor, the boxes
    /// that produced fresh violations (id, count, first diagnostic).
    fn run_checkers(&self, scope: CheckScope<'_>) -> (kcheck::Report, Vec<Flagged>) {
        let target = self.target();
        match scope {
            CheckScope::Image => {
                let _s = vtrace::span(self.tracer.as_ref(), SpanKind::Check, "vcheck sweep");
                (kcheck::sweep(&target), Vec::new())
            }
            CheckScope::Boxes(objs) => {
                let checker = kcheck::Checker::new(&target);
                let mut report = kcheck::Report::default();
                let mut flagged: Vec<Flagged> = Vec::new();
                for (id, addr, ctype) in objs {
                    let before = report.violations.len();
                    let path = format!("{ctype}@{addr:#x}");
                    checker.check_object(*addr, ctype, &path, &mut report);
                    let fresh = report.violations.len() - before;
                    if fresh > 0 {
                        flagged.push((*id, fresh, report.violations[before].detail.clone()));
                    }
                }
                (report, flagged)
            }
        }
    }

    /// *vcheck*: run the kernel data-structure invariant checkers over
    /// the whole image — a full sweep from the well-known root symbols
    /// (`init_task`, `runqueues`, `super_blocks`, `slab_caches`).
    pub fn vcheck(&self) -> kcheck::Report {
        self.run_checkers(CheckScope::Image).0
    }

    /// *vcheck* scoped by a ViewQL query: execute `viewql` against the
    /// pane's plot, run the invariant checkers only on the objects the
    /// last `SELECT` binds (so `REACHABLE(...)` scopes a whole subplot),
    /// and annotate each violating box on the pane with a `violations`
    /// attribute carrying the count and first diagnostic.
    pub fn vcheck_scoped(&mut self, pane: PaneId, viewql: &str) -> Result<kcheck::Report> {
        let stmts = vql::parse(viewql)?;
        let var = stmts
            .iter()
            .rev()
            .find_map(|s| match s {
                vql::Stmt::Select { var, .. } => Some(var.clone()),
                _ => None,
            })
            .ok_or_else(|| SessionError::NotFound("vcheck: no SELECT in query".into()))?;
        // Run the query on a scratch copy: UPDATE statements inside a
        // vcheck query must not restyle the displayed plot.
        let mut scratch = self.graph(pane)?.clone();
        let mut engine = vql::Engine::new();
        engine.run(&mut scratch, viewql)?;
        let sel = engine
            .var(&var)
            .ok_or_else(|| SessionError::NotFound(format!("vcheck: selection `{var}`")))?;

        let objs: Vec<(vgraph::BoxId, u64, String)> = sel
            .boxes()
            .into_iter()
            .map(|id| {
                let b = scratch.get(id);
                (id, b.addr, b.ctype.clone())
            })
            .filter(|(_, addr, ctype)| *addr != 0 && !ctype.is_empty())
            .collect();
        let (report, flagged) = self.run_checkers(CheckScope::Boxes(&objs));
        if !flagged.is_empty() {
            if let Some(g) = self.panes.as_mut().and_then(|s| s.graph_of_mut(pane)) {
                for (id, count, detail) in flagged {
                    let attrs = &mut g.get_mut(id).attrs;
                    attrs.set("violations", serde_json::json!(count));
                    attrs.set("vcheck", serde_json::json!(detail));
                }
            }
        }
        Ok(report)
    }

    /// The graph displayed on a pane.
    pub fn graph(&self, pane: PaneId) -> Result<&Graph> {
        self.panes
            .as_ref()
            .and_then(|s| s.graph_of(pane))
            .ok_or_else(|| SessionError::NotFound(format!("pane {pane:?}")))
    }

    /// Extraction stats of a plotted pane.
    pub fn plot_stats(&self, pane: PaneId) -> Option<PlotStats> {
        self.stats.get(&pane).copied()
    }

    /// Render a pane, recording a `render` span on the pane's trace.
    /// Renders read no target memory, so the span is zero-cost in wire
    /// terms — it exists to complete the pipeline attribution.
    fn render_traced<R>(&self, pane: PaneId, name: &str, f: impl FnOnce(&Graph) -> R) -> Result<R> {
        let graph = self.graph(pane)?;
        match &self.tracer {
            None => Ok(f(graph)),
            Some(t) => {
                let t = t.clone();
                let out = {
                    let _s = vtrace::span(Some(&t), SpanKind::Render, name);
                    f(graph)
                };
                // Only a top-level render lands back on the pane; nested
                // spans (inside an open extract) stay with their parent.
                if let Some(span) = t.take_last_finished() {
                    self.absorb_into_pane(pane, span);
                }
                Ok(out)
            }
        }
    }

    /// Render a pane as text.
    pub fn render_text(&self, pane: PaneId) -> Result<String> {
        self.render_traced(pane, "render::text", vrender::to_text)
    }

    /// Render a pane as Graphviz DOT.
    pub fn render_dot(&self, pane: PaneId) -> Result<String> {
        self.render_traced(pane, "render::dot", vrender::to_dot)
    }

    /// Render a pane as SVG.
    pub fn render_svg(&self, pane: PaneId) -> Result<String> {
        self.render_traced(pane, "render::svg", vrender::to_svg)
    }

    /// Persist the pane tree.
    pub fn save_panes(&self) -> Option<String> {
        self.panes.as_ref().map(|s| s.save())
    }

    fn panes_mut(&mut self) -> Result<&mut vpanels::Session> {
        self.panes
            .as_mut()
            .ok_or_else(|| SessionError::NotFound("no panes (plot something first)".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::workload::{build, WorkloadConfig};

    fn session() -> Session {
        Session::builder(build(&WorkloadConfig::default()))
            .attach()
            .expect("live attach")
    }

    #[test]
    fn vplot_figure_and_render() {
        let mut s = session();
        let pane = s.plot(PlotSpec::Figure("fig7-1")).unwrap();
        let text = s.render_text(pane).unwrap();
        assert!(text.contains("RQ"));
        assert!(text.contains("worker-0"));
        let stats = s.plot_stats(pane).unwrap();
        assert!(stats.graph.objects > 3);
    }

    #[test]
    fn vctrl_refine_applies_viewql() {
        let mut s = session();
        let pane = s.plot(PlotSpec::Figure("fig3-4")).unwrap();
        s.vctrl_refine(
            pane,
            "a = SELECT task_struct FROM * WHERE mm == NULL\nUPDATE a WITH collapsed: true",
        )
        .unwrap();
        let g = s.graph(pane).unwrap();
        let collapsed = g.boxes().iter().filter(|b| b.attrs.collapsed).count();
        assert!(collapsed >= 6, "kthreads collapsed, got {collapsed}");
    }

    #[test]
    fn vchat_round_trip() {
        let mut s = session();
        let pane = s.plot(PlotSpec::Figure("fig3-4")).unwrap();
        let out = s
            .vchat(pane, "shrink tasks that have no address space", true)
            .unwrap();
        assert!(out.viewql.contains("mm == NULL"), "{}", out.viewql);
        let g = s.graph(pane).unwrap();
        assert!(g.boxes().iter().any(|b| b.attrs.collapsed));
    }

    #[test]
    fn multiple_plots_split_panes_and_focus_finds_shared_objects() {
        let mut s = session();
        let p1 = s.plot(PlotSpec::Figure("fig3-4")).unwrap();
        let p2 = s.plot(PlotSpec::Figure("fig7-1")).unwrap();
        assert_ne!(p1, p2);
        // A runnable leader appears in both the parent tree and the
        // scheduler tree (paper Figure 2).
        let leader = s.roots.leaders[0];
        let hits = s.focus(leader);
        let panes: std::collections::HashSet<_> = hits.iter().map(|h| h.pane).collect();
        assert!(panes.len() >= 2, "expected hits in both panes: {hits:?}");
    }

    #[test]
    fn vplot_auto_synthesizes_naive_viewcl() {
        let mut s = session();
        let src = s
            .synthesize_viewcl("vm_area_struct", "find_vma(current_task->mm, 0x400000)")
            .unwrap();
        assert!(src.contains("Text vm_start"), "{src}");
        assert!(src.contains("Text<raw_ptr> vm_file"), "{src}");
        let pane = s
            .plot(PlotSpec::Auto {
                ctype: "vm_area_struct",
                root: "find_vma(current_task->mm, 0x400000)",
            })
            .unwrap();
        let g = s.graph(pane).unwrap();
        assert_eq!(g.get(g.roots[0]).ctype, "vm_area_struct");
        // The naive plot shows the real field values.
        assert_eq!(g.get(g.roots[0]).member_raw("vm_start", g), Some(0x400000));
        assert!(matches!(
            s.plot(PlotSpec::Auto {
                ctype: "no_such_type",
                root: "0"
            }),
            Err(SessionError::NotFound(_))
        ));
    }

    #[test]
    fn vctrl_select_creates_secondary_pane() {
        let mut s = session();
        let pane = s.plot(PlotSpec::Figure("fig7-1")).unwrap();
        let first = s.graph(pane).unwrap().roots[0];
        let sec = s
            .vctrl_select(pane, SplitDir::Vertical, vec![first])
            .unwrap();
        assert_ne!(sec, pane);
        // The secondary pane resolves its origin's graph.
        assert!(s.graph(sec).is_ok());
    }

    #[test]
    fn lock_state_in_one_line_of_viewcl() {
        // §5.1: "we can visualize the lock state within a single line of
        // ViewCL" — the EMOJI decorator over a spinlock word.
        let mut s = session();
        let pane = s
            .plot(PlotSpec::Source(
                r#"
define MMLock as Box<mm_struct> [
    Text<emoji:lock> page_table_lock: page_table_lock.locked
]
m = MMLock(${current_task->mm})
plot @m
"#,
            ))
            .unwrap();
        let g = s.graph(pane).unwrap();
        match g.get(g.roots[0]).item("page_table_lock").unwrap() {
            vgraph::Item::Text { value, .. } => assert_eq!(value, "🔓"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cached_session_plots_identically_and_cheaper() {
        let fig = crate::figures::by_id("fig3-4").unwrap();
        let uncached = Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::kgdb_rpi400())
            .attach()
            .unwrap();
        let mut cached = Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::kgdb_rpi400())
            .cache(vbridge::CacheConfig::default())
            .attach()
            .unwrap();
        assert!(cached.cache_enabled() && !uncached.cache_enabled());
        let (g_plain, s_plain) = uncached.extract(fig.viewcl).unwrap();
        let (g_cold, s_cold) = cached.extract(fig.viewcl).unwrap();
        assert_eq!(g_plain.to_json(), g_cold.to_json());
        assert!(s_cold.target.virtual_ns < s_plain.target.virtual_ns);
        // Warm re-extraction: the snapshot has not changed, so nearly
        // everything comes from cache.
        let (g_warm, s_warm) = cached.extract(fig.viewcl).unwrap();
        assert_eq!(g_plain.to_json(), g_warm.to_json());
        assert!(s_warm.target.reads < s_cold.target.reads);
        assert!(s_warm.target.cache_hits > 0);
        // Resuming the kernel drops every cached block.
        cached.resume();
        assert!(cached.cache().unwrap().is_empty());
        let (_, s_cold2) = cached.extract(fig.viewcl).unwrap();
        assert!(s_cold2.target.cache_misses > 0);
    }

    #[test]
    fn vcheck_clean_image_reports_nothing() {
        let s = session();
        let report = s.vcheck();
        assert!(report.is_clean(), "{}", report.summary());
        assert!(report.checkers_run > 10);
    }

    #[test]
    fn vcheck_scoped_flags_and_annotates_corrupted_selection() {
        let mut w = build(&WorkloadConfig::default());
        ksim::faults::inject(&mut w, ksim::faults::FaultKind::MaplePivotCorrupt, 1);
        let mut s = Session::builder(w).attach().unwrap();
        let pane = s.plot(PlotSpec::Figure("fig3-4")).unwrap();
        let report = s
            .vcheck_scoped(pane, "v = SELECT mm_struct FROM *")
            .unwrap();
        assert!(report.count_of("maple") >= 1, "{}", report.summary());
        let g = s.graph(pane).unwrap();
        let annotated = g
            .boxes()
            .iter()
            .filter(|b| b.attrs.extra.contains_key("violations"))
            .count();
        assert!(annotated >= 1, "the violating mm box is annotated");
        // A clean selection of the same plot stays unannotated.
        let clean = s
            .vcheck_scoped(pane, "t = SELECT task_struct FROM * WHERE mm == NULL")
            .unwrap();
        assert!(clean.is_clean(), "{}", clean.summary());
    }

    #[test]
    fn unknown_figure_errors() {
        let mut s = session();
        assert!(matches!(
            s.plot(PlotSpec::Figure("fig0-0")),
            Err(SessionError::NotFound(_))
        ));
    }

    #[test]
    fn plot_stats_rates_are_zero_not_nan_on_empty_plots() {
        // A plot with no kernel objects and no wire traffic must report
        // 0 ms/object and 0 ms/KB, not NaN/inf from a zero denominator.
        let empty = PlotStats {
            graph: GraphStats::default(),
            target: TargetStats::default(),
        };
        assert_eq!(empty.total_ms(), 0.0);
        assert_eq!(empty.ms_per_object(), 0.0);
        assert_eq!(empty.ms_per_kb(), 0.0);
        // Nonzero time over zero objects (e.g. every chase faulted away)
        // still may not divide by zero.
        let timed = PlotStats {
            graph: GraphStats::default(),
            target: TargetStats {
                virtual_ns: 1_000_000,
                ..TargetStats::default()
            },
        };
        assert!(timed.ms_per_object().is_finite());
        assert!(timed.ms_per_kb().is_finite());
        assert_eq!(timed.ms_per_object(), 0.0);
        assert_eq!(timed.ms_per_kb(), 0.0);
    }

    #[test]
    fn vtrace_reconciles_with_target_stats() {
        let mut s = Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::kgdb_rpi400())
            .attach()
            .unwrap();
        assert!(!s.tracing_enabled());
        assert!(s.vtrace(PaneId(0)).is_none());
        s.enable_tracing();
        assert!(s.tracing_enabled());

        let pane = s.plot(PlotSpec::Figure("fig3-4")).unwrap();
        let _ = s.render_text(pane).unwrap();
        s.vctrl_refine(
            pane,
            "a = SELECT task_struct FROM * WHERE mm == NULL\nUPDATE a WITH collapsed: true",
        )
        .unwrap();

        let trace = s.vtrace(pane).expect("pane trace recorded");
        trace.check_well_formed().unwrap();

        // The trace includes the extraction plus the (wire-silent) render
        // and refine; its counters must reconcile with TargetStats
        // exactly — same clock, mirrored increments, telescoping sums.
        let target = s.plot_stats(pane).unwrap().target;
        let tot = trace.totals();
        assert_eq!(tot.packets, target.reads);
        assert_eq!(tot.bytes, target.bytes);
        assert_eq!(tot.virtual_ns, target.virtual_ns);
        assert_eq!(tot.cache_hits, target.cache_hits);
        assert_eq!(tot.faults, target.faults);
        assert_eq!(trace.leaf_totals(), tot);

        // The span tree shows the whole pipeline: extract with parse +
        // interp children, distiller spans inside interp, plus the render
        // and refine recorded afterwards.
        let kinds: Vec<SpanKind> = trace.flatten().iter().map(|sp| sp.kind).collect();
        for want in [
            SpanKind::Extract,
            SpanKind::Parse,
            SpanKind::Interp,
            SpanKind::Distill,
            SpanKind::Render,
            SpanKind::Query,
        ] {
            assert!(kinds.contains(&want), "missing {want:?} in {kinds:?}");
        }

        // Chrome export is valid JSON with one event per span.
        let chrome = s.export_chrome_trace();
        let v: serde_json::Value = serde_json::from_str(&chrome).unwrap();
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert_eq!(events.len(), trace.flatten().len());
    }

    #[test]
    fn record_replay_round_trip_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("vrec-session-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.vrec");
        let mut rec = Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::kgdb_rpi400())
            .cache(vbridge::CacheConfig::default())
            .record(&path)
            .attach()
            .unwrap();
        assert_eq!(rec.backend_kind(), BackendKind::Record);
        let fig = crate::figures::by_id("fig3-4").unwrap();
        let (g_live, s_live) = rec.extract(fig.viewcl).unwrap();
        rec.resume();
        let (_, s_live2) = rec.extract(fig.viewcl).unwrap();
        let saved = rec.save_recording().unwrap();
        assert_eq!(saved, path);

        let cap = Capture::load(&path).unwrap();
        let mut rep = Session::replay(cap).attach().unwrap();
        assert_eq!(rep.backend_kind(), BackendKind::Replay);
        // The replay rebuilt profile, cache and workload config from the
        // capture header — and attached to zero bytes of target memory.
        assert_eq!(rep.profile(), LatencyProfile::kgdb_rpi400());
        assert!(rep.cache_enabled());
        assert_eq!(rep.workload_cfg(), &WorkloadConfig::default());
        assert_eq!(rep.image().mem.mapped_pages(), 0);

        let (g_rep, s_rep) = rep.extract(fig.viewcl).unwrap();
        rep.resume();
        let (_, s_rep2) = rep.extract(fig.viewcl).unwrap();
        assert_eq!(g_live.to_json(), g_rep.to_json());
        // Counters are byte-identical; only the backend identity moves
        // from Record to Replay.
        assert_eq!(
            s_rep.target,
            TargetStats {
                backend: BackendKind::Replay,
                ..s_live.target
            }
        );
        assert_eq!(
            s_rep2.target,
            TargetStats {
                backend: BackendKind::Replay,
                ..s_live2.target
            }
        );
        assert_eq!(rep.replay_state().unwrap().remaining(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_rejects_bad_captures_loudly() {
        // Recording a replay is a contradiction.
        let cap = Capture {
            version: vbridge::VREC_VERSION,
            origin: BackendKind::Sim,
            profile: LatencyProfile::free(),
            cache: None,
            meta: workload_cfg_to_meta(&WorkloadConfig::default()),
            events: Vec::new(),
        };
        let err = match Session::replay(cap.clone()).record("nowhere.vrec").attach() {
            Err(e) => e,
            Ok(_) => panic!("recording a replay must fail"),
        };
        assert!(matches!(err, SessionError::Capture(_)), "{err}");

        // A capture without an embedded workload config cannot rebuild
        // the debug info.
        let mut no_meta = cap.clone();
        no_meta.meta = serde_json::Value::Null;
        let err = match Session::replay(no_meta).attach() {
            Err(e) => e,
            Ok(_) => panic!("meta-less capture must fail"),
        };
        assert!(err.to_string().contains("workload config"), "{err}");

        // Reading past the capture (here: an empty one) errors loudly
        // with a diagnostic instead of touching the (empty) image.
        let rep = Session::replay(cap).attach().unwrap();
        let fig = crate::figures::by_id("fig3-4").unwrap();
        let err = rep.extract(fig.viewcl).unwrap_err();
        assert!(err.to_string().contains("capture exhausted"), "{err}");
    }

    #[test]
    fn save_recording_requires_a_recording_session() {
        let s = session();
        assert_eq!(s.backend_kind(), BackendKind::Sim);
        assert!(s.capture().is_none());
        let err = s.save_recording().unwrap_err();
        assert!(matches!(err, SessionError::Capture(_)), "{err}");
    }

    #[test]
    fn workload_cfg_meta_round_trips() {
        let cfg = WorkloadConfig {
            processes: 7,
            seed: u64::MAX,
            ..WorkloadConfig::default()
        };
        let meta = workload_cfg_to_meta(&cfg);
        assert_eq!(workload_cfg_from_meta(&meta), Some(cfg));
        assert_eq!(workload_cfg_from_meta(&serde_json::Value::Null), None);
    }
}
