//! The interactive debugging session and its v-commands (§4).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ksim::workload::{AllTypes, Workload, WorkloadRoots};
use ksim::KernelImage;
use vbridge::{BlockCache, CacheConfig, HelperRegistry, LatencyProfile, Target, TargetStats};
use vgraph::{Graph, GraphStats};
use vpanels::{FocusHit, PaneId, SplitDir};
use vtrace::{SpanKind, TraceSpan, Tracer};

/// Errors surfaced by session operations.
#[derive(Debug)]
pub enum SessionError {
    /// ViewCL parse/evaluation failure.
    ViewCl(viewcl::VclError),
    /// ViewQL failure.
    ViewQl(vql::VqlError),
    /// Pane operation failure.
    Panel(vpanels::PanelError),
    /// vchat synthesis failure.
    Chat(vchat::VchatError),
    /// No such figure / pane.
    NotFound(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::ViewCl(e) => write!(f, "{e}"),
            SessionError::ViewQl(e) => write!(f, "{e}"),
            SessionError::Panel(e) => write!(f, "{e}"),
            SessionError::Chat(e) => write!(f, "{e}"),
            SessionError::NotFound(what) => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<viewcl::VclError> for SessionError {
    fn from(e: viewcl::VclError) -> Self {
        SessionError::ViewCl(e)
    }
}
impl From<vql::VqlError> for SessionError {
    fn from(e: vql::VqlError) -> Self {
        SessionError::ViewQl(e)
    }
}
impl From<vpanels::PanelError> for SessionError {
    fn from(e: vpanels::PanelError) -> Self {
        SessionError::Panel(e)
    }
}
impl From<vchat::VchatError> for SessionError {
    fn from(e: vchat::VchatError) -> Self {
        SessionError::Chat(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, SessionError>;

/// Cost and size of one `vplot` extraction (the measurements of Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlotStats {
    /// Graph composition.
    pub graph: GraphStats,
    /// Target access totals during extraction.
    pub target: TargetStats,
}

impl PlotStats {
    /// Total virtual extraction time in milliseconds (Table 4 column 1).
    pub fn total_ms(&self) -> f64 {
        self.target.virtual_ns as f64 / 1e6
    }

    /// Cost per plotted kernel object in milliseconds (column 2).
    pub fn ms_per_object(&self) -> f64 {
        if self.graph.kernel_objects == 0 {
            return 0.0;
        }
        self.total_ms() / self.graph.kernel_objects as f64
    }

    /// Cost per KiB of data structure (column 3). "Data structure" here
    /// is the bytes the debugger actually transferred — the quantity the
    /// per-read packet cost is paid against, which is how the paper's
    /// per-KB column scales relative to its per-object column.
    pub fn ms_per_kb(&self) -> f64 {
        if self.target.bytes == 0 {
            return 0.0;
        }
        self.total_ms() / (self.target.bytes as f64 / 1024.0)
    }
}

/// What `vchat` did with a message.
#[derive(Debug, Clone, PartialEq)]
pub struct VChatOutcome {
    /// The synthesized ViewQL program.
    pub viewql: String,
    /// Whether it was applied to the pane.
    pub applied: bool,
}

/// An attached Visualinux debugging session: one kernel image, a helper
/// registry, and a pane tree. Implements the three v-commands.
pub struct Session {
    img: KernelImage,
    /// Registered subsystem type handles.
    pub types: AllTypes,
    /// Interesting root addresses of the attached image.
    pub roots: WorkloadRoots,
    helpers: HelperRegistry,
    profile: LatencyProfile,
    cache: Option<BlockCache>,
    panes: Option<vpanels::Session>,
    stats: HashMap<PaneId, PlotStats>,
    tracer: Option<Rc<Tracer>>,
    /// Per-pane span trees (extraction + later refinements/renders).
    /// Interior-mutable so `&self` render paths can record their spans.
    traces: RefCell<HashMap<PaneId, TraceSpan>>,
}

impl Session {
    /// Attach to a built workload using the given latency profile.
    ///
    /// The bridge cache is off by default so plots reproduce the paper's
    /// uncached Table-4 cost model; see [`Session::attach_with_cache`].
    pub fn attach(workload: Workload, profile: LatencyProfile) -> Session {
        let (img, types, roots) = workload.finish();
        Session {
            img,
            types,
            roots,
            helpers: crate::helpers::registry(),
            profile,
            cache: None,
            panes: None,
            stats: HashMap::new(),
            tracer: None,
            traces: RefCell::new(HashMap::new()),
        }
    }

    /// Attach with the snapshot block cache enabled: extractions share a
    /// [`BlockCache`] that persists while the kernel stays stopped and is
    /// invalidated by [`Session::resume`].
    pub fn attach_with_cache(
        workload: Workload,
        profile: LatencyProfile,
        cfg: CacheConfig,
    ) -> Session {
        let mut s = Session::attach(workload, profile);
        s.cache = Some(BlockCache::new(cfg));
        s
    }

    /// Whether the bridge cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The session's bridge cache, if enabled.
    pub fn cache(&self) -> Option<&BlockCache> {
        self.cache.as_ref()
    }

    /// Resume the (simulated) kernel: cached target bytes may now be
    /// stale, so the bridge cache epoch is bumped and all blocks drop.
    /// Plots already on panes are unaffected — they are snapshots.
    pub fn resume(&mut self) {
        if let Some(c) = &self.cache {
            c.bump_epoch();
        }
    }

    /// The attached image (read-only).
    pub fn image(&self) -> &KernelImage {
        &self.img
    }

    /// Simulate the kernel running between two stop events: let `mutate`
    /// rewrite the image, then [`Session::resume`] so the bridge cache
    /// drops its now-stale blocks. The next extraction sees the new
    /// machine state; plots already on panes keep their old snapshots.
    pub fn stop_event(&mut self, mutate: impl FnOnce(&mut KernelImage)) {
        mutate(&mut self.img);
        self.resume();
    }

    /// The active latency profile.
    pub fn profile(&self) -> LatencyProfile {
        self.profile
    }

    /// Switch latency profile (affects subsequent plots).
    pub fn set_profile(&mut self, profile: LatencyProfile) {
        self.profile = profile;
    }

    /// Turn on vtrace span recording for this session. Idempotent;
    /// returns the (shared) tracer so callers can read the wire log or
    /// drain finished spans directly.
    pub fn enable_tracing(&mut self) -> Rc<Tracer> {
        if self.tracer.is_none() {
            self.tracer = Some(Rc::new(Tracer::new()));
        }
        self.tracer.clone().expect("just set")
    }

    /// Whether vtrace recording is on.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// The session tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Rc<Tracer>> {
        self.tracer.as_ref()
    }

    /// *vtrace*: the recorded span tree of a pane — a synthetic `pane`
    /// root whose children are the extraction and every traced
    /// refinement/render applied since. `None` when tracing was off or
    /// the pane has no plot.
    pub fn vtrace(&self, pane: PaneId) -> Option<TraceSpan> {
        self.traces.borrow().get(&pane).cloned()
    }

    /// Pop the most recent finished top-level span (e.g. the `extract`
    /// span of a bare [`Session::extract`] call, which has no pane to
    /// land on).
    pub fn take_last_trace(&self) -> Option<TraceSpan> {
        self.tracer.as_ref().and_then(|t| t.take_last_finished())
    }

    /// Export every recorded pane trace as Chrome `trace_event` JSON
    /// (load in `chrome://tracing` or Perfetto; one tid per pane).
    pub fn export_chrome_trace(&self) -> String {
        let traces = self.traces.borrow();
        let mut panes: Vec<(&PaneId, &TraceSpan)> = traces.iter().collect();
        panes.sort_by_key(|(p, _)| p.0);
        vtrace::chrome_trace(panes.into_iter().map(|(p, s)| (p.0 as u64, s)))
    }

    /// Build a bridge target over the attached image (cached when the
    /// session has a block cache).
    fn target(&self) -> Target<'_> {
        let mut target = match &self.cache {
            None => Target::new(
                &self.img.mem,
                &self.img.types,
                &self.img.symbols,
                self.profile,
            ),
            Some(cache) => Target::with_cache(
                &self.img.mem,
                &self.img.types,
                &self.img.symbols,
                self.profile,
                cache,
            ),
        };
        if let Some(t) = &self.tracer {
            target.set_tracer(t.clone());
        }
        target
    }

    /// Evaluate a ViewCL program against the stopped kernel, producing a
    /// graph, without creating a pane. Returns the graph and its stats.
    pub fn extract(&self, viewcl_src: &str) -> Result<(Graph, PlotStats)> {
        self.extract_labeled(viewcl_src, "extract")
    }

    /// [`Session::extract`] with a span label (the figure id for library
    /// plots). The root `extract` span covers the whole pipeline; parse
    /// and interp get child spans, distillers nest inside interp.
    fn extract_labeled(&self, viewcl_src: &str, label: &str) -> Result<(Graph, PlotStats)> {
        let tracer = self.tracer.as_ref();
        let _root = vtrace::span(tracer, SpanKind::Extract, label);
        let program = {
            let _s = vtrace::span(tracer, SpanKind::Parse, "viewcl::parse");
            viewcl::parse_program(viewcl_src)?
        };
        let target = self.target();
        let graph = {
            let _s = vtrace::span(tracer, SpanKind::Interp, "interp::run");
            let mut interp = viewcl::Interp::new(&target, &self.helpers);
            interp.run(&program)?;
            interp.into_graph()
        };
        let stats = PlotStats {
            graph: GraphStats::of(&graph),
            target: target.stats(),
        };
        Ok((graph, stats))
    }

    /// Fold a finished top-level span into the pane's trace record,
    /// creating the synthetic per-pane root on first use.
    fn absorb_into_pane(&self, pane: PaneId, span: TraceSpan) {
        let mut traces = self.traces.borrow_mut();
        match traces.get_mut(&pane) {
            Some(root) => root.absorb(span),
            None => {
                let mut root =
                    TraceSpan::synthetic(SpanKind::Pane, format!("pane-{}", pane.0), span.start_ns);
                root.absorb(span);
                traces.insert(pane, root);
            }
        }
    }

    /// Move the tracer's most recent finished span onto `pane`.
    fn record_trace(&self, pane: PaneId) {
        if let Some(span) = self.take_last_trace() {
            self.absorb_into_pane(pane, span);
        }
    }

    /// *vplot*: extract an object graph and display it on a new primary
    /// pane (the first plot creates the pane tree; later plots split).
    pub fn vplot(&mut self, viewcl_src: &str) -> Result<PaneId> {
        self.plot_labeled(viewcl_src, "extract")
    }

    fn plot_labeled(&mut self, viewcl_src: &str, label: &str) -> Result<PaneId> {
        let (graph, stats) = self.extract_labeled(viewcl_src, label)?;
        let pane = self.adopt_graph(graph, Some(stats))?;
        self.record_trace(pane);
        Ok(pane)
    }

    /// *vplot* with synthesized "naive" ViewCL (§4: *vplot* "can also
    /// synthesize naive ViewCL code for trivial debugging objectives"):
    /// generate a box definition showing every scalar field of `ctype`
    /// and plot the object at `root_expr`.
    pub fn vplot_auto(&mut self, ctype: &str, root_expr: &str) -> Result<PaneId> {
        let src = self.synthesize_viewcl(ctype, root_expr)?;
        self.vplot(&src)
    }

    /// Generate the naive ViewCL program used by [`vplot_auto`]
    /// (public so callers can inspect or edit it first).
    ///
    /// [`vplot_auto`]: Self::vplot_auto
    pub fn synthesize_viewcl(&self, ctype: &str, root_expr: &str) -> Result<String> {
        let ty = self
            .img
            .types
            .find(ctype)
            .ok_or_else(|| SessionError::NotFound(format!("type `{ctype}`")))?;
        let def = self
            .img
            .types
            .struct_def(ty)
            .ok_or_else(|| SessionError::NotFound(format!("struct `{ctype}`")))?;
        let mut items = String::new();
        for f in &def.fields {
            use ktypes::TypeKind;
            match &self.img.types.get(f.ty).kind {
                TypeKind::Prim(p) if p.size() > 0 => {
                    items.push_str(&format!(
                        "    Text {}
",
                        f.name
                    ));
                }
                TypeKind::Enum(_) => {
                    items.push_str(&format!(
                        "    Text {}
",
                        f.name
                    ));
                }
                TypeKind::Pointer(_) => {
                    items.push_str(&format!(
                        "    Text<raw_ptr> {}
",
                        f.name
                    ));
                }
                TypeKind::Array { elem, .. }
                    if matches!(
                        self.img.types.get(*elem).kind,
                        TypeKind::Prim(ktypes::Prim::Char)
                    ) =>
                {
                    items.push_str(&format!(
                        "    Text<string> {}
",
                        f.name
                    ));
                }
                _ => {} // nested aggregates are beyond a naive plot
            }
        }
        Ok(format!(
            "define Auto as Box<{ctype}> [
{items}]
root = Auto(${{{root_expr}}})
plot @root
"
        ))
    }

    /// *vctrl*: pick boxes from a pane into a new secondary pane.
    pub fn vctrl_select(
        &mut self,
        origin: PaneId,
        dir: SplitDir,
        picks: Vec<vgraph::BoxId>,
    ) -> Result<PaneId> {
        Ok(self.panes_mut()?.select(origin, dir, picks)?)
    }

    /// Display an already-extracted graph on a new primary pane (the
    /// receive path of the wire protocol: the GDB side extracted and
    /// shipped the graph; re-extracting would double the metered cost).
    pub fn adopt_graph(&mut self, graph: Graph, stats: Option<PlotStats>) -> Result<PaneId> {
        let pane = match &mut self.panes {
            None => {
                self.panes = Some(vpanels::Session::new(graph));
                PaneId(0)
            }
            Some(session) => {
                let last = *session.layout.leaves().last().expect("non-empty layout");
                session.split(last, SplitDir::Horizontal, graph)?
            }
        };
        if let Some(s) = stats {
            self.stats.insert(pane, s);
        }
        Ok(pane)
    }

    /// *vplot* of a library figure by id (e.g. `"fig7-1"`).
    pub fn vplot_figure(&mut self, id: &str) -> Result<PaneId> {
        let fig = crate::figures::by_id(id)
            .ok_or_else(|| SessionError::NotFound(format!("figure `{id}`")))?;
        self.plot_labeled(fig.viewcl, &format!("extract {id}"))
    }

    /// *vctrl*: apply a ViewQL program to a pane.
    pub fn vctrl_refine(&mut self, pane: PaneId, viewql: &str) -> Result<()> {
        match self.tracer.clone() {
            None => self.panes_mut()?.refine(pane, viewql)?,
            Some(t) => {
                // One Query span per program; the engine adds one Clause
                // span per statement inside it.
                let mut engine = vql::Engine::new();
                engine.set_tracer(t.clone());
                let res = {
                    let _s =
                        vtrace::span(Some(&t), SpanKind::Query, format!("viewql pane-{}", pane.0));
                    self.panes_mut()
                        .and_then(|p| Ok(p.refine_with(pane, viewql, &mut engine)?))
                };
                self.record_trace(pane);
                res?;
            }
        }
        Ok(())
    }

    /// *vctrl*: split a pane with a fresh plot.
    pub fn vctrl_split(&mut self, pane: PaneId, dir: SplitDir, viewcl_src: &str) -> Result<PaneId> {
        let (graph, stats) = self.extract(viewcl_src)?;
        let new = self.panes_mut()?.split(pane, dir, graph)?;
        self.stats.insert(new, stats);
        self.record_trace(new);
        Ok(new)
    }

    /// *vctrl*: the focus operation — search an address in all panes.
    pub fn focus(&self, addr: u64) -> Vec<FocusHit> {
        match &self.panes {
            Some(s) => s.focus(addr),
            None => Vec::new(),
        }
    }

    /// *vchat*: synthesize ViewQL from natural language against the
    /// pane's plot schema and (optionally) apply it.
    pub fn vchat(&mut self, pane: PaneId, message: &str, apply: bool) -> Result<VChatOutcome> {
        let graph = self
            .panes
            .as_ref()
            .and_then(|s| s.graph_of(pane))
            .ok_or_else(|| SessionError::NotFound(format!("pane {pane:?}")))?;
        let schema = vchat::Schema::of(graph);
        let synth = vchat::Synthesizer::new(schema);
        let viewql = synth.synthesize(message)?;
        if apply {
            self.vctrl_refine(pane, &viewql)?;
        }
        Ok(VChatOutcome {
            viewql,
            applied: apply,
        })
    }

    /// *vcheck*: run the kernel data-structure invariant checkers over
    /// the whole image — a full sweep from the well-known root symbols
    /// (`init_task`, `runqueues`, `super_blocks`, `slab_caches`).
    pub fn vcheck(&self) -> kcheck::Report {
        let _s = vtrace::span(self.tracer.as_ref(), SpanKind::Check, "vcheck sweep");
        let target = self.target();
        kcheck::sweep(&target)
    }

    /// *vcheck* scoped by a ViewQL query: execute `viewql` against the
    /// pane's plot, run the invariant checkers only on the objects the
    /// last `SELECT` binds (so `REACHABLE(...)` scopes a whole subplot),
    /// and annotate each violating box on the pane with a `violations`
    /// attribute carrying the count and first diagnostic.
    pub fn vcheck_scoped(&mut self, pane: PaneId, viewql: &str) -> Result<kcheck::Report> {
        let stmts = vql::parse(viewql)?;
        let var = stmts
            .iter()
            .rev()
            .find_map(|s| match s {
                vql::Stmt::Select { var, .. } => Some(var.clone()),
                _ => None,
            })
            .ok_or_else(|| SessionError::NotFound("vcheck: no SELECT in query".into()))?;
        // Run the query on a scratch copy: UPDATE statements inside a
        // vcheck query must not restyle the displayed plot.
        let mut scratch = self.graph(pane)?.clone();
        let mut engine = vql::Engine::new();
        engine.run(&mut scratch, viewql)?;
        let sel = engine
            .var(&var)
            .ok_or_else(|| SessionError::NotFound(format!("vcheck: selection `{var}`")))?;

        let mut report = kcheck::Report::default();
        let mut flagged: Vec<(vgraph::BoxId, usize, String)> = Vec::new();
        {
            let target = self.target();
            let checker = kcheck::Checker::new(&target);
            for id in sel.boxes() {
                let b = scratch.get(id);
                if b.addr == 0 || b.ctype.is_empty() {
                    continue;
                }
                let before = report.violations.len();
                let path = format!("{}@{:#x}", b.ctype, b.addr);
                let (addr, ctype) = (b.addr, b.ctype.clone());
                checker.check_object(addr, &ctype, &path, &mut report);
                let fresh = report.violations.len() - before;
                if fresh > 0 {
                    flagged.push((id, fresh, report.violations[before].detail.clone()));
                }
            }
        }
        if !flagged.is_empty() {
            if let Some(g) = self.panes.as_mut().and_then(|s| s.graph_of_mut(pane)) {
                for (id, count, detail) in flagged {
                    let attrs = &mut g.get_mut(id).attrs;
                    attrs.set("violations", serde_json::json!(count));
                    attrs.set("vcheck", serde_json::json!(detail));
                }
            }
        }
        Ok(report)
    }

    /// The graph displayed on a pane.
    pub fn graph(&self, pane: PaneId) -> Result<&Graph> {
        self.panes
            .as_ref()
            .and_then(|s| s.graph_of(pane))
            .ok_or_else(|| SessionError::NotFound(format!("pane {pane:?}")))
    }

    /// Extraction stats of a plotted pane.
    pub fn plot_stats(&self, pane: PaneId) -> Option<PlotStats> {
        self.stats.get(&pane).copied()
    }

    /// Render a pane, recording a `render` span on the pane's trace.
    /// Renders read no target memory, so the span is zero-cost in wire
    /// terms — it exists to complete the pipeline attribution.
    fn render_traced<R>(&self, pane: PaneId, name: &str, f: impl FnOnce(&Graph) -> R) -> Result<R> {
        let graph = self.graph(pane)?;
        match &self.tracer {
            None => Ok(f(graph)),
            Some(t) => {
                let t = t.clone();
                let out = {
                    let _s = vtrace::span(Some(&t), SpanKind::Render, name);
                    f(graph)
                };
                // Only a top-level render lands back on the pane; nested
                // spans (inside an open extract) stay with their parent.
                if let Some(span) = t.take_last_finished() {
                    self.absorb_into_pane(pane, span);
                }
                Ok(out)
            }
        }
    }

    /// Render a pane as text.
    pub fn render_text(&self, pane: PaneId) -> Result<String> {
        self.render_traced(pane, "render::text", vrender::to_text)
    }

    /// Render a pane as Graphviz DOT.
    pub fn render_dot(&self, pane: PaneId) -> Result<String> {
        self.render_traced(pane, "render::dot", vrender::to_dot)
    }

    /// Render a pane as SVG.
    pub fn render_svg(&self, pane: PaneId) -> Result<String> {
        self.render_traced(pane, "render::svg", vrender::to_svg)
    }

    /// Persist the pane tree.
    pub fn save_panes(&self) -> Option<String> {
        self.panes.as_ref().map(|s| s.save())
    }

    fn panes_mut(&mut self) -> Result<&mut vpanels::Session> {
        self.panes
            .as_mut()
            .ok_or_else(|| SessionError::NotFound("no panes (plot something first)".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::workload::{build, WorkloadConfig};

    fn session() -> Session {
        Session::attach(build(&WorkloadConfig::default()), LatencyProfile::free())
    }

    #[test]
    fn vplot_figure_and_render() {
        let mut s = session();
        let pane = s.vplot_figure("fig7-1").unwrap();
        let text = s.render_text(pane).unwrap();
        assert!(text.contains("RQ"));
        assert!(text.contains("worker-0"));
        let stats = s.plot_stats(pane).unwrap();
        assert!(stats.graph.objects > 3);
    }

    #[test]
    fn vctrl_refine_applies_viewql() {
        let mut s = session();
        let pane = s.vplot_figure("fig3-4").unwrap();
        s.vctrl_refine(
            pane,
            "a = SELECT task_struct FROM * WHERE mm == NULL\nUPDATE a WITH collapsed: true",
        )
        .unwrap();
        let g = s.graph(pane).unwrap();
        let collapsed = g.boxes().iter().filter(|b| b.attrs.collapsed).count();
        assert!(collapsed >= 6, "kthreads collapsed, got {collapsed}");
    }

    #[test]
    fn vchat_round_trip() {
        let mut s = session();
        let pane = s.vplot_figure("fig3-4").unwrap();
        let out = s
            .vchat(pane, "shrink tasks that have no address space", true)
            .unwrap();
        assert!(out.viewql.contains("mm == NULL"), "{}", out.viewql);
        let g = s.graph(pane).unwrap();
        assert!(g.boxes().iter().any(|b| b.attrs.collapsed));
    }

    #[test]
    fn multiple_plots_split_panes_and_focus_finds_shared_objects() {
        let mut s = session();
        let p1 = s.vplot_figure("fig3-4").unwrap();
        let p2 = s.vplot_figure("fig7-1").unwrap();
        assert_ne!(p1, p2);
        // A runnable leader appears in both the parent tree and the
        // scheduler tree (paper Figure 2).
        let leader = s.roots.leaders[0];
        let hits = s.focus(leader);
        let panes: std::collections::HashSet<_> = hits.iter().map(|h| h.pane).collect();
        assert!(panes.len() >= 2, "expected hits in both panes: {hits:?}");
    }

    #[test]
    fn vplot_auto_synthesizes_naive_viewcl() {
        let mut s = session();
        let src = s
            .synthesize_viewcl("vm_area_struct", "find_vma(current_task->mm, 0x400000)")
            .unwrap();
        assert!(src.contains("Text vm_start"), "{src}");
        assert!(src.contains("Text<raw_ptr> vm_file"), "{src}");
        let pane = s
            .vplot_auto("vm_area_struct", "find_vma(current_task->mm, 0x400000)")
            .unwrap();
        let g = s.graph(pane).unwrap();
        assert_eq!(g.get(g.roots[0]).ctype, "vm_area_struct");
        // The naive plot shows the real field values.
        assert_eq!(g.get(g.roots[0]).member_raw("vm_start", g), Some(0x400000));
        assert!(matches!(
            s.vplot_auto("no_such_type", "0"),
            Err(SessionError::NotFound(_))
        ));
    }

    #[test]
    fn vctrl_select_creates_secondary_pane() {
        let mut s = session();
        let pane = s.vplot_figure("fig7-1").unwrap();
        let first = s.graph(pane).unwrap().roots[0];
        let sec = s
            .vctrl_select(pane, SplitDir::Vertical, vec![first])
            .unwrap();
        assert_ne!(sec, pane);
        // The secondary pane resolves its origin's graph.
        assert!(s.graph(sec).is_ok());
    }

    #[test]
    fn lock_state_in_one_line_of_viewcl() {
        // §5.1: "we can visualize the lock state within a single line of
        // ViewCL" — the EMOJI decorator over a spinlock word.
        let mut s = session();
        let pane = s
            .vplot(
                r#"
define MMLock as Box<mm_struct> [
    Text<emoji:lock> page_table_lock: page_table_lock.locked
]
m = MMLock(${current_task->mm})
plot @m
"#,
            )
            .unwrap();
        let g = s.graph(pane).unwrap();
        match g.get(g.roots[0]).item("page_table_lock").unwrap() {
            vgraph::Item::Text { value, .. } => assert_eq!(value, "🔓"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cached_session_plots_identically_and_cheaper() {
        let fig = crate::figures::by_id("fig3-4").unwrap();
        let uncached = Session::attach(
            build(&WorkloadConfig::default()),
            LatencyProfile::kgdb_rpi400(),
        );
        let mut cached = Session::attach_with_cache(
            build(&WorkloadConfig::default()),
            LatencyProfile::kgdb_rpi400(),
            vbridge::CacheConfig::default(),
        );
        assert!(cached.cache_enabled() && !uncached.cache_enabled());
        let (g_plain, s_plain) = uncached.extract(fig.viewcl).unwrap();
        let (g_cold, s_cold) = cached.extract(fig.viewcl).unwrap();
        assert_eq!(g_plain.to_json(), g_cold.to_json());
        assert!(s_cold.target.virtual_ns < s_plain.target.virtual_ns);
        // Warm re-extraction: the snapshot has not changed, so nearly
        // everything comes from cache.
        let (g_warm, s_warm) = cached.extract(fig.viewcl).unwrap();
        assert_eq!(g_plain.to_json(), g_warm.to_json());
        assert!(s_warm.target.reads < s_cold.target.reads);
        assert!(s_warm.target.cache_hits > 0);
        // Resuming the kernel drops every cached block.
        cached.resume();
        assert!(cached.cache().unwrap().is_empty());
        let (_, s_cold2) = cached.extract(fig.viewcl).unwrap();
        assert!(s_cold2.target.cache_misses > 0);
    }

    #[test]
    fn vcheck_clean_image_reports_nothing() {
        let s = session();
        let report = s.vcheck();
        assert!(report.is_clean(), "{}", report.summary());
        assert!(report.checkers_run > 10);
    }

    #[test]
    fn vcheck_scoped_flags_and_annotates_corrupted_selection() {
        let mut w = build(&WorkloadConfig::default());
        ksim::faults::inject(&mut w, ksim::faults::FaultKind::MaplePivotCorrupt, 1);
        let mut s = Session::attach(w, LatencyProfile::free());
        let pane = s.vplot_figure("fig3-4").unwrap();
        let report = s
            .vcheck_scoped(pane, "v = SELECT mm_struct FROM *")
            .unwrap();
        assert!(report.count_of("maple") >= 1, "{}", report.summary());
        let g = s.graph(pane).unwrap();
        let annotated = g
            .boxes()
            .iter()
            .filter(|b| b.attrs.extra.contains_key("violations"))
            .count();
        assert!(annotated >= 1, "the violating mm box is annotated");
        // A clean selection of the same plot stays unannotated.
        let clean = s
            .vcheck_scoped(pane, "t = SELECT task_struct FROM * WHERE mm == NULL")
            .unwrap();
        assert!(clean.is_clean(), "{}", clean.summary());
    }

    #[test]
    fn unknown_figure_errors() {
        let mut s = session();
        assert!(matches!(
            s.vplot_figure("fig0-0"),
            Err(SessionError::NotFound(_))
        ));
    }

    #[test]
    fn plot_stats_rates_are_zero_not_nan_on_empty_plots() {
        // A plot with no kernel objects and no wire traffic must report
        // 0 ms/object and 0 ms/KB, not NaN/inf from a zero denominator.
        let empty = PlotStats {
            graph: GraphStats::default(),
            target: TargetStats::default(),
        };
        assert_eq!(empty.total_ms(), 0.0);
        assert_eq!(empty.ms_per_object(), 0.0);
        assert_eq!(empty.ms_per_kb(), 0.0);
        // Nonzero time over zero objects (e.g. every chase faulted away)
        // still may not divide by zero.
        let timed = PlotStats {
            graph: GraphStats::default(),
            target: TargetStats {
                virtual_ns: 1_000_000,
                ..TargetStats::default()
            },
        };
        assert!(timed.ms_per_object().is_finite());
        assert!(timed.ms_per_kb().is_finite());
        assert_eq!(timed.ms_per_object(), 0.0);
        assert_eq!(timed.ms_per_kb(), 0.0);
    }

    #[test]
    fn vtrace_reconciles_with_target_stats() {
        let mut s = Session::attach(
            build(&WorkloadConfig::default()),
            LatencyProfile::kgdb_rpi400(),
        );
        assert!(!s.tracing_enabled());
        assert!(s.vtrace(PaneId(0)).is_none());
        s.enable_tracing();
        assert!(s.tracing_enabled());

        let pane = s.vplot_figure("fig3-4").unwrap();
        let _ = s.render_text(pane).unwrap();
        s.vctrl_refine(
            pane,
            "a = SELECT task_struct FROM * WHERE mm == NULL\nUPDATE a WITH collapsed: true",
        )
        .unwrap();

        let trace = s.vtrace(pane).expect("pane trace recorded");
        trace.check_well_formed().unwrap();

        // The trace includes the extraction plus the (wire-silent) render
        // and refine; its counters must reconcile with TargetStats
        // exactly — same clock, mirrored increments, telescoping sums.
        let target = s.plot_stats(pane).unwrap().target;
        let tot = trace.totals();
        assert_eq!(tot.packets, target.reads);
        assert_eq!(tot.bytes, target.bytes);
        assert_eq!(tot.virtual_ns, target.virtual_ns);
        assert_eq!(tot.cache_hits, target.cache_hits);
        assert_eq!(tot.faults, target.faults);
        assert_eq!(trace.leaf_totals(), tot);

        // The span tree shows the whole pipeline: extract with parse +
        // interp children, distiller spans inside interp, plus the render
        // and refine recorded afterwards.
        let kinds: Vec<SpanKind> = trace.flatten().iter().map(|sp| sp.kind).collect();
        for want in [
            SpanKind::Extract,
            SpanKind::Parse,
            SpanKind::Interp,
            SpanKind::Distill,
            SpanKind::Render,
            SpanKind::Query,
        ] {
            assert!(kinds.contains(&want), "missing {want:?} in {kinds:?}");
        }

        // Chrome export is valid JSON with one event per span.
        let chrome = s.export_chrome_trace();
        let v: serde_json::Value = serde_json::from_str(&chrome).unwrap();
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert_eq!(events.len(), trace.flatten().len());
    }
}
