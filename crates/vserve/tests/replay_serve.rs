//! The pane server can serve a recorded wire capture with no live
//! image: the engine thread attaches a replay session from a `.vrec`
//! capture, and clients receive plots byte-identical to the recording
//! session's — the "offline debugging" half of the backend redesign.

use std::sync::mpsc;
use std::thread;

use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::proto::VCommand;
use visualinux::{figures, Session};
use vserve::{Replica, SendMode, ServeConfig, Server};

/// Figures requested in this exact order on both sides: replay is a
/// strict in-order tape, and the server walks each unique source once.
const FIGS: [&str; 5] = ["fig3-4", "fig4-5", "fig7-1", "fig9-2", "workqueue"];

#[test]
fn server_serves_a_replay_capture_without_an_image() {
    // Live pass: record the five extractions in request order.
    let live = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .record(std::env::temp_dir().join(format!("vserve-replay-{}.vrec", std::process::id())))
        .attach()
        .unwrap();
    let mut expected = Vec::new();
    for id in FIGS {
        let fig = figures::by_id(id).unwrap();
        let (graph, _) = live.extract(fig.viewcl).unwrap();
        expected.push(
            VCommand::Vplot {
                graph,
                source: fig.viewcl.to_string(),
            }
            .to_json(),
        );
    }
    let cap = live.capture().unwrap();
    drop(live);

    // Offline pass: the engine owns a session rebuilt from the capture
    // alone (`Capture` is Send; `Session` is built inside the thread).
    let (tx, rx) = mpsc::channel();
    let engine = thread::spawn(move || {
        let session = Session::replay(cap).attach().expect("replay attach");
        assert_eq!(
            session.image().mem.mapped_pages(),
            0,
            "replay session must not hold live memory"
        );
        let mut server = Server::new(session, ServeConfig::default());
        tx.send(server.handle()).unwrap();
        server.run();
        server.stats()
    });
    let handle = rx.recv().unwrap();

    let conn = handle.connect();
    let mut replica = Replica::new();
    for (id, want) in FIGS.iter().zip(&expected) {
        let fig = figures::by_id(id).unwrap();
        conn.send(&VCommand::VplotRequest {
            viewcl: fig.viewcl.to_string(),
        }, SendMode::Blocking)
        .expect("send");
        let reply = conn.recv().expect("reply");
        assert_eq!(&reply, want, "figure {id} diverged from the live recording");
        replica.apply_line(&reply).expect("apply");
    }
    conn.close();

    let stats = engine.join().unwrap();
    assert_eq!(stats.walks as usize, FIGS.len());
    stats.reconcile().expect("books balance");
}
