//! Malformed-frame fuzzing of the framing layer: whatever bytes arrive
//! — truncated length prefixes, oversized declared lengths, mid-frame
//! closes, garbage, version-skewed handshakes — the decoder must answer
//! with a *positioned* [`FrameError`], never a panic, never a hang, and
//! must never mis-frame a valid stream no matter how it is chunked.

use proptest::prelude::*;
use vserve::framing::{
    accept_frame, hello_frame, negotiate_server, parse_hello, parse_verdict, reject_frame,
    sniff, BinaryFraming, DecodeBuf, FrameError, Framing, LineFraming, Sniff,
};
use vserve::{byte_pair, Io, WireClient};
use visualinux::proto::VERSION;

/// JSON-ish payloads: printable, no newlines (a line frame cannot carry
/// one), including empty and multi-byte UTF-8.
fn payload_strategy() -> BoxedStrategy<String> {
    prop_oneof![
        Just(String::new()),
        Just("{\"command\":\"vack\",\"source\":\"s\",\"seq\":1}".to_string()),
        (0usize..64).prop_map(|n| "x".repeat(n)),
        (1usize..8).prop_map(|n| "héllo→🜃".repeat(n)),
        (0u64..u64::MAX).prop_map(|n| format!("{{\"seq\":{n}}}")),
    ]
    .boxed()
}

fn framings() -> Vec<Box<dyn Framing>> {
    vec![
        Box::new(LineFraming::default()),
        Box::new(BinaryFraming::default()),
    ]
}

/// What a framing reproduces from `payloads`: the line framing cannot
/// represent an empty payload (a blank line is skipped by design); the
/// binary framing carries everything.
fn representable(f: &dyn Framing, payloads: &[String]) -> Vec<String> {
    payloads
        .iter()
        .filter(|p| f.name() != "lines" || !p.is_empty())
        .cloned()
        .collect()
}

/// Drain `buf` through `f`, bounding the iteration count so a decoder
/// that stops making progress fails the test instead of hanging it.
fn drain(
    f: &dyn Framing,
    buf: &mut DecodeBuf,
    out: &mut Vec<String>,
) -> Result<(), FrameError> {
    for _ in 0..100_000 {
        match f.decode(buf)? {
            Some(p) => out.push(p),
            None => return Ok(()),
        }
    }
    panic!("decoder made no terminal progress over {} bytes", buf.len());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    // Valid streams decode to exactly the encoded payloads, however
    // the bytes are chunked on arrival.
    #[test]
    fn round_trip_survives_arbitrary_chunking(
        payloads in proptest::collection::vec(payload_strategy(), 0..12),
        chunk in 1usize..97,
    ) {
        for f in framings() {
            let mut wire = Vec::new();
            for p in &payloads {
                f.encode(p, &mut wire);
            }
            let mut buf = DecodeBuf::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                buf.extend(piece);
                if let Err(e) = drain(f.as_ref(), &mut buf, &mut got) {
                    return Err(TestCaseError::Fail(format!("{}: {e}", f.name())));
                }
            }
            if f.finish(&buf).is_err() {
                return Err(TestCaseError::Fail(format!("{}: dirty finish", f.name())));
            }
            prop_assert_eq!(got, representable(f.as_ref(), &payloads));
        }
    }

    // Cutting a valid stream anywhere yields a prefix of the payloads
    // and either a clean finish (cut on a frame boundary) or a
    // positioned truncation — never a panic, never a wrong payload.
    #[test]
    fn mid_frame_close_truncates_with_position(
        payloads in proptest::collection::vec(payload_strategy(), 1..8),
        cut_seed in 0usize..10_000,
    ) {
        for f in framings() {
            let mut wire = Vec::new();
            for p in &payloads {
                f.encode(p, &mut wire);
            }
            let cut = cut_seed % (wire.len() + 1);
            let mut buf = DecodeBuf::new();
            buf.extend(&wire[..cut]);
            let mut got = Vec::new();
            if drain(f.as_ref(), &mut buf, &mut got).is_err() {
                // Only the *binary* framing can error before EOF here
                // (a cut cannot invent garbage in a valid prefix).
                return Err(TestCaseError::Fail(format!("{}: decode error on prefix", f.name())));
            }
            let want = representable(f.as_ref(), &payloads);
            prop_assert!(got.len() <= want.len());
            prop_assert_eq!(&got[..], &want[..got.len()]);
            match f.finish(&buf) {
                Ok(()) => prop_assert!(buf.is_empty()),
                Err(FrameError::Truncated { at, have, .. }) => {
                    prop_assert!(have > 0);
                    // The truncation points inside the bytes that arrived.
                    prop_assert!((at as usize) < cut);
                }
                Err(e) => return Err(TestCaseError::Fail(format!("{}: {e}", f.name()))),
            }
        }
    }

    // Any declared length over the ceiling is an `Oversize` at the
    // prefix's stream offset, regardless of preceding valid frames.
    #[test]
    fn oversized_declared_lengths_are_positioned(
        preamble in proptest::collection::vec(payload_strategy(), 0..4),
        excess in 1u64..1_000_000,
    ) {
        let max = 4096u32;
        let f = BinaryFraming::with_max_frame(max);
        let mut wire = Vec::new();
        for p in &preamble {
            f.encode(p, &mut wire);
        }
        let at = wire.len() as u64;
        let declared = max as u64 + excess.min(u32::MAX as u64 - max as u64);
        wire.extend_from_slice(&(declared as u32).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut buf = DecodeBuf::new();
        buf.extend(&wire);
        let mut got = Vec::new();
        let err = match drain(&f, &mut buf, &mut got) {
            Err(e) => e,
            Ok(()) => return Err(TestCaseError::Fail("oversize accepted".into())),
        };
        prop_assert_eq!(&got, &preamble);
        prop_assert_eq!(err, FrameError::Oversize { at, declared, max: max as u64 });
    }

    // Arbitrary garbage never panics or hangs either framing: every
    // byte sequence terminates in frames, "need more", or a positioned
    // error.
    #[test]
    fn arbitrary_bytes_never_panic_or_hang(
        bytes in proptest::collection::vec(0u8..=255, 0..512),
        chunk in 1usize..64,
    ) {
        for f in framings() {
            let mut buf = DecodeBuf::new();
            let mut got = Vec::new();
            let mut failed = None;
            for piece in bytes.chunks(chunk) {
                buf.extend(piece);
                if let Err(e) = drain(f.as_ref(), &mut buf, &mut got) {
                    failed = Some(e);
                    break;
                }
            }
            let fin = failed.map(Err).unwrap_or_else(|| f.finish(&buf));
            if let Err(e) = fin {
                // Positioned within the bytes that actually arrived.
                let at = match &e {
                    FrameError::Oversize { at, .. }
                    | FrameError::Garbage { at, .. }
                    | FrameError::Truncated { at, .. } => *at,
                    FrameError::VersionSkew { .. } => {
                        return Err(TestCaseError::Fail("skew without a handshake".into()))
                    }
                };
                prop_assert!((at as usize) <= bytes.len());
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    // Every non-matching announced version is rejected with a skew
    // naming both versions, on both ends of the handshake.
    #[test]
    fn version_skew_is_loud_on_both_ends(theirs in 0u16..u16::MAX) {
        if theirs == VERSION {
            return Err(TestCaseError::Reject("not a skew".into()));
        }
        let (err, reject) = match negotiate_server(theirs) {
            Err(both) => both,
            Ok(_) => return Err(TestCaseError::Fail(format!("v{theirs} accepted"))),
        };
        let msg = err.to_string();
        prop_assert!(msg.contains(&format!("v{VERSION}")));
        prop_assert!(msg.contains(&format!("v{theirs}")));
        // The client decodes the reject frame into the mirrored skew.
        let mut buf = DecodeBuf::new();
        buf.extend(&reject);
        let err = match parse_verdict(&mut buf, theirs) {
            Err(e) => e,
            other => return Err(TestCaseError::Fail(format!("verdict: {other:?}"))),
        };
        prop_assert_eq!(err, FrameError::VersionSkew { ours: theirs, theirs: VERSION });
    }

    // A hello chunked at any boundary parses incrementally; corrupting
    // any single byte of its magic is positioned garbage, and the
    // corrupted first byte no longer sniffs as binary.
    #[test]
    fn hello_frames_parse_incrementally_and_reject_bad_magic(
        split in 0usize..8,
        at_byte in 0usize..4,
    ) {
        let hello = hello_frame(VERSION);
        let mut buf = DecodeBuf::new();
        buf.extend(&hello[..split]);
        match parse_hello(&mut buf) {
            Ok(None) => {}
            other => return Err(TestCaseError::Fail(format!("partial hello: {other:?}"))),
        }
        buf.extend(&hello[split..]);
        prop_assert_eq!(parse_hello(&mut buf), Ok(Some(VERSION)));

        let mut bad = hello;
        bad[at_byte] ^= 0x20;
        if at_byte == 0 {
            prop_assert_eq!(sniff(bad[0]), Sniff::Lines);
        }
        let mut buf = DecodeBuf::new();
        buf.extend(&bad);
        match parse_hello(&mut buf) {
            Err(FrameError::Garbage { at: 0, .. }) => {}
            other => return Err(TestCaseError::Fail(format!("bad magic: {other:?}"))),
        }
    }
}

/// A scripted server that answers the hello with arbitrary bytes: the
/// blocking client must error (positioned, both-versions-named for
/// skew) — never hang — for every verdict shape.
#[test]
fn client_handshake_survives_hostile_verdicts() {
    let hostile: Vec<(Vec<u8>, &str)> = vec![
        (reject_frame(7, VERSION).to_vec(), "version skew"),
        (accept_frame(VERSION + 1).to_vec(), "version skew"),
        (b"XXXXXXXX".to_vec(), "verdict frame"),
        (b"VWOK".to_vec(), "closed during the wire handshake"),
        (Vec::new(), "closed during the wire handshake"),
    ];
    for (verdict, want) in hostile {
        let (client_io, mut server_io) = byte_pair(16);
        let server = std::thread::spawn(move || {
            // Read (and discard) the hello, then send the scripted bytes
            // and close.
            let mut seen = 0usize;
            let mut chunk = [0u8; 64];
            while seen < 8 {
                match server_io.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => seen += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::yield_now()
                    }
                    Err(e) => panic!("{e}"),
                }
            }
            let mut done = 0;
            while done < verdict.len() {
                match server_io.write(&verdict[done..]) {
                    Ok(n) => done += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::yield_now()
                    }
                    Err(e) => panic!("{e}"),
                }
            }
        });
        let err = WireClient::binary(Box::new(client_io))
            .err()
            .unwrap_or_else(|| panic!("handshake accepted {want:?}"));
        let msg = err.to_string();
        assert!(msg.contains(want), "verdict {want:?}: got {msg}");
        server.join().unwrap();
    }
}
