//! Concurrency semantics of the pane server: many clients against one
//! shared target, coalescing, backpressure, and graceful shutdown.

use std::sync::mpsc;
use std::thread;

use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::proto::VCommand;
use visualinux::{figures, Session};
use vserve::{SendMode, ServeConfig, ServeError, ServeStats, Server, ServerHandle};

fn attach() -> Session {
    Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .cache(CacheConfig::default())
        .attach()
        .unwrap()
}

/// Spawn the engine on its own thread (the session is single-threaded by
/// design) and hand back a control handle plus the join handle that
/// yields the final stats.
fn spawn_engine(cfg: ServeConfig) -> (ServerHandle, thread::JoinHandle<ServeStats>) {
    let (tx, rx) = mpsc::channel();
    let join = thread::spawn(move || {
        let mut server = Server::new(attach(), cfg);
        tx.send(server.handle()).unwrap();
        server.run();
        server.stats()
    });
    (rx.recv().unwrap(), join)
}

#[test]
fn eight_clients_share_one_walk_and_get_identical_bytes() {
    let fig = figures::by_id("fig3-4").expect("figure");
    let request = VCommand::VplotRequest {
        viewcl: fig.viewcl.to_string(),
    };

    let (handle, engine) = spawn_engine(ServeConfig::default());
    // Connect everyone before spawning client threads so the idle-exit
    // engine cannot see an empty registry between early finishers.
    let conns: Vec<_> = (0..8).map(|_| handle.connect()).collect();

    let clients: Vec<_> = conns
        .into_iter()
        .map(|conn| {
            let request = request.clone();
            thread::spawn(move || {
                conn.send(&request, SendMode::Blocking).expect("send");
                let reply = conn.recv().expect("reply");
                conn.close();
                reply
            })
        })
        .collect();
    let replies: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let stats = engine.join().unwrap();

    // Exactly one bridge walk; the other seven coalesced on the memo.
    assert_eq!(stats.walks, 1, "{stats:?}");
    assert_eq!(stats.coalesced, 7, "{stats:?}");
    assert_eq!(stats.extractions, 8);
    assert_eq!(stats.fulls_sent, 8);
    assert_eq!(stats.requests, 8);
    stats.reconcile().expect("books balance");

    // Every client got bytes identical to what a private single-client
    // session would have extracted.
    let solo = attach();
    let (graph, _) = solo.extract(fig.viewcl).expect("solo extract");
    let expected = VCommand::Vplot {
        graph,
        source: fig.viewcl.to_string(),
    }
    .to_json();
    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(reply, &expected, "client {i} diverged from solo run");
    }
}

#[test]
fn stop_events_invalidate_the_memo_in_request_order() {
    let fig = figures::by_id("fig3-4").expect("figure");
    let request = VCommand::VplotRequest {
        viewcl: fig.viewcl.to_string(),
    };
    let (_, _, roots) = build(&WorkloadConfig::default()).finish();

    let (handle, engine) = spawn_engine(ServeConfig::default());
    let conn = handle.connect();
    conn.send(&request, SendMode::Blocking).unwrap();
    let before = conn.recv().unwrap();
    let roots2 = roots.clone();
    handle
        .stop_event(move |img| {
            ksim::tick::tick(img, &roots2, 1);
        })
        .unwrap();
    conn.send(&request, SendMode::Blocking).unwrap();
    let after = conn.recv().unwrap();
    conn.close();
    let stats = engine.join().unwrap();

    assert_ne!(before, after, "the tick must be visible in the plot");
    assert_eq!(stats.stops, 1);
    assert_eq!(stats.walks, 2, "stop event must force a re-walk");
    assert_eq!(stats.coalesced, 0);
    stats.reconcile().expect("books balance");
}

#[test]
fn nonblocking_send_reports_backpressure_then_closed() {
    // No engine thread: the queue stays full, so the second
    // non-blocking send must surface Backpressure rather than block.
    let mut server = Server::new(
        attach(),
        ServeConfig {
            request_queue: 1,
            client_queue: 1,
            exit_when_idle: true,
        },
    );
    let handle = server.handle();
    let conn = handle.connect();
    let ping = VCommand::VplotRequest {
        viewcl: figures::by_id("fig3-4").unwrap().viewcl.to_string(),
    };
    conn.send(&ping, SendMode::NonBlocking).expect("first fits");
    assert_eq!(
        conn.send(&ping, SendMode::NonBlocking),
        Err(ServeError::Backpressure)
    );
    // The one-release compatibility shims delegate to the same entry.
    #[allow(deprecated)]
    {
        assert_eq!(conn.try_send(&ping), Err(ServeError::Backpressure));
    }

    // Graceful shutdown: queued work is still answered before the
    // engine returns, but nothing new gets in.
    handle.shutdown();
    assert_eq!(conn.send(&ping, SendMode::NonBlocking), Err(ServeError::Closed));
    assert!(conn.send(&ping, SendMode::Blocking).is_err());
    server.run();
    let reply = conn.recv().expect("queued request was served");
    assert!(reply.contains("vplot"), "{reply}");
    assert_eq!(conn.recv(), None, "stream closed after the drain");

    let stats = server.stats();
    assert_eq!(stats.requests, 1);
    assert!(stats.queue_depth_max >= 1);
    stats.reconcile().expect("books balance");
}

#[test]
fn malformed_lines_are_answered_not_fatal() {
    let (handle, engine) = spawn_engine(ServeConfig::default());
    let conn = handle.connect();
    conn.send_frame("this is not json".to_string(), SendMode::Blocking)
        .unwrap();
    let reply = conn.recv().expect("error reply");
    assert!(reply.contains("err"), "{reply}");

    // The server survives and keeps serving real requests.
    let fig = figures::by_id("fig3-4").unwrap();
    conn.send(
        &VCommand::VplotRequest {
            viewcl: fig.viewcl.to_string(),
        },
        SendMode::Blocking,
    )
    .unwrap();
    assert!(conn.recv().expect("real reply").contains("vplot"));
    conn.close();
    let stats = engine.join().unwrap();
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.requests, 2);
    stats.reconcile().expect("books balance");
}

#[test]
fn shutdown_drains_requests_queued_by_departed_clients() {
    let fig = figures::by_id("fig3-4").expect("figure");
    let mut server = Server::new(
        attach(),
        ServeConfig {
            exit_when_idle: false,
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let conn = handle.connect();
    for _ in 0..3 {
        conn.send(&VCommand::VplotRequest {
            viewcl: fig.viewcl.to_string(),
        }, SendMode::Blocking)
        .expect("queued while the engine is not yet running");
    }
    // The client hangs up with its requests still queued, then the
    // server shuts down: the engine must drain and answer those
    // requests before dropping the client's stream (they used to be
    // silently lost as dropped_replies).
    conn.close();
    handle.shutdown();
    server.run();

    for i in 0..3 {
        let reply = conn.recv();
        assert!(reply.is_some(), "reply {i} was dropped during shutdown");
        let reply = reply.unwrap();
        assert!(
            reply.contains("\"command\":\"vplot"),
            "reply {i} is not a plot payload: {reply}"
        );
    }
    assert_eq!(conn.recv(), None, "stream ends after the drained replies");
    let stats = server.stats();
    assert_eq!(stats.dropped_replies, 0, "{stats:?}");
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.walks, 1);
    assert_eq!(stats.coalesced, 2);
    stats.reconcile().expect("books balance");
}
