//! Delta sync across the full figure corpus: after a stop event, the
//! server ships `vplot_delta` payloads that (a) reconstruct exactly the
//! graph a fresh extraction yields and (b) are materially smaller than a
//! full re-ship for at least half of the 21 figure workloads.

use std::sync::mpsc;
use std::thread;

use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::proto::VCommand;
use visualinux::{figures, Session};
use vserve::{Replica, ReplicaEvent, SendMode, ServeConfig, Server};

fn attach() -> Session {
    Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .cache(CacheConfig::default())
        .attach()
        .unwrap()
}

#[test]
fn deltas_reconstruct_and_beat_full_ships_across_the_corpus() {
    let figs = figures::all();
    let (_, _, roots) = build(&WorkloadConfig::default()).finish();

    let (tx, rx) = mpsc::channel();
    let engine = thread::spawn(move || {
        let mut server = Server::new(attach(), ServeConfig::default());
        tx.send(server.handle()).unwrap();
        server.run();
        server.stats()
    });
    let handle = rx.recv().unwrap();
    let conn = handle.connect();
    let mut replica = Replica::new();

    // Round 1: baseline full ships for every figure.
    for fig in &figs {
        conn.send(&VCommand::VplotRequest {
            viewcl: fig.viewcl.to_string(),
        }, SendMode::Blocking)
        .unwrap();
        let ev = replica.apply_line(&conn.recv().unwrap()).unwrap();
        assert!(
            matches!(ev, ReplicaEvent::Full { .. }),
            "first ship of {} must be full",
            fig.id
        );
    }

    // The kernel runs: scheduler tick mutates vruntime/utime/state.
    let tick_roots = roots.clone();
    handle
        .stop_event(move |img| {
            ksim::tick::tick(img, &tick_roots, 1);
        })
        .unwrap();

    // Round 2: the server picks delta vs full per figure; the replica
    // follows along and acks whatever it applied.
    let mut replies = Vec::new();
    for fig in &figs {
        conn.send(&VCommand::VplotRequest {
            viewcl: fig.viewcl.to_string(),
        }, SendMode::Blocking)
        .unwrap();
        let line = conn.recv().unwrap();
        let ev = replica.apply_line(&line).unwrap();
        let was_delta = matches!(ev, ReplicaEvent::Delta { .. });
        if let Some(ack) = replica.ack(fig.viewcl) {
            conn.send(&ack, SendMode::Blocking).unwrap();
            let ack_reply = conn.recv().unwrap();
            assert!(ack_reply.contains("ok"), "ack rejected: {ack_reply}");
        }
        replies.push((fig.id, fig.viewcl, line.len(), was_delta));
    }
    conn.close();
    let stats = engine.join().unwrap();
    stats.reconcile().expect("books balance");
    assert_eq!(stats.stops, 1);
    assert_eq!(stats.resyncs, 0, "all acks matched");

    // Ground truth: a private session that saw the same tick.
    let mut solo = attach();
    solo.stop_event(|img| {
        ksim::tick::tick(img, &roots, 1);
    })
    .expect("live stop");

    let mut small_deltas = 0usize;
    for (id, viewcl, wire_len, was_delta) in &replies {
        let (truth, _) = solo.extract(viewcl).expect("solo extract");
        let mirrored = replica.graph(viewcl).expect("replica has the plot");
        assert_eq!(
            mirrored.to_json(),
            truth.to_json(),
            "{id}: replaying deltas must equal a fresh extraction"
        );
        let full_len = VCommand::Vplot {
            graph: truth,
            source: viewcl.to_string(),
        }
        .to_json()
        .len();
        if *was_delta && wire_len * 2 <= full_len {
            small_deltas += 1;
        }
    }
    assert!(
        small_deltas * 2 >= figs.len(),
        "delta sync must halve the payload on at least half the corpus: \
         {small_deltas}/{} (deltas sent: {})",
        figs.len(),
        stats.deltas_sent
    );
    assert!(stats.delta_bytes_saved > 0);
}
