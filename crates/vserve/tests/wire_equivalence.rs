//! Framing transparency: the binary wire is a pure encoding change.
//! Every library figure must come back *byte-identical* over the
//! length-prefixed binary framing, the legacy newline-JSON framing, and
//! a direct in-process connection — full plots and deltas, under both a
//! free and a gdb-over-QEMU latency profile — because framing sits
//! strictly below the `VCommand` layer. A version-skewed handshake
//! against the same live pump must fail loudly, naming both versions.

use std::thread;

use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::proto::{VCommand, VERSION};
use visualinux::{figures, Session};
use vserve::{
    byte_pair, SendMode, ServeConfig, Server, SingleSession, WireClient, WireConfig, WirePump,
};

fn serve_profile(profile: LatencyProfile, rounds: u64) {
    // The session is single-threaded by design: build it on the engine
    // thread and pass the control handle back.
    let (tx, rx) = std::sync::mpsc::channel();
    let engine = thread::spawn(move || {
        let session = Session::builder(build(&WorkloadConfig::default()))
            .profile(profile)
            .cache(CacheConfig::default())
            .attach()
            .unwrap();
        let mut server = Server::new(
            session,
            ServeConfig {
                exit_when_idle: false,
                ..ServeConfig::default()
            },
        );
        tx.send(server.handle()).unwrap();
        server.run();
        server.stats()
    });
    let handle = rx.recv().unwrap();

    let pump = WirePump::new(
        Box::new(SingleSession::new(handle.clone())),
        WireConfig::default(),
    );
    let ph = pump.handle();
    let pump_thread = thread::spawn(move || pump.run());

    let (bin_io, srv_io) = byte_pair(64);
    ph.add(Box::new(srv_io)).unwrap();
    let mut binary = WireClient::binary(Box::new(bin_io)).unwrap();
    assert_eq!(binary.framing_name(), "binary");
    let (line_io, srv_io) = byte_pair(64);
    ph.add(Box::new(srv_io)).unwrap();
    let mut lines = WireClient::lines(Box::new(line_io));
    // Ground truth: a wire-less in-process connection to the same
    // engine, sharing the same coalescing memo and delta state machine.
    let direct = handle.connect();

    // A peer announcing the wrong protocol revision is turned away at
    // the door of the very same pump, with both versions named.
    let (skew_io, srv_io) = byte_pair(64);
    ph.add(Box::new(srv_io)).unwrap();
    let err = WireClient::binary_with_version(Box::new(skew_io), VERSION + 1)
        .err()
        .expect("skewed handshake must not connect");
    let msg = err.to_string();
    assert!(msg.contains(&format!("v{VERSION}")), "{msg}");
    assert!(msg.contains(&format!("v{}", VERSION + 1)), "{msg}");

    let figs = figures::all();
    let (_, _, roots) = build(&WorkloadConfig::default()).finish();
    for round in 0..=rounds {
        if round > 0 {
            let roots = roots.clone();
            handle
                .stop_event(move |img| {
                    ksim::tick::tick(img, &roots, round);
                })
                .unwrap();
        }
        for fig in &figs {
            let request = VCommand::VplotRequest {
                viewcl: fig.viewcl.to_string(),
            };
            binary.send(&request).unwrap();
            lines.send(&request).unwrap();
            direct.send(&request, SendMode::Blocking).unwrap();
            let over_binary = binary.recv().unwrap().expect("binary reply");
            let over_lines = lines.recv().unwrap().expect("lines reply");
            let wireless = direct.recv().expect("direct reply");
            assert_eq!(
                over_binary, over_lines,
                "{}: round {round}: binary and lines framing diverged",
                fig.id
            );
            assert_eq!(
                over_binary, wireless,
                "{}: round {round}: the wire changed the payload",
                fig.id
            );
            let expect = if round == 0 { "\"command\":\"vplot\"" } else { "\"command\":\"vplot_delta\"" };
            assert!(over_binary.contains(expect), "{}: round {round}", fig.id);
        }
    }

    drop(binary);
    drop(lines);
    direct.close();
    handle.shutdown();
    let stats = engine.join().unwrap();
    ph.shutdown();
    let wire = pump_thread.join().unwrap();
    wire.reconcile().expect("wire books balance");
    stats.reconcile().expect("engine books balance");

    let served = (figs.len() as u64) * (rounds + 1);
    assert_eq!(wire.accepted, 3, "{wire:?}");
    assert_eq!(wire.hello_binary, 2, "{wire:?}");
    assert_eq!(wire.hello_lines, 1, "{wire:?}");
    assert_eq!(wire.version_skews, 1, "{wire:?}");
    assert_eq!(wire.frames_in, 2 * served, "{wire:?}");
    assert_eq!(wire.frames_out, 2 * served, "{wire:?}");
    assert_eq!(wire.decode_errors, 0, "{wire:?}");
    // Three identical request streams: one walk per (figure, round),
    // the other two coalesce on the memo.
    assert_eq!(stats.requests, 3 * served, "{stats:?}");
    assert_eq!(stats.walks, served, "{stats:?}");
    assert_eq!(stats.coalesced, 2 * served, "{stats:?}");
}

#[test]
fn all_figures_byte_identical_across_framings_free_profile() {
    serve_profile(LatencyProfile::free(), 2);
}

#[test]
fn all_figures_byte_identical_across_framings_gdb_qemu_profile() {
    serve_profile(LatencyProfile::gdb_qemu(), 1);
}
