//! The vserve fast path for incremental sessions: an engine serving an
//! `.incremental()` session answers post-stop requests for panes the
//! stop's dirty set provably missed straight from their retained graphs
//! — the walk bill after a scheduler tick collapses versus a plain
//! cached engine serving the identical request sequence, while every
//! shipped graph stays byte-identical.

use std::sync::mpsc;
use std::thread;

use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::proto::VCommand;
use visualinux::{figures, Session};
use vserve::{Replica, SendMode, ServeConfig, ServeStats, Server};

fn attach(incremental: bool) -> Session {
    let builder = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .cache(CacheConfig::default());
    let builder = if incremental {
        builder.incremental()
    } else {
        builder
    };
    builder.attach().unwrap()
}

/// Serve every figure for `rounds` generations (one scheduler tick
/// between each) and return the final-round graphs plus the engine's
/// books.
fn serve_rounds(incremental: bool, rounds: u64) -> (Vec<String>, ServeStats) {
    let figs = figures::all();
    let (_, _, roots) = build(&WorkloadConfig::default()).finish();

    let (tx, rx) = mpsc::channel();
    let engine = thread::spawn(move || {
        let mut server = Server::new(attach(incremental), ServeConfig::default());
        tx.send(server.handle()).unwrap();
        server.run();
        server.stats()
    });
    let handle = rx.recv().unwrap();
    let conn = handle.connect();
    let mut replica = Replica::new();

    for round in 0..rounds {
        if round > 0 {
            let roots = roots.clone();
            handle
                .stop_event(move |img| {
                    ksim::tick::tick(img, &roots, round);
                })
                .expect("stop event");
        }
        for fig in &figs {
            conn.send(&VCommand::VplotRequest {
                viewcl: fig.viewcl.to_string(),
            }, SendMode::Blocking)
            .expect("send");
            replica
                .apply_line(&conn.recv().expect("reply"))
                .expect("apply");
        }
    }
    let graphs = figs
        .iter()
        .map(|fig| replica.graph(fig.viewcl).expect("mirrored").to_json())
        .collect();
    drop(conn);
    let stats = engine.join().expect("engine");
    stats.reconcile().expect("books balance");
    (graphs, stats)
}

#[test]
fn incremental_engine_collapses_the_post_stop_walk_bill() {
    let (g_plain, s_plain) = serve_rounds(false, 2);
    let (g_incr, s_incr) = serve_rounds(true, 2);
    // Byte-identical serving: every pane a client mirrors from the
    // incremental engine equals the plain engine's fresh re-walk.
    assert_eq!(g_plain, g_incr, "incremental serving drifted");

    // Both engines pay the same first-generation bill (touched-span
    // tracking reads nothing extra), so the difference is purely the
    // post-stop refresh. One tick dirties a handful of task_struct
    // bytes: the incremental engine must cut that refresh ≥ 5x.
    let (_, s_round0) = serve_rounds(false, 1);
    let post_plain = s_plain.walk_packets - s_round0.walk_packets;
    let post_incr = s_incr.walk_packets.saturating_sub(s_round0.walk_packets);
    assert!(
        post_plain >= 5 * post_incr.max(1),
        "post-stop walk packets: plain {post_plain}, incremental {post_incr} (< 5x cut)"
    );
    // The engine still walked every request (keeps are walks whose
    // refresh decision served the retained graph — not memo hits).
    assert_eq!(s_incr.plot_requests, s_plain.plot_requests);
    assert_eq!(s_incr.stops, 1);
}
