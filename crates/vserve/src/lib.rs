//! `vserve`: the concurrent pane server (paper §4.2, serving side).
//!
//! The paper's visualizer is a detached front-end fed by `vplot`/`vctrl`
//! messages on every stop event. This crate is the missing middle: a
//! transport-agnostic server that owns one attached
//! [`visualinux::Session`] (and therefore one bridge target behind the
//! snapshot cache) and services many clients speaking the
//! [`visualinux::proto::VCommand`] protocol concurrently.
//!
//! Architecture — see DESIGN.md §11:
//!
//! * **Threading.** The session is single-threaded by design; the engine
//!   ([`Server::run`]) runs on its owner thread. Clients hold `Send`
//!   [`Connection`] handles: bounded queues in both directions, so a
//!   full request queue blocks producers and a slow reader eventually
//!   stalls the engine instead of buffering without bound.
//! * **Coalescing.** The first `vplot_request` for a ViewCL program in a
//!   stop generation pays the bridge walk; identical requests from any
//!   client are answered from the memo until the next stop event
//!   ([`ServeStats::coalesced`]).
//! * **Delta sync.** Per `(client, source)` the server remembers the
//!   last shipped graph and sends a [`vgraph::GraphDelta`]
//!   (`vplot_delta`) when it is smaller than a full re-ship, falling
//!   back to `vplot` otherwise; [`Replica`] applies them client-side and
//!   answers `vack`.
//! * **Stop events.** [`ServerHandle::stop_event`] queues an image
//!   mutation; the engine applies it strictly ordered with requests,
//!   bumps the cache epoch and drops the extraction memo.
//! * **The wire.** See DESIGN.md §17: byte streams plug in through the
//!   nonblocking [`Io`] seam, a [`Framing`] turns bytes into `VCommand`
//!   payloads (newline-JSON [`LineFraming`], or length-prefixed
//!   [`BinaryFraming`] behind a versioned `VWHI`/`VWOK` handshake that
//!   fails loudly naming both versions on skew), and one evented
//!   [`WirePump`] thread multiplexes every connection — per-client
//!   fair budgeted admission, bounded out-buffers, and a stall cap so
//!   one dead-reader client cannot stall the engine or starve its
//!   siblings. Framing sits strictly below
//!   [`visualinux::proto::VCommand`], so replies are byte-identical
//!   across framings and `.vrec` determinism is untouched.

mod client;
mod evented;
pub mod framing;
mod queue;
mod server;
mod shared;
mod stats;
mod wire;

pub use client::{Replica, ReplicaEvent};
pub use evented::{ConnectRouter, PumpHandle, RoutedConn, SingleSession, WireConfig, WirePump};
pub use framing::{BinaryFraming, DecodeBuf, FrameError, Framing, LineFraming};
pub use queue::{Bounded, TryPush};
pub use server::{Connection, SendMode, ServeConfig, Server, ServerHandle};
pub use shared::{JournalEntry, Preload, SharedExtractions, SharedPlot};
pub use stats::{ServeStats, WireStats};
pub use wire::{byte_pair, ChanIo, Io, StreamIo, WireClient};

/// Errors on the client side of a serving session.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The server is shutting down (or already gone).
    Closed,
    /// The request queue is full right now (only from `try_send`).
    Backpressure,
    /// A delta did not fit the replica's current state.
    OutOfSync(String),
    /// The peer spoke something that is not the protocol.
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "server closed"),
            ServeError::Backpressure => write!(f, "request queue full"),
            ServeError::OutOfSync(m) => write!(f, "replica out of sync: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}
