//! The byte-stream seam under the framing layer, plus the blocking
//! client codec.
//!
//! [`Io`] is deliberately tiny: nonblocking `read`/`write` over raw
//! bytes, nothing else. Everything protocol-shaped lives a layer up in
//! [`crate::framing`]; everything scheduling-shaped lives in
//! [`crate::evented`]. Two implementations ship:
//!
//! * [`ChanIo`] — an in-process byte channel over the same [`Bounded`]
//!   queues the server uses everywhere, created in connected pairs by
//!   [`byte_pair`]. The test/bench counterpart of a socketpair: real
//!   chunked byte streams (frames split and coalesce arbitrarily), real
//!   backpressure, no kernel.
//! * [`StreamIo`] — adapts any `Read + Write` stream already switched to
//!   nonblocking mode (e.g. `TcpStream::set_nonblocking(true)`);
//!   `examples/serve_tcp.rs` binds it to real sockets.
//!
//! [`WireClient`] is the client-side codec: a blocking
//! send/receive-one-payload loop over an `Io` + [`Framing`], including
//! the binary hello/accept handshake. Server-side connections are
//! driven by the evented [`crate::WirePump`] instead — one poll thread,
//! many clients.

use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use visualinux::proto::{VCommand, VERSION};

use crate::framing::{
    hello_frame, parse_verdict, BinaryFraming, DecodeBuf, Framing, LineFraming, HANDSHAKE_LEN,
};
use crate::queue::{Bounded, TryPush};
use crate::ServeError;

/// A nonblocking byte stream. `read` returning `Ok(0)` means the peer
/// closed; either direction signals "nothing to do right now" with
/// [`io::ErrorKind::WouldBlock`], which callers must treat as retry —
/// never as failure. Implementations must not block.
pub trait Io: Send {
    /// Read available bytes into `buf`. `Ok(0)` = end of stream.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Write bytes from `buf`; may accept fewer than offered.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
}

/// Largest chunk a [`ChanIo`] write moves at once.
const CHAN_CHUNK: usize = 64 * 1024;

/// One end of an in-process byte channel (see [`byte_pair`]). Bytes
/// written on one end come out of the other's `read`, chunked
/// arbitrarily — exactly the re-assembly discipline a socket demands.
/// Dropping an end closes both directions (the peer reads EOF after a
/// drain, its writes fail).
pub struct ChanIo {
    rx: Arc<Bounded<Vec<u8>>>,
    tx: Arc<Bounded<Vec<u8>>>,
    /// Partially consumed inbound chunk.
    chunk: Vec<u8>,
    off: usize,
}

/// Two connected [`ChanIo`] ends; each direction buffers at most
/// `depth` chunks before exerting backpressure (writes WouldBlock).
pub fn byte_pair(depth: usize) -> (ChanIo, ChanIo) {
    let a = Arc::new(Bounded::new(depth));
    let b = Arc::new(Bounded::new(depth));
    (
        ChanIo {
            rx: a.clone(),
            tx: b.clone(),
            chunk: Vec::new(),
            off: 0,
        },
        ChanIo {
            rx: b,
            tx: a,
            chunk: Vec::new(),
            off: 0,
        },
    )
}

impl ChanIo {
    /// Close both directions now (also done on drop).
    pub fn close(&self) {
        self.rx.close();
        self.tx.close();
    }
}

impl Drop for ChanIo {
    fn drop(&mut self) {
        self.close();
    }
}

impl Io for ChanIo {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.off >= self.chunk.len() {
            match self.rx.try_pop() {
                Some(c) => {
                    self.chunk = c;
                    self.off = 0;
                }
                None if self.rx.is_closed() => return Ok(0),
                None => return Err(io::ErrorKind::WouldBlock.into()),
            }
        }
        let n = buf.len().min(self.chunk.len() - self.off);
        buf[..n].copy_from_slice(&self.chunk[self.off..self.off + n]);
        self.off += n;
        Ok(n)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let n = buf.len().min(CHAN_CHUNK);
        match self.tx.try_push(buf[..n].to_vec()) {
            Ok(()) => Ok(n),
            Err(TryPush::Full(_)) => Err(io::ErrorKind::WouldBlock.into()),
            Err(TryPush::Closed(_)) => Err(io::ErrorKind::BrokenPipe.into()),
        }
    }
}

/// [`Io`] over any `Read + Write` stream that is *already* in
/// nonblocking mode (`TcpStream::set_nonblocking(true)`); transient
/// `Interrupted` errors are retried internally.
pub struct StreamIo<S> {
    inner: S,
}

impl<S> StreamIo<S> {
    /// Wrap a nonblocking stream.
    pub fn new(inner: S) -> StreamIo<S> {
        StreamIo { inner }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: io::Read + io::Write + Send> Io for StreamIo<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                other => return other,
            }
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        loop {
            match self.inner.write(buf) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                other => return other,
            }
        }
    }
}

/// Spin-then-sleep backoff for the blocking client loops.
fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(Duration::from_micros(100));
    }
}

/// The blocking client-side codec: one [`Io`] + one [`Framing`], with
/// payload-at-a-time `send`/`recv`. Construct with [`WireClient::lines`]
/// (implicit newline-JSON, no handshake) or [`WireClient::binary`]
/// (hello/accept handshake pinning [`VERSION`] — a skew fails loudly
/// naming both versions before any payload moves).
pub struct WireClient {
    io: Box<dyn Io>,
    framing: Box<dyn Framing>,
    inbuf: DecodeBuf,
    outbuf: Vec<u8>,
}

impl WireClient {
    /// A newline-JSON client (the pre-handshake wire format).
    pub fn lines(io: Box<dyn Io>) -> WireClient {
        WireClient {
            io,
            framing: Box::new(LineFraming::default()),
            inbuf: DecodeBuf::new(),
            outbuf: Vec::new(),
        }
    }

    /// A binary-framed client: performs the hello/accept handshake at
    /// [`VERSION`] and fails with a both-versions-named protocol error
    /// on skew.
    pub fn binary(io: Box<dyn Io>) -> Result<WireClient, ServeError> {
        WireClient::binary_with_version(io, VERSION)
    }

    /// [`WireClient::binary`] announcing an arbitrary version — how the
    /// test suite manufactures version-skew handshakes.
    pub fn binary_with_version(io: Box<dyn Io>, version: u16) -> Result<WireClient, ServeError> {
        let mut c = WireClient {
            io,
            framing: Box::new(BinaryFraming::default()),
            inbuf: DecodeBuf::new(),
            outbuf: Vec::new(),
        };
        c.outbuf.extend_from_slice(&hello_frame(version));
        c.flush()?;
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut spins = 0;
        loop {
            match parse_verdict(&mut c.inbuf, version) {
                Ok(Some(())) => return Ok(c),
                Ok(None) => {}
                Err(e) => return Err(ServeError::Protocol(e.to_string())),
            }
            if !c.fill(&mut spins)? && c.inbuf.len() < HANDSHAKE_LEN {
                return Err(ServeError::Protocol(
                    "stream closed during the wire handshake".into(),
                ));
            }
            if Instant::now() >= deadline {
                return Err(ServeError::Protocol("wire handshake timed out".into()));
            }
        }
    }

    /// The active framing's name (`"lines"` or `"binary"`).
    pub fn framing_name(&self) -> &'static str {
        self.framing.name()
    }

    /// Send one serialized payload (blocking until the bytes are out).
    pub fn send_payload(&mut self, payload: &str) -> Result<(), ServeError> {
        self.framing.encode(payload, &mut self.outbuf);
        self.flush()
    }

    /// Send one command.
    pub fn send(&mut self, cmd: &VCommand) -> Result<(), ServeError> {
        self.send_payload(&cmd.to_json())
    }

    /// Receive the next payload; blocks. `Ok(None)` on clean end of
    /// stream; a mid-frame close or framing error is a positioned
    /// protocol error.
    pub fn recv(&mut self) -> Result<Option<String>, ServeError> {
        self.recv_deadline(Instant::now() + Duration::from_secs(60))
    }

    /// [`WireClient::recv`] with an explicit deadline.
    pub fn recv_deadline(&mut self, deadline: Instant) -> Result<Option<String>, ServeError> {
        let mut spins = 0;
        loop {
            match self.framing.decode(&mut self.inbuf) {
                Ok(Some(p)) => return Ok(Some(p)),
                Ok(None) => {}
                Err(e) => return Err(ServeError::Protocol(e.to_string())),
            }
            if !self.fill(&mut spins)? {
                // EOF: a clean frame boundary ends the stream gracefully.
                return match self.framing.finish(&self.inbuf) {
                    Ok(()) => Ok(None),
                    Err(e) => Err(ServeError::Protocol(e.to_string())),
                };
            }
            if Instant::now() >= deadline {
                return Err(ServeError::Protocol("recv timed out".into()));
            }
        }
    }

    /// Read once into the decode buffer. `Ok(false)` = end of stream;
    /// WouldBlock backs off and reports `Ok(true)` with nothing read.
    fn fill(&mut self, spins: &mut u32) -> Result<bool, ServeError> {
        let mut chunk = [0u8; 16 * 1024];
        match self.io.read(&mut chunk) {
            Ok(0) => Ok(false),
            Ok(n) => {
                self.inbuf.extend(&chunk[..n]);
                *spins = 0;
                Ok(true)
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                backoff(spins);
                Ok(true)
            }
            Err(e) => Err(ServeError::Protocol(format!("wire read failed: {e}"))),
        }
    }

    /// Push the whole out-buffer to the stream, blocking with backoff.
    fn flush(&mut self) -> Result<(), ServeError> {
        let mut spins = 0;
        let mut done = 0;
        while done < self.outbuf.len() {
            match self.io.write(&self.outbuf[done..]) {
                Ok(0) => return Err(ServeError::Closed),
                Ok(n) => {
                    done += n;
                    spins = 0;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => backoff(&mut spins),
                Err(e) if e.kind() == io::ErrorKind::BrokenPipe => return Err(ServeError::Closed),
                Err(e) => return Err(ServeError::Protocol(format!("wire write failed: {e}"))),
            }
        }
        self.outbuf.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_pair_moves_chunked_bytes_both_ways() {
        let (mut a, mut b) = byte_pair(4);
        assert_eq!(a.write(b"hello").unwrap(), 5);
        let mut buf = [0u8; 2];
        assert_eq!(b.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf, b"he");
        let mut rest = [0u8; 8];
        assert_eq!(b.read(&mut rest).unwrap(), 3);
        assert_eq!(&rest[..3], b"llo");
        assert!(matches!(
            b.read(&mut rest),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock
        ));
        b.write(b"pong").unwrap();
        assert_eq!(a.read(&mut rest).unwrap(), 4);
    }

    #[test]
    fn byte_pair_close_gives_eof_after_drain_and_fails_writes() {
        let (mut a, mut b) = byte_pair(4);
        a.write(b"tail").unwrap();
        drop(a);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 4, "queued bytes still drain");
        assert_eq!(b.read(&mut buf).unwrap(), 0, "then EOF");
        assert!(matches!(
            b.write(b"late"),
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe
        ));
    }

    #[test]
    fn byte_pair_backpressures_with_wouldblock() {
        let (mut a, _b) = byte_pair(1);
        assert!(a.write(b"x").is_ok());
        assert!(matches!(
            a.write(b"y"),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock
        ));
    }

    #[test]
    fn wire_clients_handshake_and_exchange_payloads_over_a_pair() {
        let (a, b) = byte_pair(64);
        // Server half of the handshake, scripted by hand.
        let server = std::thread::spawn(move || {
            let mut io: Box<dyn Io> = Box::new(b);
            let mut buf = DecodeBuf::new();
            let mut chunk = [0u8; 1024];
            let mut spins = 0;
            let theirs = loop {
                if let Some(v) = crate::framing::parse_hello(&mut buf).unwrap() {
                    break v;
                }
                match io.read(&mut chunk) {
                    Ok(n) => buf.extend(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => backoff(&mut spins),
                    Err(e) => panic!("{e}"),
                }
            };
            let write_all = |io: &mut Box<dyn Io>, out: &[u8]| {
                let mut spins = 0;
                let mut done = 0;
                while done < out.len() {
                    match io.write(&out[done..]) {
                        Ok(n) => done += n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => backoff(&mut spins),
                        Err(e) => panic!("{e}"),
                    }
                }
            };
            let verdict = crate::framing::negotiate_server(theirs).unwrap();
            write_all(&mut io, &verdict);
            let f = BinaryFraming::default();
            // Echo one frame back.
            let payload = loop {
                if let Some(p) = f.decode(&mut buf).unwrap() {
                    break p;
                }
                match io.read(&mut chunk) {
                    Ok(n) => buf.extend(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => backoff(&mut spins),
                    Err(e) => panic!("{e}"),
                }
            };
            let mut out = Vec::new();
            f.encode(&format!("echo:{payload}"), &mut out);
            write_all(&mut io, &out);
        });
        let mut c = WireClient::binary(Box::new(a)).unwrap();
        assert_eq!(c.framing_name(), "binary");
        c.send_payload("ping").unwrap();
        assert_eq!(c.recv().unwrap().as_deref(), Some("echo:ping"));
        server.join().unwrap();
    }
}
