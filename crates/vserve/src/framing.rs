//! Framing: how protocol payloads become bytes on a stream.
//!
//! The wire layer is split into two orthogonal seams (DESIGN.md §17):
//! [`crate::wire::Io`] moves raw bytes, and a [`Framing`] cuts the byte
//! stream into payload frames. Two framings ship:
//!
//! * [`LineFraming`] — the historical newline-delimited JSON. No
//!   handshake; a connection whose first byte is `{` (or whitespace)
//!   speaks it implicitly.
//! * [`BinaryFraming`] — a `u32` little-endian length prefix per frame,
//!   preceded by a fixed 8-byte hello/accept handshake that negotiates
//!   and *pins* [`visualinux::proto::VERSION`]. A version mismatch is
//!   answered with a reject frame and surfaces as
//!   [`FrameError::VersionSkew`], naming both versions — never a silent
//!   misparse.
//!
//! Framing sits strictly *below* the `VCommand` layer: a frame carries
//! an opaque UTF-8 payload, so `.vrec` captures (which record target
//! wire packets, not client frames) are byte-identical no matter which
//! framing served them.
//!
//! Decoding is incremental and panic-free: bytes accumulate in a
//! [`DecodeBuf`] that tracks absolute stream positions, `decode` yields
//! complete frames (or `None` for "need more bytes"), and every failure
//! — truncated length prefix, oversized declared length, mid-frame
//! close, garbage bytes — is a positioned [`FrameError`], which the
//! malformed-frame suite (`tests/wire_fuzz.rs`) pins.

use std::fmt;

use visualinux::proto::VERSION;

/// Hard ceiling a [`BinaryFraming`] will declare or accept per frame.
pub const DEFAULT_MAX_FRAME: u32 = 64 << 20;
/// Hard ceiling a [`LineFraming`] will buffer while hunting a newline.
pub const DEFAULT_MAX_LINE: usize = 64 << 20;

/// Client hello: `VWHI` + u16-LE version + u16-LE reserved (zero).
pub const HELLO_MAGIC: [u8; 4] = *b"VWHI";
/// Server accept: `VWOK` + the pinned u16-LE version + reserved.
pub const ACCEPT_MAGIC: [u8; 4] = *b"VWOK";
/// Server reject: `VWNO` + the server's u16-LE version + the client's.
pub const REJECT_MAGIC: [u8; 4] = *b"VWNO";
/// Every handshake frame is exactly this long.
pub const HANDSHAKE_LEN: usize = 8;

/// A framing failure. Every variant carries enough to say *where* the
/// stream went wrong; none of them is ever a panic or a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A declared frame length exceeds the configured ceiling.
    Oversize {
        /// Absolute stream offset of the offending length prefix.
        at: u64,
        /// What the prefix declared.
        declared: u64,
        /// The ceiling it broke.
        max: u64,
    },
    /// Bytes that cannot be part of a valid frame (non-UTF-8 payloads,
    /// malformed handshake magic).
    Garbage {
        /// Absolute stream offset of the first offending byte.
        at: u64,
        /// What was wrong with them.
        what: String,
    },
    /// The stream closed mid-frame: a partial length prefix, a payload
    /// shorter than its prefix declared, or an unterminated line.
    Truncated {
        /// Absolute stream offset where the incomplete frame began.
        at: u64,
        /// Bytes of it that did arrive.
        have: usize,
        /// Bytes the frame needed to complete (0 = unknowable, e.g. an
        /// unterminated line).
        need: usize,
    },
    /// The hello/accept handshake found the two ends speaking different
    /// protocol revisions. Both are named; nothing was negotiated.
    VersionSkew {
        /// The local end's [`VERSION`].
        ours: u16,
        /// What the peer announced.
        theirs: u16,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversize { at, declared, max } => write!(
                f,
                "at byte {at}: declared frame length {declared} exceeds the {max}-byte ceiling"
            ),
            FrameError::Garbage { at, what } => write!(f, "at byte {at}: {what}"),
            FrameError::Truncated { at, have, need } => {
                if *need == 0 {
                    write!(f, "at byte {at}: stream closed mid-frame ({have} bytes in)")
                } else {
                    write!(
                        f,
                        "at byte {at}: stream closed mid-frame ({have} of {need} bytes)"
                    )
                }
            }
            FrameError::VersionSkew { ours, theirs } => write!(
                f,
                "wire protocol version skew: we speak v{ours}, the peer speaks v{theirs}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// An incremental decode buffer: bytes in, frames out, with absolute
/// stream positions for diagnostics. Consumed prefixes are compacted
/// opportunistically so a long-lived connection does not grow it.
#[derive(Default)]
pub struct DecodeBuf {
    buf: Vec<u8>,
    /// Consumed prefix within `buf`.
    start: usize,
    /// Absolute stream offset of `buf[start]`.
    pos: u64,
}

impl DecodeBuf {
    /// An empty buffer at stream offset zero.
    pub fn new() -> DecodeBuf {
        DecodeBuf::default()
    }

    /// Append bytes read from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.start > 0 && (self.start >= 4096 || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether nothing is waiting to be decoded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Absolute stream offset of the next unconsumed byte.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// The next unconsumed byte, if any — what the server sniffs to
    /// pick a connection's framing ([`sniff`]).
    pub fn first_byte(&self) -> Option<u8> {
        self.peek().first().copied()
    }

    fn peek(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len());
        self.start += n;
        self.pos += n as u64;
    }
}

/// One way of cutting a byte stream into payload frames. Object-safe so
/// a connection can carry whichever framing its handshake picked.
pub trait Framing: Send {
    /// Append one encoded frame carrying `payload` to `out`.
    fn encode(&self, payload: &str, out: &mut Vec<u8>);

    /// Decode one complete frame off the front of `buf`, consuming it.
    /// `Ok(None)` means the frame is not complete yet — feed more bytes.
    /// Errors are positioned and terminal for the stream.
    fn decode(&self, buf: &mut DecodeBuf) -> Result<Option<String>, FrameError>;

    /// End-of-stream check: the peer closed; is the residue a clean
    /// frame boundary? A mid-frame close is a positioned
    /// [`FrameError::Truncated`].
    fn finish(&self, buf: &DecodeBuf) -> Result<(), FrameError>;

    /// The framing's name (diagnostics, stats).
    fn name(&self) -> &'static str;
}

/// Newline-delimited JSON: one payload per `\n`-terminated line, CR
/// stripped, empty lines skipped. The pre-handshake wire format, kept
/// as a first-class [`Framing`].
pub struct LineFraming {
    max_line: usize,
}

impl Default for LineFraming {
    fn default() -> Self {
        LineFraming {
            max_line: DEFAULT_MAX_LINE,
        }
    }
}

impl LineFraming {
    /// Line framing with an explicit line-length ceiling.
    pub fn with_max_line(max_line: usize) -> LineFraming {
        LineFraming { max_line }
    }
}

impl Framing for LineFraming {
    fn encode(&self, payload: &str, out: &mut Vec<u8>) {
        debug_assert!(!payload.contains('\n'), "payload would split the frame");
        out.extend_from_slice(payload.as_bytes());
        out.push(b'\n');
    }

    fn decode(&self, buf: &mut DecodeBuf) -> Result<Option<String>, FrameError> {
        loop {
            let bytes = buf.peek();
            let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
                if bytes.len() > self.max_line {
                    return Err(FrameError::Oversize {
                        at: buf.position(),
                        declared: bytes.len() as u64,
                        max: self.max_line as u64,
                    });
                }
                return Ok(None);
            };
            let at = buf.position();
            let line = &bytes[..nl];
            let line = line.strip_suffix(b"\r").unwrap_or(line);
            if line.is_empty() {
                buf.consume(nl + 1);
                continue;
            }
            let payload = std::str::from_utf8(line)
                .map_err(|e| FrameError::Garbage {
                    at: at + e.valid_up_to() as u64,
                    what: "line is not valid UTF-8".into(),
                })?
                .to_string();
            buf.consume(nl + 1);
            return Ok(Some(payload));
        }
    }

    fn finish(&self, buf: &DecodeBuf) -> Result<(), FrameError> {
        let residue = buf.peek().iter().filter(|&&b| b != b'\r').count();
        if residue == 0 {
            return Ok(());
        }
        Err(FrameError::Truncated {
            at: buf.position(),
            have: buf.len(),
            need: 0,
        })
    }

    fn name(&self) -> &'static str {
        "lines"
    }
}

/// Length-prefixed binary frames: `u32`-LE payload length, then that
/// many bytes of UTF-8 payload. Preceded on the wire by the
/// hello/accept handshake (see module docs); the framing itself is
/// version-agnostic — the negotiated version pins the *payload*
/// protocol, and the prefix makes frame boundaries explicit so a
/// corrupted stream fails at a named byte offset instead of resyncing
/// on luck.
pub struct BinaryFraming {
    max_frame: u32,
}

impl Default for BinaryFraming {
    fn default() -> Self {
        BinaryFraming {
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

impl BinaryFraming {
    /// Binary framing with an explicit per-frame ceiling.
    pub fn with_max_frame(max_frame: u32) -> BinaryFraming {
        BinaryFraming { max_frame }
    }
}

impl Framing for BinaryFraming {
    fn encode(&self, payload: &str, out: &mut Vec<u8>) {
        debug_assert!(payload.len() <= self.max_frame as usize);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload.as_bytes());
    }

    fn decode(&self, buf: &mut DecodeBuf) -> Result<Option<String>, FrameError> {
        let bytes = buf.peek();
        if bytes.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
        if declared > self.max_frame {
            return Err(FrameError::Oversize {
                at: buf.position(),
                declared: declared as u64,
                max: self.max_frame as u64,
            });
        }
        let total = 4 + declared as usize;
        if bytes.len() < total {
            return Ok(None);
        }
        let at = buf.position();
        let payload = std::str::from_utf8(&bytes[4..total])
            .map_err(|e| FrameError::Garbage {
                at: at + 4 + e.valid_up_to() as u64,
                what: "frame payload is not valid UTF-8".into(),
            })?
            .to_string();
        buf.consume(total);
        Ok(Some(payload))
    }

    fn finish(&self, buf: &DecodeBuf) -> Result<(), FrameError> {
        if buf.is_empty() {
            return Ok(());
        }
        let bytes = buf.peek();
        let need = if bytes.len() < 4 {
            0 // length prefix itself is incomplete
        } else {
            4 + u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize
        };
        Err(FrameError::Truncated {
            at: buf.position(),
            have: buf.len(),
            need,
        })
    }

    fn name(&self) -> &'static str {
        "binary"
    }
}

/// What the first byte of a fresh connection announces. Binary hello
/// frames open with `V` (the magic), which no JSON line can (those open
/// with `{` or whitespace) — so one listening endpoint serves both
/// framings without configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sniff {
    /// A binary hello is on its way: run the handshake.
    Binary,
    /// Implicit newline-JSON (no handshake).
    Lines,
}

/// Classify a connection by its first byte.
pub fn sniff(first: u8) -> Sniff {
    if first == HELLO_MAGIC[0] {
        Sniff::Binary
    } else {
        Sniff::Lines
    }
}

/// The client hello frame announcing `version`.
pub fn hello_frame(version: u16) -> [u8; HANDSHAKE_LEN] {
    handshake_frame(HELLO_MAGIC, version, 0)
}

/// The server accept frame pinning `version`.
pub fn accept_frame(version: u16) -> [u8; HANDSHAKE_LEN] {
    handshake_frame(ACCEPT_MAGIC, version, 0)
}

/// The server reject frame, naming its own version and echoing the
/// client's so *both* ends can report the skew by name.
pub fn reject_frame(ours: u16, theirs: u16) -> [u8; HANDSHAKE_LEN] {
    handshake_frame(REJECT_MAGIC, ours, theirs)
}

fn handshake_frame(magic: [u8; 4], a: u16, b: u16) -> [u8; HANDSHAKE_LEN] {
    let mut f = [0u8; HANDSHAKE_LEN];
    f[..4].copy_from_slice(&magic);
    f[4..6].copy_from_slice(&a.to_le_bytes());
    f[6..8].copy_from_slice(&b.to_le_bytes());
    f
}

/// Server side: parse a client hello off the front of `buf`.
/// `Ok(None)` = incomplete; `Ok(Some(version))` = the client's
/// announced version (the *caller* decides accept/reject — see
/// [`negotiate_server`]).
pub fn parse_hello(buf: &mut DecodeBuf) -> Result<Option<u16>, FrameError> {
    let bytes = buf.peek();
    if bytes.is_empty() {
        return Ok(None);
    }
    let have = bytes.len().min(4);
    if bytes[..have] != HELLO_MAGIC[..have] {
        return Err(FrameError::Garbage {
            at: buf.position(),
            what: format!(
                "expected a VWHI hello frame, got {:?}",
                &bytes[..bytes.len().min(8)]
            ),
        });
    }
    if bytes.len() < HANDSHAKE_LEN {
        return Ok(None);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    buf.consume(HANDSHAKE_LEN);
    Ok(Some(version))
}

/// Server side: check the client's announced version against [`VERSION`]
/// and produce the verdict frame to send back. `Err` carries the skew
/// (after the caller ships the reject frame, the connection is done).
pub fn negotiate_server(theirs: u16) -> Result<[u8; HANDSHAKE_LEN], (FrameError, [u8; HANDSHAKE_LEN])> {
    if theirs == VERSION {
        Ok(accept_frame(VERSION))
    } else {
        Err((
            FrameError::VersionSkew {
                ours: VERSION,
                theirs,
            },
            reject_frame(VERSION, theirs),
        ))
    }
}

/// Client side: parse the server's accept/reject verdict. `Ok(None)` =
/// incomplete; `Ok(Some(()))` = accepted at `ours`;
/// [`FrameError::VersionSkew`] on a reject (naming both versions) or on
/// an accept for a version we did not offer.
pub fn parse_verdict(buf: &mut DecodeBuf, ours: u16) -> Result<Option<()>, FrameError> {
    let bytes = buf.peek();
    if bytes.len() < HANDSHAKE_LEN {
        return Ok(None);
    }
    let magic: [u8; 4] = bytes[..4].try_into().expect("4 bytes");
    let a = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    match magic {
        ACCEPT_MAGIC if a == ours => {
            buf.consume(HANDSHAKE_LEN);
            Ok(Some(()))
        }
        ACCEPT_MAGIC => Err(FrameError::VersionSkew { ours, theirs: a }),
        REJECT_MAGIC => Err(FrameError::VersionSkew { ours, theirs: a }),
        _ => Err(FrameError::Garbage {
            at: buf.position(),
            what: format!("expected a VWOK/VWNO verdict frame, got {magic:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(f: &dyn Framing, bytes: &[u8]) -> Result<Vec<String>, FrameError> {
        let mut buf = DecodeBuf::new();
        buf.extend(bytes);
        let mut out = Vec::new();
        while let Some(p) = f.decode(&mut buf)? {
            out.push(p);
        }
        f.finish(&buf)?;
        Ok(out)
    }

    #[test]
    fn line_framing_round_trips_and_skips_blanks() {
        let f = LineFraming::default();
        let mut wire = Vec::new();
        f.encode("alpha", &mut wire);
        wire.extend_from_slice(b"\r\n");
        f.encode("beta", &mut wire);
        assert_eq!(feed(&f, &wire).unwrap(), ["alpha", "beta"]);
    }

    #[test]
    fn binary_framing_round_trips_across_split_reads() {
        let f = BinaryFraming::default();
        let mut wire = Vec::new();
        f.encode("hello", &mut wire);
        f.encode("", &mut wire);
        f.encode(&"x".repeat(1000), &mut wire);
        // Feed one byte at a time: decode must never mis-frame.
        let mut buf = DecodeBuf::new();
        let mut out = Vec::new();
        for b in wire {
            buf.extend(&[b]);
            while let Some(p) = f.decode(&mut buf).unwrap() {
                out.push(p);
            }
        }
        f.finish(&buf).unwrap();
        assert_eq!(out, ["hello".to_string(), String::new(), "x".repeat(1000)]);
    }

    #[test]
    fn oversize_declared_length_errors_with_position() {
        let f = BinaryFraming::with_max_frame(16);
        let mut buf = DecodeBuf::new();
        buf.extend(b"prefix-consumed\n");
        let skip = buf.len();
        buf.consume(skip);
        buf.extend(&1000u32.to_le_bytes());
        let err = f.decode(&mut buf).unwrap_err();
        assert_eq!(
            err,
            FrameError::Oversize {
                at: skip as u64,
                declared: 1000,
                max: 16
            }
        );
        assert!(err.to_string().contains("at byte 16"), "{err}");
    }

    #[test]
    fn mid_frame_close_is_a_positioned_truncation() {
        let f = BinaryFraming::default();
        let mut buf = DecodeBuf::new();
        buf.extend(&10u32.to_le_bytes());
        buf.extend(b"abc"); // 3 of 10 payload bytes
        assert_eq!(f.decode(&mut buf).unwrap(), None);
        let err = f.finish(&buf).unwrap_err();
        assert_eq!(
            err,
            FrameError::Truncated {
                at: 0,
                have: 7,
                need: 14
            }
        );
        // A truncated length prefix alone is also reported.
        let mut buf = DecodeBuf::new();
        buf.extend(&[0x05, 0x00]);
        assert!(matches!(
            f.finish(&buf),
            Err(FrameError::Truncated { have: 2, .. })
        ));
    }

    #[test]
    fn non_utf8_payload_is_garbage_at_the_bad_byte() {
        let f = BinaryFraming::default();
        let mut buf = DecodeBuf::new();
        buf.extend(&4u32.to_le_bytes());
        buf.extend(&[b'o', b'k', 0xff, 0xfe]);
        let err = f.decode(&mut buf).unwrap_err();
        assert_eq!(
            err,
            FrameError::Garbage {
                at: 6,
                what: "frame payload is not valid UTF-8".into()
            }
        );
    }

    #[test]
    fn handshake_accepts_matching_versions() {
        let mut buf = DecodeBuf::new();
        buf.extend(&hello_frame(VERSION));
        let theirs = parse_hello(&mut buf).unwrap().unwrap();
        assert_eq!(theirs, VERSION);
        let verdict = negotiate_server(theirs).unwrap();
        let mut cbuf = DecodeBuf::new();
        cbuf.extend(&verdict);
        assert_eq!(parse_verdict(&mut cbuf, VERSION).unwrap(), Some(()));
    }

    #[test]
    fn handshake_skew_names_both_versions_on_both_ends() {
        let (err, reject) = negotiate_server(9999).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(&format!("v{VERSION}")), "{msg}");
        assert!(msg.contains("v9999"), "{msg}");
        // The client decodes the reject into the mirrored skew.
        let mut buf = DecodeBuf::new();
        buf.extend(&reject);
        let err = parse_verdict(&mut buf, 9999).unwrap_err();
        assert_eq!(
            err,
            FrameError::VersionSkew {
                ours: 9999,
                theirs: VERSION
            }
        );
    }

    #[test]
    fn sniff_separates_hello_from_json() {
        assert_eq!(sniff(b'V'), Sniff::Binary);
        assert_eq!(sniff(b'{'), Sniff::Lines);
        assert_eq!(sniff(b' '), Sniff::Lines);
    }
}
