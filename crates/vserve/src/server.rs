//! The pane-server engine: one `Session`, many clients.
//!
//! [`visualinux::Session`] is deliberately single-threaded (it holds
//! `Rc`/`RefCell` state for tracing), so the engine runs on the thread
//! that owns the [`Server`] and everything that crosses threads is a
//! queue handle: clients hold a [`Connection`] (Send) whose `send` pushes
//! into the shared bounded request queue and whose `recv` pops a
//! per-client bounded outbox. Both directions exert real backpressure —
//! a full request queue blocks producers, a slow client eventually
//! blocks the engine on that client's outbox instead of buffering
//! without bound.
//!
//! Identical concurrent extraction requests coalesce: the first
//! `vplot_request` for a ViewCL program in a given stop pays the bridge
//! walk, every further one (from any client, until the next stop event)
//! is served from the memoized result. Per `(client, source)` the server
//! remembers the last graph it shipped and sends a [`vgraph::diff`]
//! delta when that is smaller than re-shipping the plot.
//!
//! A fleet (`vfleet`) extends the memo across engines: plug a
//! [`SharedExtractions`] store in with [`Server::share_extractions`] and
//! the engine consults it before walking, publishes what it walks, and
//! keeps a lag journal of shared-served results so a replay session's
//! strict tape order survives the skipped walks (re-enacted on the next
//! local walk, or by a respawned engine via [`Server::preload`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ksim::image::KernelImage;
use vbridge::BackendKind;
use visualinux::proto::{VCommand, VResponse};
use visualinux::{PlotStats, Session};
use vtrace::SpanKind;

use crate::queue::{Bounded, TryPush};
use crate::shared::{JournalEntry, Preload, SharedExtractions, SharedPlot};
use crate::stats::ServeStats;
use crate::ServeError;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Capacity of the shared request queue.
    pub request_queue: usize,
    /// Capacity of each client's outbound queue.
    pub client_queue: usize,
    /// When true, [`Server::run`] returns after the last client
    /// disconnects (instead of waiting for an explicit shutdown).
    pub exit_when_idle: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            request_queue: 64,
            client_queue: 16,
            exit_when_idle: true,
        }
    }
}

/// A unit of work for the engine.
enum Request {
    /// A protocol line from a client.
    Cmd { client: u64, line: String },
    /// The debugger stopped again: mutate the image, invalidate caches.
    /// `generation` is the fleet's stop-generation key; `None` means
    /// "increment" (standalone servers).
    Stop {
        generation: Option<u64>,
        mutate: Box<dyn FnOnce(&mut KernelImage) + Send>,
    },
    /// A client departed. The marker trails everything that client
    /// queued, so the engine answers those requests *before* dropping
    /// the outbox — late-queued requests are drained, not lost.
    Gone(u64),
}

struct ClientEntry {
    outbox: Arc<Bounded<String>>,
    /// Departed; entry lives on until the engine processes the trailing
    /// [`Request::Gone`] marker (or finishes its final drain).
    gone: bool,
}

/// State shared between the engine thread and all client threads.
struct Shared {
    reqq: Bounded<Request>,
    clients: Mutex<HashMap<u64, ClientEntry>>,
    next_client: AtomicU64,
    active: AtomicUsize,
    shutting_down: AtomicBool,
    client_queue: usize,
    exit_when_idle: bool,
}

impl Shared {
    /// Called when a client disconnects; the last one out closes the
    /// request queue so an idle-exit engine can return.
    fn client_gone(&self, id: u64) {
        {
            let mut clients = self.clients.lock().unwrap();
            match clients.get_mut(&id) {
                Some(e) if !e.gone => e.gone = true,
                _ => return, // unknown, or already departing
            }
        }
        // Ordered departure: a marker queued *behind* the client's own
        // requests lets the engine answer them before the outbox goes.
        // Full queue: blocking here (inside close()/drop) could deadlock
        // against an engine stalled on this very client's outbox — fall
        // back to the immediate drop. Closed queue: the engine's final
        // drain still owns the entry and closes every outbox when done,
        // so already-queued requests are answered, not silently lost.
        match self.reqq.try_push(Request::Gone(id)) {
            Ok(()) | Err(TryPush::Closed(_)) => {}
            Err(TryPush::Full(_)) => {
                if let Some(e) = self.clients.lock().unwrap().remove(&id) {
                    e.outbox.close();
                }
            }
        }
        if self.active.fetch_sub(1, Ordering::SeqCst) == 1 && self.exit_when_idle {
            self.reqq.close();
        }
    }
}

/// A client's endpoint. `Send`: hand it to the thread that talks to the
/// server. Dropping it disconnects.
pub struct Connection {
    id: u64,
    shared: Arc<Shared>,
    outbox: Arc<Bounded<String>>,
}

/// How a [`Connection::send`] behaves against a full request queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SendMode {
    /// Wait for space: backpressure throttles the producer. The right
    /// mode for dedicated client threads.
    #[default]
    Blocking,
    /// Fail fast with [`ServeError::Backpressure`]. The only mode a
    /// shared poll thread (the wire pump) may use — it must never park
    /// on one client's behalf.
    NonBlocking,
}

impl Connection {
    /// Submit a command. The single submission entry point: `mode` picks
    /// between blocking backpressure and a fast
    /// [`ServeError::Backpressure`] failure; either way the call fails
    /// with [`ServeError::Closed`] once the server is shutting down.
    pub fn send(&self, cmd: &VCommand, mode: SendMode) -> Result<(), ServeError> {
        self.send_frame(cmd.to_json(), mode)
    }

    /// Submit an already-serialized protocol frame payload — what a wire
    /// pump forwards straight off its decoder without re-parsing.
    pub fn send_frame(&self, payload: String, mode: SendMode) -> Result<(), ServeError> {
        let req = Request::Cmd {
            client: self.id,
            line: payload,
        };
        match mode {
            SendMode::Blocking => self.shared.reqq.push(req).map_err(|_| ServeError::Closed),
            SendMode::NonBlocking => self.shared.reqq.try_push(req).map_err(|e| match e {
                TryPush::Full(_) => ServeError::Backpressure,
                TryPush::Closed(_) => ServeError::Closed,
            }),
        }
    }

    /// Submit a raw protocol line.
    #[deprecated(note = "use `send_frame(line, SendMode::Blocking)`; removed next release")]
    pub fn send_line(&self, line: String) -> Result<(), ServeError> {
        self.send_frame(line, SendMode::Blocking)
    }

    /// Non-blocking submit; surfaces a full queue as
    /// [`ServeError::Backpressure`].
    #[deprecated(note = "use `send(cmd, SendMode::NonBlocking)`; removed next release")]
    pub fn try_send(&self, cmd: &VCommand) -> Result<(), ServeError> {
        self.send(cmd, SendMode::NonBlocking)
    }

    /// Next reply line; blocks. `None` once the server closed this
    /// client's stream and everything queued has been read.
    pub fn recv(&self) -> Option<String> {
        self.outbox.pop()
    }

    /// Non-blocking variant of [`Connection::recv`].
    pub fn try_recv(&self) -> Option<String> {
        self.outbox.try_pop()
    }

    /// Whether the server has closed this client's reply stream
    /// (shutdown or engine exit). Queued replies may still be readable.
    pub fn is_closed(&self) -> bool {
        self.outbox.is_closed()
    }

    /// This client's id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Capacity of this client's reply outbox. A wire pump uses it as
    /// the admission window: with at most `capacity()` frames in flight
    /// per client, the engine's reply push can never block on this
    /// client's outbox.
    pub fn capacity(&self) -> usize {
        self.outbox.capacity()
    }

    /// Disconnect. Idempotent; also called on drop. Replies to requests
    /// already queued stay readable via [`Connection::recv`].
    pub fn close(&self) {
        self.shared.client_gone(self.id);
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.close();
    }
}

/// A clonable, `Send` handle for connecting clients and controlling the
/// server from other threads.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Register a new client and return its endpoint.
    pub fn connect(&self) -> Connection {
        let id = self.shared.next_client.fetch_add(1, Ordering::SeqCst);
        let outbox = Arc::new(Bounded::new(self.shared.client_queue));
        self.shared.clients.lock().unwrap().insert(
            id,
            ClientEntry {
                outbox: outbox.clone(),
                gone: false,
            },
        );
        self.shared.active.fetch_add(1, Ordering::SeqCst);
        Connection {
            id,
            shared: self.shared.clone(),
            outbox,
        }
    }

    /// Enqueue a stop event: the engine applies `mutate` to the image,
    /// bumps the cache epoch, and invalidates its extraction memo, all
    /// strictly ordered with the surrounding requests.
    pub fn stop_event(
        &self,
        mutate: impl FnOnce(&mut KernelImage) + Send + 'static,
    ) -> Result<(), ServeError> {
        self.stop_with(None, mutate)
    }

    /// [`ServerHandle::stop_event`] with an explicit stop-generation key.
    /// A fleet chains tick arguments into the key so engines only share
    /// cached extractions when their mutation histories are identical.
    pub fn stop_event_keyed(
        &self,
        generation: u64,
        mutate: impl FnOnce(&mut KernelImage) + Send + 'static,
    ) -> Result<(), ServeError> {
        self.stop_with(Some(generation), mutate)
    }

    fn stop_with(
        &self,
        generation: Option<u64>,
        mutate: impl FnOnce(&mut KernelImage) + Send + 'static,
    ) -> Result<(), ServeError> {
        self.shared
            .reqq
            .push(Request::Stop {
                generation,
                mutate: Box::new(mutate),
            })
            .map_err(|_| ServeError::Closed)
    }

    /// Begin graceful shutdown: no new requests are accepted; the engine
    /// finishes what is queued, answers it, then closes every client
    /// stream and returns from [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.reqq.close();
    }
}

/// Per-(client, source) delta-sync state.
struct SyncState {
    /// Sequence of the last payload shipped (0 = the full ship).
    seq: u64,
    /// The graph the client holds after applying that payload. Shared
    /// with the memo entry it was shipped from, so in-sync clients all
    /// point at the same allocation and lockstep checks are a pointer
    /// compare.
    last: Arc<vgraph::Graph>,
    /// Server-side pane adopted at first plot (anchor for vctrl/vchat).
    #[allow(dead_code)]
    pane: vpanels::PaneId,
    /// Ship full next time (client acked out of sync).
    resync: bool,
}

/// A delta payload memoized on the extraction entry: every in-sync
/// client stepping `base → graph` at the same seq receives the same
/// bytes, so the diff is computed once per generation, not per client.
struct DeltaMemo {
    base: Arc<vgraph::Graph>,
    seq: u64,
    payload: String,
}

/// One memoized extraction, valid for the current stop generation.
struct MemoEntry {
    graph: Arc<vgraph::Graph>,
    stats: PlotStats,
    /// The full `vplot` ship, serialized once — identical for every
    /// client of this source (and, via the shared store, for every
    /// sibling engine).
    full: Arc<str>,
    delta: Option<DeltaMemo>,
}

impl MemoEntry {
    fn new(source: &str, graph: vgraph::Graph, stats: PlotStats) -> MemoEntry {
        let full = VCommand::Vplot {
            graph: graph.clone(),
            source: source.to_string(),
        }
        .to_json();
        MemoEntry {
            graph: Arc::new(graph),
            stats,
            full: full.into(),
            delta: None,
        }
    }

    /// Adopt a sibling engine's published extraction wholesale — no
    /// graph clone, no re-serialization.
    fn from_shared(sp: SharedPlot) -> MemoEntry {
        MemoEntry {
            graph: sp.graph,
            stats: sp.stats,
            full: sp.full,
            delta: None,
        }
    }
}

/// A deferred session operation (shared-served walk or deferred stop),
/// re-enacted in order before the next local walk.
enum LagOp {
    Plot(String),
    Stop(Box<dyn FnOnce(&mut KernelImage) + Send>),
}

/// The pane server. Owns the session; `run` is the engine loop.
pub struct Server {
    session: Session,
    shared: Arc<Shared>,
    stats: ServeStats,
    subs: HashMap<(u64, String), SyncState>,
    memo: HashMap<String, MemoEntry>,
    /// The fleet's cross-engine extraction store, if attached.
    share: Option<Arc<dyn SharedExtractions>>,
    /// Current stop-generation key (fleet-chained or a plain counter).
    generation: u64,
    /// Session operations skipped while serving from the shared store,
    /// in original order; drained before the next local walk.
    lag: Vec<LagOp>,
    /// Every extraction served (walked or shared), first-served order —
    /// what a respawned successor must re-enact.
    journal: Vec<JournalEntry>,
    /// The previous generation's graphs, kept across a stop so the
    /// canonical `previous → current` delta per source can be recognized
    /// (by pointer) and fetched from / published to the shared store.
    prev: HashMap<String, (u64, Arc<vgraph::Graph>)>,
}

impl Server {
    /// Wrap an attached session.
    pub fn new(session: Session, cfg: ServeConfig) -> Server {
        Server {
            session,
            shared: Arc::new(Shared {
                reqq: Bounded::new(cfg.request_queue),
                clients: Mutex::new(HashMap::new()),
                next_client: AtomicU64::new(1),
                active: AtomicUsize::new(0),
                shutting_down: AtomicBool::new(false),
                client_queue: cfg.client_queue,
                exit_when_idle: cfg.exit_when_idle,
            }),
            stats: ServeStats::default(),
            subs: HashMap::new(),
            memo: HashMap::new(),
            share: None,
            generation: 0,
            lag: Vec::new(),
            journal: Vec::new(),
            prev: HashMap::new(),
        }
    }

    /// Attach a cross-engine extraction store (fleet share group): the
    /// engine consults it before walking and publishes what it walks.
    pub fn share_extractions(&mut self, share: Arc<dyn SharedExtractions>) {
        self.share = Some(share);
    }

    /// Seed a fresh engine with its predecessor's history (fleet
    /// respawn): `generation` is the current stop-generation key, `ops`
    /// the predecessor's journal interleaved with the applied stops, in
    /// original order (each tagged with the generation it ran under).
    /// Drained lazily like ordinary lag, so a respawn costs nothing
    /// until a request actually misses the shared store.
    pub fn preload(&mut self, generation: u64, ops: Vec<(u64, Preload)>) {
        assert!(
            self.lag.is_empty() && self.journal.is_empty(),
            "preload must precede serving"
        );
        for (gen, op) in ops {
            match op {
                Preload::Plot(src) => {
                    self.journal.push(JournalEntry {
                        generation: gen,
                        viewcl: src.clone(),
                    });
                    self.lag.push(LagOp::Plot(src));
                }
                Preload::Stop(mutate) => self.lag.push(LagOp::Stop(mutate)),
            }
        }
        self.generation = generation;
    }

    /// A handle for client threads. Connect at least one client before
    /// calling [`Server::run`] when `exit_when_idle` is set, or the run
    /// may return before anyone got to speak.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
        }
    }

    /// Serving totals so far.
    pub fn stats(&self) -> ServeStats {
        let mut s = self.stats;
        s.queue_depth_max = s.queue_depth_max.max(self.shared.reqq.high_water() as u64);
        s
    }

    /// The wrapped session (e.g. to inspect panes after a run).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The served-extraction journal, first-served order (fleet respawn
    /// input; includes preloaded history).
    pub fn journal(&self) -> &[JournalEntry] {
        &self.journal
    }

    /// The current stop-generation key.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The engine loop: processes requests until shutdown — or, with
    /// `exit_when_idle`, until the last client disconnects. Afterwards
    /// every client stream is closed (graceful: already-queued replies
    /// remain readable).
    pub fn run(&mut self) {
        while let Some(req) = self.shared.reqq.pop() {
            self.handle_request(req);
        }
        for e in self.shared.clients.lock().unwrap().values() {
            e.outbox.close();
        }
    }

    fn handle_request(&mut self, req: Request) {
        match req {
            Request::Stop { generation, mutate } => {
                // While the session lags behind shared-served walks, the
                // stop is deferred too: a replay tape must observe walks
                // and resume marks in original order.
                if self.lag.is_empty() {
                    self.apply_stop(mutate);
                } else {
                    self.lag.push(LagOp::Stop(mutate));
                }
                let old = self.generation;
                self.generation = generation.unwrap_or(self.generation + 1);
                // The invalidated memo becomes the previous-generation
                // anchor set: deltas stepping `old → new` are canonical
                // and shareable across sibling engines.
                self.prev.clear();
                for (src, m) in self.memo.drain() {
                    self.prev.insert(src, (old, m.graph));
                }
                self.stats.stops += 1;
            }
            Request::Gone(id) => {
                // Trails everything the departed client queued: those
                // replies are delivered by now, so the outbox can go.
                if let Some(e) = self.shared.clients.lock().unwrap().remove(&id) {
                    e.outbox.close();
                }
            }
            Request::Cmd { client, line } => {
                self.stats.requests += 1;
                let reply = match VCommand::from_json(&line) {
                    Err(e) => {
                        self.stats.errors += 1;
                        VResponse::Err {
                            message: format!("unparseable command: {e}"),
                        }
                        .to_json()
                    }
                    Ok(cmd) => {
                        let _sp = vtrace::span(
                            self.session.tracer(),
                            SpanKind::Serve,
                            format!("serve:{}", tag_of(&cmd)),
                        );
                        self.dispatch(client, &cmd)
                    }
                };
                self.reply(client, reply);
            }
        }
    }

    fn dispatch(&mut self, client: u64, cmd: &VCommand) -> String {
        match cmd {
            VCommand::VplotRequest { viewcl } => {
                self.stats.plot_requests += 1;
                match self.plot(client, viewcl) {
                    Ok(payload) => payload,
                    Err(message) => {
                        self.stats.errors += 1;
                        VResponse::Err { message }.to_json()
                    }
                }
            }
            VCommand::Vack { source, seq, .. } => {
                self.stats.acks += 1;
                match self.subs.get_mut(&(client, source.clone())) {
                    Some(sub) if sub.seq == *seq => VResponse::Ok {
                        pane: None,
                        synthesized: None,
                    }
                    .to_json(),
                    Some(sub) => {
                        // The client applied something else than what we
                        // last shipped; re-baseline on its next request.
                        sub.resync = true;
                        self.stats.resyncs += 1;
                        VResponse::Err {
                            message: format!(
                                "ack for seq {seq}, last shipped {}; resyncing",
                                sub.seq
                            ),
                        }
                        .to_json()
                    }
                    None => {
                        self.stats.errors += 1;
                        VResponse::Err {
                            message: format!("ack for unknown plot `{source}`"),
                        }
                        .to_json()
                    }
                }
            }
            other => {
                // Pane ops (vctrl/vchat/vplot-push) go straight to the
                // shared session's dispatcher.
                let resp = visualinux::proto::dispatch(&mut self.session, other);
                if matches!(resp, VResponse::Err { .. }) {
                    self.stats.errors += 1;
                }
                resp.to_json()
            }
        }
    }

    /// Bring `viewcl` into the memo for the current generation: from the
    /// fleet's shared store when a sibling engine already walked it,
    /// else by walking the bridge locally (catching the session up on
    /// any lagged operations first).
    fn materialize(&mut self, viewcl: &str) -> Result<(), String> {
        if let Some(share) = self.share.clone() {
            if let Some(sp) = share.get(self.generation, viewcl) {
                self.stats.shared_hits += 1;
                // A shared hit leaves the session untouched, but a
                // replay tape must still observe this walk, in order,
                // before any future local walk. When the sibling
                // published the span it consumed and our cursor sits
                // exactly at its start (identical capture, identical
                // history), the cursor just jumps the span. Otherwise —
                // cache-backed sessions, whose block state a skipped
                // walk would leave cold, or a mid-flight lag queue —
                // the walk is remembered as lag and re-enacted later.
                if self.session.backend_kind() == BackendKind::Replay {
                    let skipped = !self.session.cache_enabled()
                        && self.lag.is_empty()
                        && sp.tape.is_some_and(|(from, to)| {
                            self.session.replay_state().is_some_and(|st| {
                                st.position() == from && st.skip_events(to - from).is_ok()
                            })
                        });
                    if skipped {
                        self.stats.tape_skips += 1;
                    } else {
                        self.lag.push(LagOp::Plot(viewcl.to_string()));
                    }
                }
                self.journal.push(JournalEntry {
                    generation: self.generation,
                    viewcl: viewcl.to_string(),
                });
                self.memo
                    .insert(viewcl.to_string(), MemoEntry::from_shared(sp));
                return Ok(());
            }
        }
        self.catch_up()?;
        let live = self.session.backend_kind() != BackendKind::Replay;
        if live {
            if let Some(share) = &self.share {
                if let Some(snap) = share.blocks(self.generation) {
                    self.stats.warm_blocks += self.session.warm_cache(&snap) as u64;
                }
            }
        }
        let tape_from = self.session.replay_state().map(|st| st.position());
        let (graph, pstats) = self.session.extract(viewcl).map_err(|e| e.to_string())?;
        self.stats.walks += 1;
        self.stats.walk_packets += pstats.target.reads;
        self.stats.walk_bytes += pstats.target.bytes;
        self.stats.walk_virtual_ns += pstats.target.virtual_ns;
        self.stats.walk_cache_hits += pstats.target.cache_hits;
        self.stats.walk_faults += pstats.target.faults;
        self.journal.push(JournalEntry {
            generation: self.generation,
            viewcl: viewcl.to_string(),
        });
        let entry = MemoEntry::new(viewcl, graph, pstats);
        if let Some(share) = &self.share {
            share.publish(
                self.generation,
                viewcl,
                &SharedPlot {
                    graph: Arc::clone(&entry.graph),
                    stats: pstats,
                    full: Arc::clone(&entry.full),
                    tape: tape_from.and_then(|from| {
                        self.session.replay_state().map(|st| (from, st.position()))
                    }),
                },
            );
            if live {
                if let Some(snap) = self.session.cache_snapshot() {
                    share.publish_blocks(self.generation, snap);
                }
            }
        }
        self.memo.insert(viewcl.to_string(), entry);
        Ok(())
    }

    /// Re-enact lagged operations (shared-served walks, deferred stops)
    /// in original order, so a local walk starts from a consistent
    /// tape/cache position.
    fn catch_up(&mut self) -> Result<(), String> {
        for op in std::mem::take(&mut self.lag) {
            match op {
                LagOp::Plot(src) => {
                    self.session
                        .extract(&src)
                        .map_err(|e| format!("catch-up walk of `{src}` failed: {e}"))?;
                    self.stats.catchup_walks += 1;
                }
                LagOp::Stop(mutate) => self.apply_stop(mutate),
            }
        }
        Ok(())
    }

    /// Advance the session across a stop. A replay session refuses
    /// image mutation ([`Session::stop_event`] errors loudly there —
    /// the tape already holds the recorded kernel's changes), so the
    /// engine advances its cursor with a bare resume instead.
    fn apply_stop(&mut self, mutate: Box<dyn FnOnce(&mut KernelImage) + Send>) {
        if self.session.backend_kind() == BackendKind::Replay {
            self.session.resume();
        } else {
            self.session
                .stop_event(mutate)
                .expect("live sessions accept stop events");
        }
    }

    /// Serve one `vplot_request`: memoized extraction, then a full ship
    /// or a delta, whichever is fewer bytes for *this* client.
    fn plot(&mut self, client: u64, viewcl: &str) -> Result<String, String> {
        if self.memo.contains_key(viewcl) {
            self.stats.coalesced += 1;
        } else {
            self.materialize(viewcl)?;
        }
        self.stats.extractions += 1;
        let (graph, pstats, full_len) = {
            let m = self.memo.get(viewcl).expect("just materialized");
            (Arc::clone(&m.graph), m.stats, m.full.len())
        };

        let key = (client, viewcl.to_string());
        if !self.subs.contains_key(&key) {
            let pane = self
                .session
                .adopt_graph((*graph).clone(), Some(pstats))
                .map_err(|e| e.to_string())?;
            self.subs.insert(
                key,
                SyncState {
                    seq: 0,
                    last: graph,
                    pane,
                    resync: false,
                },
            );
            let full = self
                .memo
                .get(viewcl)
                .expect("just materialized")
                .full
                .to_string();
            self.stats.fulls_sent += 1;
            self.stats.full_bytes_sent += full.len() as u64;
            return Ok(full);
        }

        let sub = self.subs.get_mut(&key).expect("checked above");
        let delta_cmd = if sub.resync {
            None
        } else {
            // Lockstep fast path: every in-sync client stepping the same
            // base graph at the same seq gets identical delta bytes, so
            // the diff is memoized on the extraction entry. Shipped
            // graphs are shared allocations, so "same base" is a pointer
            // compare, not a graph walk.
            let m = self.memo.get_mut(viewcl).expect("just materialized");
            let reusable = m
                .delta
                .as_ref()
                .is_some_and(|d| d.seq == sub.seq + 1 && Arc::ptr_eq(&d.base, &sub.last));
            if !reusable {
                // The canonical generation step (previous memoized graph
                // → current) is engine-invariant, so its structural diff
                // can come from the fleet's shared store instead of
                // being recomputed by every sibling.
                let canonical_from = self
                    .prev
                    .get(viewcl)
                    .filter(|(_, pg)| Arc::ptr_eq(pg, &sub.last))
                    .map(|(from, _)| *from);
                let delta = match (canonical_from, &self.share) {
                    (Some(from), Some(share)) => {
                        match share.get_delta(from, self.generation, viewcl) {
                            Some(d) => {
                                self.stats.shared_delta_hits += 1;
                                d
                            }
                            None => {
                                let d = vgraph::diff::diff(&sub.last, &m.graph);
                                share.publish_delta(from, self.generation, viewcl, &d);
                                d
                            }
                        }
                    }
                    _ => vgraph::diff::diff(&sub.last, &m.graph),
                };
                m.delta = Some(DeltaMemo {
                    base: Arc::clone(&sub.last),
                    seq: sub.seq + 1,
                    payload: VCommand::VplotDelta {
                        source: viewcl.to_string(),
                        seq: sub.seq + 1,
                        delta,
                    }
                    .to_json(),
                });
            }
            Some(m.delta.as_ref().expect("just stored").payload.clone())
        };
        sub.last = graph;
        match delta_cmd {
            // Delta sync pays off: ship it.
            Some(d) if d.len() < full_len => {
                sub.seq += 1;
                self.stats.deltas_sent += 1;
                self.stats.delta_bytes_sent += d.len() as u64;
                self.stats.delta_bytes_saved += (full_len - d.len()) as u64;
                Ok(d)
            }
            // Fallback: the delta would cost more than the plot
            // (or the client lost sync) — full ship, seq resets.
            _ => {
                sub.seq = 0;
                sub.resync = false;
                let full = self
                    .memo
                    .get(viewcl)
                    .expect("just materialized")
                    .full
                    .to_string();
                self.stats.fulls_sent += 1;
                self.stats.full_bytes_sent += full.len() as u64;
                Ok(full)
            }
        }
    }

    fn reply(&mut self, client: u64, mut line: String) {
        let outbox = self
            .shared
            .clients
            .lock()
            .unwrap()
            .get(&client)
            .map(|e| (e.outbox.clone(), e.gone));
        let Some((q, mut gone)) = outbox else {
            self.stats.dropped_replies += 1;
            return;
        };
        // Backpressure: a slow client stalls the engine rather than
        // growing an unbounded buffer — but never block forever on a
        // client that departed (it may drain its remaining replies, yet
        // nothing forces it to), so the wait periodically rechecks the
        // gone flag and a departed client only gets best-effort pushes.
        loop {
            let attempt = if gone {
                q.try_push(line)
            } else {
                q.push_timeout(line, std::time::Duration::from_millis(25))
            };
            match attempt {
                Ok(()) => {
                    self.stats.queue_depth_max =
                        self.stats.queue_depth_max.max(q.high_water() as u64);
                    return;
                }
                Err(TryPush::Closed(_)) => {
                    self.stats.dropped_replies += 1;
                    return;
                }
                Err(TryPush::Full(l)) => {
                    if gone {
                        self.stats.dropped_replies += 1;
                        return;
                    }
                    line = l;
                    gone = self
                        .shared
                        .clients
                        .lock()
                        .unwrap()
                        .get(&client)
                        .is_none_or(|e| e.gone);
                }
            }
        }
    }
}

fn tag_of(cmd: &VCommand) -> &'static str {
    match cmd {
        VCommand::Vplot { .. } => "vplot",
        VCommand::VctrlApply { .. } => "vctrl_apply",
        VCommand::VctrlSplit { .. } => "vctrl_split",
        VCommand::VctrlFocus { .. } => "vctrl_focus",
        VCommand::Vchat { .. } => "vchat",
        VCommand::VplotRequest { .. } => "vplot_request",
        VCommand::VplotDelta { .. } => "vplot_delta",
        VCommand::Vack { .. } => "vack",
        VCommand::Vattach { .. } => "vattach",
    }
}
