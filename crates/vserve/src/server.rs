//! The pane-server engine: one `Session`, many clients.
//!
//! [`visualinux::Session`] is deliberately single-threaded (it holds
//! `Rc`/`RefCell` state for tracing), so the engine runs on the thread
//! that owns the [`Server`] and everything that crosses threads is a
//! queue handle: clients hold a [`Connection`] (Send) whose `send` pushes
//! into the shared bounded request queue and whose `recv` pops a
//! per-client bounded outbox. Both directions exert real backpressure —
//! a full request queue blocks producers, a slow client eventually
//! blocks the engine on that client's outbox instead of buffering
//! without bound.
//!
//! Identical concurrent extraction requests coalesce: the first
//! `vplot_request` for a ViewCL program in a given stop pays the bridge
//! walk, every further one (from any client, until the next stop event)
//! is served from the memoized result. Per `(client, source)` the server
//! remembers the last graph it shipped and sends a [`vgraph::diff`]
//! delta when that is smaller than re-shipping the plot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ksim::image::KernelImage;
use visualinux::proto::{VCommand, VResponse};
use visualinux::{PlotStats, Session};
use vtrace::SpanKind;

use crate::queue::{Bounded, TryPush};
use crate::stats::ServeStats;
use crate::ServeError;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Capacity of the shared request queue.
    pub request_queue: usize,
    /// Capacity of each client's outbound queue.
    pub client_queue: usize,
    /// When true, [`Server::run`] returns after the last client
    /// disconnects (instead of waiting for an explicit shutdown).
    pub exit_when_idle: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            request_queue: 64,
            client_queue: 16,
            exit_when_idle: true,
        }
    }
}

/// A unit of work for the engine.
enum Request {
    /// A protocol line from a client.
    Cmd { client: u64, line: String },
    /// The debugger stopped again: mutate the image, invalidate caches.
    Stop(Box<dyn FnOnce(&mut KernelImage) + Send>),
}

struct ClientEntry {
    outbox: Arc<Bounded<String>>,
}

/// State shared between the engine thread and all client threads.
struct Shared {
    reqq: Bounded<Request>,
    clients: Mutex<HashMap<u64, ClientEntry>>,
    next_client: AtomicU64,
    active: AtomicUsize,
    shutting_down: AtomicBool,
    client_queue: usize,
    exit_when_idle: bool,
}

impl Shared {
    /// Called when a client disconnects; the last one out closes the
    /// request queue so an idle-exit engine can return.
    fn client_gone(&self, id: u64) {
        let entry = self.clients.lock().unwrap().remove(&id);
        if let Some(e) = entry {
            e.outbox.close();
            if self.active.fetch_sub(1, Ordering::SeqCst) == 1 && self.exit_when_idle {
                self.reqq.close();
            }
        }
    }
}

/// A client's endpoint. `Send`: hand it to the thread that talks to the
/// server. Dropping it disconnects.
pub struct Connection {
    id: u64,
    shared: Arc<Shared>,
    outbox: Arc<Bounded<String>>,
}

impl Connection {
    /// Submit a command; blocks while the request queue is full
    /// (backpressure). Fails once the server is shutting down.
    pub fn send(&self, cmd: &VCommand) -> Result<(), ServeError> {
        self.send_line(cmd.to_json())
    }

    /// Submit a raw protocol line.
    pub fn send_line(&self, line: String) -> Result<(), ServeError> {
        self.shared
            .reqq
            .push(Request::Cmd {
                client: self.id,
                line,
            })
            .map_err(|_| ServeError::Closed)
    }

    /// Non-blocking submit; surfaces a full queue as
    /// [`ServeError::Backpressure`].
    pub fn try_send(&self, cmd: &VCommand) -> Result<(), ServeError> {
        self.shared
            .reqq
            .try_push(Request::Cmd {
                client: self.id,
                line: cmd.to_json(),
            })
            .map_err(|e| match e {
                TryPush::Full(_) => ServeError::Backpressure,
                TryPush::Closed(_) => ServeError::Closed,
            })
    }

    /// Next reply line; blocks. `None` once the server closed this
    /// client's stream and everything queued has been read.
    pub fn recv(&self) -> Option<String> {
        self.outbox.pop()
    }

    /// Non-blocking variant of [`Connection::recv`].
    pub fn try_recv(&self) -> Option<String> {
        self.outbox.try_pop()
    }

    /// This client's id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Disconnect. Idempotent; also called on drop.
    pub fn close(&self) {
        self.shared.client_gone(self.id);
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.close();
    }
}

/// A clonable, `Send` handle for connecting clients and controlling the
/// server from other threads.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Register a new client and return its endpoint.
    pub fn connect(&self) -> Connection {
        let id = self.shared.next_client.fetch_add(1, Ordering::SeqCst);
        let outbox = Arc::new(Bounded::new(self.shared.client_queue));
        self.shared.clients.lock().unwrap().insert(
            id,
            ClientEntry {
                outbox: outbox.clone(),
            },
        );
        self.shared.active.fetch_add(1, Ordering::SeqCst);
        Connection {
            id,
            shared: self.shared.clone(),
            outbox,
        }
    }

    /// Enqueue a stop event: the engine applies `mutate` to the image,
    /// bumps the cache epoch, and invalidates its extraction memo, all
    /// strictly ordered with the surrounding requests.
    pub fn stop_event(
        &self,
        mutate: impl FnOnce(&mut KernelImage) + Send + 'static,
    ) -> Result<(), ServeError> {
        self.shared
            .reqq
            .push(Request::Stop(Box::new(mutate)))
            .map_err(|_| ServeError::Closed)
    }

    /// Begin graceful shutdown: no new requests are accepted; the engine
    /// finishes what is queued, answers it, then closes every client
    /// stream and returns from [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.reqq.close();
    }
}

/// Per-(client, source) delta-sync state.
struct SyncState {
    /// Sequence of the last payload shipped (0 = the full ship).
    seq: u64,
    /// The graph the client holds after applying that payload.
    last: vgraph::Graph,
    /// Server-side pane adopted at first plot (anchor for vctrl/vchat).
    #[allow(dead_code)]
    pane: vpanels::PaneId,
    /// Ship full next time (client acked out of sync).
    resync: bool,
}

/// One memoized extraction, valid for the current stop generation.
struct MemoEntry {
    graph: vgraph::Graph,
    stats: PlotStats,
}

/// The pane server. Owns the session; `run` is the engine loop.
pub struct Server {
    session: Session,
    shared: Arc<Shared>,
    stats: ServeStats,
    subs: HashMap<(u64, String), SyncState>,
    memo: HashMap<String, MemoEntry>,
}

impl Server {
    /// Wrap an attached session.
    pub fn new(session: Session, cfg: ServeConfig) -> Server {
        Server {
            session,
            shared: Arc::new(Shared {
                reqq: Bounded::new(cfg.request_queue),
                clients: Mutex::new(HashMap::new()),
                next_client: AtomicU64::new(1),
                active: AtomicUsize::new(0),
                shutting_down: AtomicBool::new(false),
                client_queue: cfg.client_queue,
                exit_when_idle: cfg.exit_when_idle,
            }),
            stats: ServeStats::default(),
            subs: HashMap::new(),
            memo: HashMap::new(),
        }
    }

    /// A handle for client threads. Connect at least one client before
    /// calling [`Server::run`] when `exit_when_idle` is set, or the run
    /// may return before anyone got to speak.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
        }
    }

    /// Serving totals so far.
    pub fn stats(&self) -> ServeStats {
        let mut s = self.stats;
        s.queue_depth_max = s.queue_depth_max.max(self.shared.reqq.high_water() as u64);
        s
    }

    /// The wrapped session (e.g. to inspect panes after a run).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The engine loop: processes requests until shutdown — or, with
    /// `exit_when_idle`, until the last client disconnects. Afterwards
    /// every client stream is closed (graceful: already-queued replies
    /// remain readable).
    pub fn run(&mut self) {
        while let Some(req) = self.shared.reqq.pop() {
            self.handle_request(req);
        }
        for e in self.shared.clients.lock().unwrap().values() {
            e.outbox.close();
        }
    }

    fn handle_request(&mut self, req: Request) {
        match req {
            Request::Stop(mutate) => {
                self.session.stop_event(mutate);
                self.memo.clear();
                self.stats.stops += 1;
            }
            Request::Cmd { client, line } => {
                self.stats.requests += 1;
                let reply = match VCommand::from_json(&line) {
                    Err(e) => {
                        self.stats.errors += 1;
                        VResponse::Err {
                            message: format!("unparseable command: {e}"),
                        }
                        .to_json()
                    }
                    Ok(cmd) => {
                        let _sp = vtrace::span(
                            self.session.tracer(),
                            SpanKind::Serve,
                            format!("serve:{}", tag_of(&cmd)),
                        );
                        self.dispatch(client, &cmd)
                    }
                };
                self.reply(client, reply);
            }
        }
    }

    fn dispatch(&mut self, client: u64, cmd: &VCommand) -> String {
        match cmd {
            VCommand::VplotRequest { viewcl } => {
                self.stats.plot_requests += 1;
                match self.plot(client, viewcl) {
                    Ok(payload) => payload,
                    Err(message) => {
                        self.stats.errors += 1;
                        VResponse::Err { message }.to_json()
                    }
                }
            }
            VCommand::Vack { source, seq } => {
                self.stats.acks += 1;
                match self.subs.get_mut(&(client, source.clone())) {
                    Some(sub) if sub.seq == *seq => VResponse::Ok {
                        pane: None,
                        synthesized: None,
                    }
                    .to_json(),
                    Some(sub) => {
                        // The client applied something else than what we
                        // last shipped; re-baseline on its next request.
                        sub.resync = true;
                        self.stats.resyncs += 1;
                        VResponse::Err {
                            message: format!(
                                "ack for seq {seq}, last shipped {}; resyncing",
                                sub.seq
                            ),
                        }
                        .to_json()
                    }
                    None => {
                        self.stats.errors += 1;
                        VResponse::Err {
                            message: format!("ack for unknown plot `{source}`"),
                        }
                        .to_json()
                    }
                }
            }
            other => {
                // Pane ops (vctrl/vchat/vplot-push) go straight to the
                // shared session's dispatcher.
                let resp = visualinux::proto::dispatch(&mut self.session, other);
                if matches!(resp, VResponse::Err { .. }) {
                    self.stats.errors += 1;
                }
                resp.to_json()
            }
        }
    }

    /// Serve one `vplot_request`: memoized extraction, then a full ship
    /// or a delta, whichever is fewer bytes for *this* client.
    fn plot(&mut self, client: u64, viewcl: &str) -> Result<String, String> {
        let (graph, pstats) = match self.memo.get(viewcl) {
            Some(m) => {
                self.stats.coalesced += 1;
                (m.graph.clone(), m.stats)
            }
            None => {
                let (graph, pstats) = self.session.extract(viewcl).map_err(|e| e.to_string())?;
                self.stats.walks += 1;
                self.stats.walk_packets += pstats.target.reads;
                self.stats.walk_bytes += pstats.target.bytes;
                self.stats.walk_virtual_ns += pstats.target.virtual_ns;
                self.stats.walk_cache_hits += pstats.target.cache_hits;
                self.stats.walk_faults += pstats.target.faults;
                self.memo.insert(
                    viewcl.to_string(),
                    MemoEntry {
                        graph: graph.clone(),
                        stats: pstats,
                    },
                );
                (graph, pstats)
            }
        };
        self.stats.extractions += 1;

        let full = VCommand::Vplot {
            graph: graph.clone(),
            source: viewcl.to_string(),
        }
        .to_json();

        let key = (client, viewcl.to_string());
        match self.subs.get_mut(&key) {
            None => {
                let pane = self
                    .session
                    .adopt_graph(graph.clone(), Some(pstats))
                    .map_err(|e| e.to_string())?;
                self.subs.insert(
                    key,
                    SyncState {
                        seq: 0,
                        last: graph,
                        pane,
                        resync: false,
                    },
                );
                self.stats.fulls_sent += 1;
                self.stats.full_bytes_sent += full.len() as u64;
                Ok(full)
            }
            Some(sub) => {
                let delta_cmd = (!sub.resync).then(|| {
                    VCommand::VplotDelta {
                        source: viewcl.to_string(),
                        seq: sub.seq + 1,
                        delta: vgraph::diff::diff(&sub.last, &graph),
                    }
                    .to_json()
                });
                sub.last = graph;
                match delta_cmd {
                    // Delta sync pays off: ship it.
                    Some(d) if d.len() < full.len() => {
                        sub.seq += 1;
                        self.stats.deltas_sent += 1;
                        self.stats.delta_bytes_sent += d.len() as u64;
                        self.stats.delta_bytes_saved += (full.len() - d.len()) as u64;
                        Ok(d)
                    }
                    // Fallback: the delta would cost more than the plot
                    // (or the client lost sync) — full ship, seq resets.
                    _ => {
                        sub.seq = 0;
                        sub.resync = false;
                        self.stats.fulls_sent += 1;
                        self.stats.full_bytes_sent += full.len() as u64;
                        Ok(full)
                    }
                }
            }
        }
    }

    fn reply(&mut self, client: u64, line: String) {
        let outbox = self
            .shared
            .clients
            .lock()
            .unwrap()
            .get(&client)
            .map(|e| e.outbox.clone());
        match outbox {
            // Blocking push: a slow client stalls the engine rather than
            // growing an unbounded buffer. Closed = client left mid-flight.
            Some(q) => {
                if q.push(line).is_err() {
                    self.stats.dropped_replies += 1;
                } else {
                    self.stats.queue_depth_max =
                        self.stats.queue_depth_max.max(q.high_water() as u64);
                }
            }
            None => self.stats.dropped_replies += 1,
        }
    }
}

fn tag_of(cmd: &VCommand) -> &'static str {
    match cmd {
        VCommand::Vplot { .. } => "vplot",
        VCommand::VctrlApply { .. } => "vctrl_apply",
        VCommand::VctrlSplit { .. } => "vctrl_split",
        VCommand::VctrlFocus { .. } => "vctrl_focus",
        VCommand::Vchat { .. } => "vchat",
        VCommand::VplotRequest { .. } => "vplot_request",
        VCommand::VplotDelta { .. } => "vplot_delta",
        VCommand::Vack { .. } => "vack",
    }
}
