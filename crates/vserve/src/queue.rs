//! A small bounded MPMC queue: `Mutex<VecDeque>` + two condvars.
//!
//! This is the backpressure primitive of the whole server — the request
//! queue and every per-client outbox are instances. `push` blocks while
//! the queue is at capacity, so a slow consumer throttles its producers
//! instead of letting memory grow; `close` lets consumers drain what is
//! already queued and then observe end-of-stream.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Largest queue depth ever observed (ServeStats.queue_depth_max).
    high_water: usize,
}

/// A bounded blocking queue.
pub struct Bounded<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Outcome of a non-blocking push.
#[derive(Debug)]
pub enum TryPush<T> {
    /// The queue is at capacity; the item comes back.
    Full(T),
    /// The queue is closed; the item comes back.
    Closed(T),
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (`cap` ≥ 1).
    pub fn new(cap: usize) -> Bounded<T> {
        assert!(cap >= 1, "a zero-capacity queue cannot transfer anything");
        Bounded {
            cap,
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocking push; waits while full. `Err(item)` once closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.closed {
                return Err(item);
            }
            if g.items.len() < self.cap {
                g.items.push_back(item);
                g.high_water = g.high_water.max(g.items.len());
                self.not_empty.notify_one();
                return Ok(());
            }
            g = self.not_full.wait(g).unwrap();
        }
    }

    /// Push with a bounded wait: like [`Bounded::push`], but gives up
    /// with `Full` after `timeout` instead of waiting forever. Lets a
    /// producer that must not deadlock (the engine replying to a client
    /// that may never drain again) periodically recheck the world.
    pub fn push_timeout(&self, item: T, timeout: std::time::Duration) -> Result<(), TryPush<T>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.closed {
                return Err(TryPush::Closed(item));
            }
            if g.items.len() < self.cap {
                g.items.push_back(item);
                g.high_water = g.high_water.max(g.items.len());
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(TryPush::Full(item));
            }
            let (guard, _timed_out) = self.not_full.wait_timeout(g, deadline - now).unwrap();
            g = guard;
        }
    }

    /// Non-blocking push.
    pub fn try_push(&self, item: T) -> Result<(), TryPush<T>> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(TryPush::Closed(item));
        }
        if g.items.len() >= self.cap {
            return Err(TryPush::Full(item));
        }
        g.items.push_back(item);
        g.high_water = g.high_water.max(g.items.len());
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop; waits while empty. `None` once closed *and* drained —
    /// close is graceful: items queued before the close still come out.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(item) = g.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap();
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        let item = g.items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Close the queue: producers fail fast, consumers drain then stop.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap();
        g.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest depth ever reached.
    pub fn high_water(&self) -> usize {
        self.inner.lock().unwrap().high_water
    }

    /// The fixed capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_high_water() {
        let q = Bounded::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.push(4).unwrap();
        assert_eq!(q.high_water(), 3, "high water is a max, not a level");
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn try_push_reports_full_then_closed() {
        let q = Bounded::new(1);
        q.push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(TryPush::Full(2))));
        q.close();
        assert!(matches!(q.try_push(2), Err(TryPush::Closed(2))));
        assert_eq!(q.push(3), Err(3));
    }

    #[test]
    fn push_timeout_gives_up_on_a_stuck_queue() {
        let q = Bounded::new(1);
        q.push(1u32).unwrap();
        let t0 = std::time::Instant::now();
        assert!(matches!(
            q.push_timeout(2, std::time::Duration::from_millis(20)),
            Err(TryPush::Full(2))
        ));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        q.close();
        assert!(matches!(
            q.push_timeout(3, std::time::Duration::from_millis(20)),
            Err(TryPush::Closed(3))
        ));
    }

    #[test]
    fn close_drains_gracefully() {
        let q = Bounded::new(8);
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.close();
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn blocked_push_resumes_when_space_frees() {
        let q = Arc::new(Bounded::new(1));
        q.push(0u32).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push(1).is_ok());
        // The producer is (soon) blocked on a full queue; popping unblocks it.
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(1));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
