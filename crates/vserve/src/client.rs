//! The client-side replica: applies `vplot`/`vplot_delta` payloads and
//! produces the `vack`s the server uses to detect sync loss.

use std::collections::HashMap;

use vgraph::{diff, DeltaSummary, Graph};
use visualinux::proto::{VCommand, VResponse};

use crate::ServeError;

/// What one server line did to the replica.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicaEvent {
    /// A full plot (re)established the baseline for `source`.
    Full {
        /// The plot's ViewCL source.
        source: String,
    },
    /// A delta advanced `source` to `seq`.
    Delta {
        /// The plot's ViewCL source.
        source: String,
        /// Sequence after applying.
        seq: u64,
        /// What the delta changed.
        summary: DeltaSummary,
    },
    /// A plain response (ok/error) to a non-plot command.
    Response(VResponse),
}

/// Client-side mirror of every plot this client subscribed to.
#[derive(Default)]
pub struct Replica {
    plots: HashMap<String, (u64, Graph)>,
}

impl Replica {
    /// An empty replica.
    pub fn new() -> Replica {
        Replica::default()
    }

    /// Apply one server line. Graph payloads update the mirror; anything
    /// else is surfaced as [`ReplicaEvent::Response`].
    pub fn apply_line(&mut self, line: &str) -> Result<ReplicaEvent, ServeError> {
        if let Ok(cmd) = VCommand::from_json(line) {
            return self.apply_command(cmd);
        }
        match VResponse::from_json(line) {
            Ok(resp) => Ok(ReplicaEvent::Response(resp)),
            Err(e) => Err(ServeError::Protocol(format!("unparseable reply: {e}"))),
        }
    }

    fn apply_command(&mut self, cmd: VCommand) -> Result<ReplicaEvent, ServeError> {
        match cmd {
            VCommand::Vplot { graph, source } => {
                self.plots.insert(source.clone(), (0, graph));
                Ok(ReplicaEvent::Full { source })
            }
            VCommand::VplotDelta { source, seq, delta } => {
                let Some((have, base)) = self.plots.get(&source) else {
                    return Err(ServeError::OutOfSync(format!(
                        "delta for `{source}` but no baseline"
                    )));
                };
                if seq != have + 1 {
                    return Err(ServeError::OutOfSync(format!(
                        "delta seq {seq} after {have}"
                    )));
                }
                let summary = delta.summary;
                let next =
                    diff::apply(base, &delta).map_err(|e| ServeError::OutOfSync(e.to_string()))?;
                self.plots.insert(source.clone(), (seq, next));
                Ok(ReplicaEvent::Delta {
                    source,
                    seq,
                    summary,
                })
            }
            other => Err(ServeError::Protocol(format!(
                "server pushed unexpected command {other:?}"
            ))),
        }
    }

    /// The mirrored graph for a source, if subscribed.
    pub fn graph(&self, source: &str) -> Option<&Graph> {
        self.plots.get(source).map(|(_, g)| g)
    }

    /// Current sequence for a source (0 after a full ship).
    pub fn seq(&self, source: &str) -> Option<u64> {
        self.plots.get(source).map(|(s, _)| *s)
    }

    /// The acknowledgement for a source's current state, stamped with
    /// the protocol revision this build speaks
    /// ([`visualinux::proto::VERSION`]).
    pub fn ack(&self, source: &str) -> Option<VCommand> {
        self.plots.get(source).map(|(seq, _)| VCommand::Vack {
            source: source.to_string(),
            seq: *seq,
            proto: visualinux::proto::VERSION,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(v: i64) -> Graph {
        let mut g = Graph::new();
        let (a, _) = g.intern(0x10, "N", "node", 8);
        g.get_mut(a).views.push(vgraph::ViewInst {
            name: "default".into(),
            items: vec![vgraph::Item::Text {
                name: "v".into(),
                value: v.to_string(),
                raw: Some(v),
            }],
        });
        g.roots.push(a);
        g
    }

    #[test]
    fn full_then_delta_then_ack() {
        let mut r = Replica::new();
        let base = graph(1);
        let next = graph(2);
        let ev = r
            .apply_line(
                &VCommand::Vplot {
                    graph: base.clone(),
                    source: "src".into(),
                }
                .to_json(),
            )
            .unwrap();
        assert_eq!(
            ev,
            ReplicaEvent::Full {
                source: "src".into()
            }
        );
        assert_eq!(r.seq("src"), Some(0));

        let d = VCommand::VplotDelta {
            source: "src".into(),
            seq: 1,
            delta: diff::diff(&base, &next),
        };
        let ev = r.apply_line(&d.to_json()).unwrap();
        assert!(matches!(ev, ReplicaEvent::Delta { seq: 1, .. }));
        assert_eq!(r.graph("src").unwrap().to_json(), next.to_json());
        let ack = r.ack("src").unwrap();
        assert!(matches!(ack, VCommand::Vack { seq: 1, .. }), "{ack:?}");
    }

    #[test]
    fn out_of_order_delta_is_rejected() {
        let mut r = Replica::new();
        let base = graph(1);
        r.apply_line(
            &VCommand::Vplot {
                graph: base.clone(),
                source: "src".into(),
            }
            .to_json(),
        )
        .unwrap();
        let d = VCommand::VplotDelta {
            source: "src".into(),
            seq: 5,
            delta: diff::diff(&base, &graph(2)),
        };
        assert!(matches!(
            r.apply_line(&d.to_json()),
            Err(ServeError::OutOfSync(_))
        ));
        // And a delta with no baseline at all.
        let mut fresh = Replica::new();
        assert!(matches!(
            fresh.apply_line(&d.to_json()),
            Err(ServeError::OutOfSync(_))
        ));
    }
}
