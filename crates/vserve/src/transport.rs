//! Transport abstraction: anything that can move protocol lines.
//!
//! The server itself is transport-agnostic — clients are queue handles.
//! A [`Transport`] adapts some byte stream (a TCP socket, a pipe, an
//! in-process channel) to one [`Connection`] via [`serve_transport`],
//! which pumps strict request/reply lock-step: one line in, one line
//! out. `examples/serve_tcp.rs` binds it to `std::net::TcpListener`.

use std::io;
use std::sync::Arc;

use crate::queue::Bounded;
use crate::server::Connection;

/// A bidirectional line-oriented channel to one client.
pub trait Transport {
    /// Next request line; `Ok(None)` on clean end-of-stream.
    fn recv(&mut self) -> io::Result<Option<String>>;
    /// Deliver a reply line.
    fn send(&mut self, line: &str) -> io::Result<()>;
}

/// Pump a transport against a server connection until either side ends.
/// Every request is answered with exactly one reply line, so lock-step
/// forwarding preserves ordering without any framing beyond newlines.
pub fn serve_transport<T: Transport>(conn: &Connection, t: &mut T) -> io::Result<()> {
    while let Some(line) = t.recv()? {
        if line.trim().is_empty() {
            continue;
        }
        if conn.send_line(line).is_err() {
            break; // server shutting down
        }
        match conn.recv() {
            Some(reply) => t.send(&reply)?,
            None => break, // server closed our stream mid-flight
        }
    }
    Ok(())
}

/// An in-process transport: two bounded line queues. The test- and
/// bench-side counterpart of a socket.
pub struct PairTransport {
    rx: Arc<Bounded<String>>,
    tx: Arc<Bounded<String>>,
}

/// Two connected [`PairTransport`] ends (what a socketpair would give).
pub fn pair(cap: usize) -> (PairTransport, PairTransport) {
    let a = Arc::new(Bounded::new(cap));
    let b = Arc::new(Bounded::new(cap));
    (
        PairTransport {
            rx: a.clone(),
            tx: b.clone(),
        },
        PairTransport { rx: b, tx: a },
    )
}

impl PairTransport {
    /// Close both directions (ends the peer's `recv` after a drain).
    pub fn close(&self) {
        self.rx.close();
        self.tx.close();
    }
}

impl Transport for PairTransport {
    fn recv(&mut self) -> io::Result<Option<String>> {
        Ok(self.rx.pop())
    }

    fn send(&mut self, line: &str) -> io::Result<()> {
        self.tx
            .push(line.to_string())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_moves_lines_both_ways() {
        let (mut a, mut b) = pair(4);
        a.send("ping").unwrap();
        assert_eq!(b.recv().unwrap().as_deref(), Some("ping"));
        b.send("pong").unwrap();
        assert_eq!(a.recv().unwrap().as_deref(), Some("pong"));
        a.close();
        assert_eq!(b.recv().unwrap(), None);
        assert!(b.send("late").is_err());
    }
}
