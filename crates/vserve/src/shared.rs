//! Cross-engine extraction sharing — the hook a fleet plugs into its
//! engines.
//!
//! Engines spawned from identical session specs serve identical graphs,
//! so the first engine to walk a `(stop generation, ViewCL)` pair can
//! publish the result and every sibling can serve it without touching
//! its own bridge. For replay engines that sharing is what makes the
//! fleet scale: a shared hit skips an entire tape walk. The engine
//! records each shared hit as *lag* — a deferred local re-extraction —
//! so its session (and, for replay backends, the strict in-order tape
//! cursor) can be caught up the moment a local walk becomes necessary.

use std::sync::Arc;

use visualinux::PlotStats;

/// One shareable extraction result. Graph and serialized payload are
/// behind `Arc` so publishing and hitting are pointer bumps — a shared
/// hit must not pay a graph deep-clone or a multi-kilobyte re-serialize,
/// or the sharing saves nothing.
#[derive(Clone)]
pub struct SharedPlot {
    /// The extracted graph.
    pub graph: Arc<vgraph::Graph>,
    /// Its extraction stats (virtual time, packets, …).
    pub stats: PlotStats,
    /// The full `vplot` ship serialized once by the walking engine —
    /// byte-identical for every sibling serving the same source.
    pub full: Arc<str>,
    /// The replay-tape event span `[from, to)` this walk consumed, when
    /// the walker serves a capture. Siblings replaying the *same*
    /// capture at the same position can advance their cursor over the
    /// span instead of re-enacting the walk.
    pub tape: Option<(usize, usize)>,
}

/// A store of extraction results shared by engines serving identical
/// sessions. `generation` is the caller-defined stop-generation key: two
/// engines may only observe equal keys when their images went through
/// identical mutation histories (the fleet chains tick arguments into
/// the key to enforce that).
pub trait SharedExtractions: Send + Sync {
    /// A sibling's walk of `viewcl` under `generation`, if published.
    fn get(&self, generation: u64, viewcl: &str) -> Option<SharedPlot>;

    /// Publish a locally walked extraction for siblings.
    fn publish(&self, generation: u64, viewcl: &str, plot: &SharedPlot);

    /// Warmed block spans for `generation`, if any. Only consulted by
    /// live engines — a replay tape must fetch its own bytes in
    /// recorded order.
    fn blocks(&self, _generation: u64) -> Option<vbridge::CacheSnapshot> {
        None
    }

    /// Publish this engine's warmed blocks after a local walk.
    fn publish_blocks(&self, _generation: u64, _snap: vbridge::CacheSnapshot) {}

    /// A sibling's memoized `from → to` generation-step delta for
    /// `viewcl`, if published. Engines stepping identical histories
    /// produce identical diffs, so the structural diff is computed once
    /// per fleet, not once per engine.
    fn get_delta(&self, _from: u64, _to: u64, _viewcl: &str) -> Option<vgraph::diff::GraphDelta> {
        None
    }

    /// Publish a locally computed generation-step delta for siblings.
    fn publish_delta(
        &self,
        _from: u64,
        _to: u64,
        _viewcl: &str,
        _delta: &vgraph::diff::GraphDelta,
    ) {
    }
}

/// One served extraction in first-served order: the journal a fleet
/// keeps per session so a respawned engine can re-enact exactly what its
/// predecessor served (tape position, cache state) before taking new
/// work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Stop-generation key the extraction was served under.
    pub generation: u64,
    /// The ViewCL program.
    pub viewcl: String,
}

/// A deferred session operation handed to a freshly respawned engine
/// ([`crate::Server::preload`]): the predecessor's journal, interleaved
/// with the stop events the fleet applied, in original order.
pub enum Preload {
    /// Re-extract a ViewCL program (re-positions a replay tape; warms a
    /// live cache).
    Plot(String),
    /// Re-apply a stop event (replay sessions skip the mutation but
    /// consume their resume marker).
    Stop(Box<dyn FnOnce(&mut ksim::image::KernelImage) + Send>),
}
