//! Serving-side accounting, threaded through every request.

use serde::{Deserialize, Serialize};

/// Counters the server keeps while it runs. The `walk_*` block mirrors
/// the bridge's `TargetStats` for the walks this server actually paid
/// for, so an external audit (`table4 --serve`) can reconcile serving
/// totals against the vtrace clock bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Commands received (including malformed ones).
    pub requests: u64,
    /// `vplot_request` commands among them.
    pub plot_requests: u64,
    /// Stop events processed.
    pub stops: u64,
    /// Extraction results served (`walks + coalesced`).
    pub extractions: u64,
    /// Bridge walks actually performed.
    pub walks: u64,
    /// Extraction requests answered from a concurrent/identical walk.
    pub coalesced: u64,
    /// Extraction requests answered from a fleet's shared store — a
    /// sibling engine paid the walk.
    pub shared_hits: u64,
    /// Generation-step deltas taken from a fleet's shared store — a
    /// sibling engine paid the structural diff.
    pub shared_delta_hits: u64,
    /// Lagged walks re-enacted to catch the session up on shared-served
    /// history before a local walk (or after a fleet respawn).
    pub catchup_walks: u64,
    /// Shared hits absorbed by jumping the replay cursor over the
    /// sibling's published tape span instead of re-enacting the walk.
    pub tape_skips: u64,
    /// Cache blocks adopted from a sibling engine's published snapshot.
    pub warm_blocks: u64,
    /// Full `vplot` payloads shipped.
    pub fulls_sent: u64,
    /// `vplot_delta` payloads shipped.
    pub deltas_sent: u64,
    /// Bytes of full payloads shipped.
    pub full_bytes_sent: u64,
    /// Bytes of delta payloads shipped.
    pub delta_bytes_sent: u64,
    /// Bytes a full re-ship would have cost minus what the delta cost.
    pub delta_bytes_saved: u64,
    /// `vack` commands processed.
    pub acks: u64,
    /// Subscriptions forced back to a full ship by a bad/missing ack.
    pub resyncs: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Replies dropped because the client had disconnected.
    pub dropped_replies: u64,
    /// Deepest the request queue or any client outbox ever got.
    pub queue_depth_max: u64,
    /// Wire packets of all walks (mirrors `TargetStats.reads`).
    pub walk_packets: u64,
    /// Bytes transferred by all walks.
    pub walk_bytes: u64,
    /// Virtual nanoseconds of all walks.
    pub walk_virtual_ns: u64,
    /// Cache hits of all walks.
    pub walk_cache_hits: u64,
    /// Faulting packets of all walks.
    pub walk_faults: u64,
}

impl ServeStats {
    /// Internal bookkeeping invariants. A violation means the serving
    /// loop lost track of work — the condition `table4 --serve` turns
    /// into a non-zero exit.
    pub fn reconcile(&self) -> Result<(), String> {
        if self.extractions != self.walks + self.coalesced + self.shared_hits {
            return Err(format!(
                "extractions ({}) != walks ({}) + coalesced ({}) + shared hits ({})",
                self.extractions, self.walks, self.coalesced, self.shared_hits
            ));
        }
        if self.fulls_sent + self.deltas_sent != self.extractions {
            return Err(format!(
                "fulls ({}) + deltas ({}) != extractions ({})",
                self.fulls_sent, self.deltas_sent, self.extractions
            ));
        }
        // A delta is only chosen when strictly smaller than the full ship.
        if self.delta_bytes_saved < self.deltas_sent {
            return Err(format!(
                "{} deltas saved only {} bytes — some delta cannot have \
                 been smaller than its full payload",
                self.deltas_sent, self.delta_bytes_saved
            ));
        }
        if self.plot_requests > self.requests || self.acks > self.requests {
            return Err("more plot requests or acks than requests".into());
        }
        if self.plot_requests < self.extractions {
            return Err(format!(
                "plot requests ({}) cannot cover extractions ({})",
                self.plot_requests, self.extractions
            ));
        }
        Ok(())
    }

    /// Fold another engine's totals into this one (fleet aggregation).
    /// Counters sum; high-water marks take the max.
    pub fn absorb(&mut self, other: &ServeStats) {
        self.requests += other.requests;
        self.plot_requests += other.plot_requests;
        self.stops += other.stops;
        self.extractions += other.extractions;
        self.walks += other.walks;
        self.coalesced += other.coalesced;
        self.shared_hits += other.shared_hits;
        self.shared_delta_hits += other.shared_delta_hits;
        self.catchup_walks += other.catchup_walks;
        self.tape_skips += other.tape_skips;
        self.warm_blocks += other.warm_blocks;
        self.fulls_sent += other.fulls_sent;
        self.deltas_sent += other.deltas_sent;
        self.full_bytes_sent += other.full_bytes_sent;
        self.delta_bytes_sent += other.delta_bytes_sent;
        self.delta_bytes_saved += other.delta_bytes_saved;
        self.acks += other.acks;
        self.resyncs += other.resyncs;
        self.errors += other.errors;
        self.dropped_replies += other.dropped_replies;
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        self.walk_packets += other.walk_packets;
        self.walk_bytes += other.walk_bytes;
        self.walk_virtual_ns += other.walk_virtual_ns;
        self.walk_cache_hits += other.walk_cache_hits;
        self.walk_faults += other.walk_faults;
    }

    /// Requests per wall-clock second.
    pub fn requests_per_sec(&self, wall: std::time::Duration) -> f64 {
        if wall.is_zero() {
            return 0.0;
        }
        self.requests as f64 / wall.as_secs_f64()
    }

    /// Fraction of extraction results served without a bridge walk.
    pub fn coalesce_rate(&self) -> f64 {
        if self.extractions == 0 {
            return 0.0;
        }
        self.coalesced as f64 / self.extractions as f64
    }
}

/// Counters a [`crate::WirePump`] keeps while it sweeps. Orthogonal to
/// [`ServeStats`] (which books engine work): these book the wire itself
/// — lanes, framings, frames, and the fairness machinery's decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireStats {
    /// Connections taken on as lanes.
    pub accepted: u64,
    /// Connections refused over the connection limit.
    pub refused: u64,
    /// Lanes whose first byte opened a binary hello handshake.
    pub hello_binary: u64,
    /// Lanes that spoke implicit newline-JSON.
    pub hello_lines: u64,
    /// Handshakes rejected for version skew.
    pub version_skews: u64,
    /// Routing frames answered with an error (client may retry).
    pub routing_retries: u64,
    /// Frames admitted into an engine.
    pub frames_in: u64,
    /// Reply frames encoded toward clients.
    pub frames_out: u64,
    /// Raw bytes read off all lanes.
    pub bytes_in: u64,
    /// Raw bytes written to all lanes.
    pub bytes_out: u64,
    /// Fatal framing failures (positioned diagnostics sent, lane closed).
    pub decode_errors: u64,
    /// Admissions deferred because the reply window or request queue was
    /// full — the backpressure gate that keeps the engine nonblocking.
    pub engine_busy: u64,
    /// Lane visits skipped because the client's out-buffer hit the
    /// stall limit.
    pub stalled_skips: u64,
    /// Most lanes ever concurrently live.
    pub lanes_max: u64,
    /// Full round-robin sweeps performed.
    pub sweeps: u64,
}

impl WireStats {
    /// Internal bookkeeping invariants for the wire layer.
    pub fn reconcile(&self) -> Result<(), String> {
        if self.hello_binary + self.hello_lines > self.accepted {
            return Err(format!(
                "more framing sniffs ({} + {}) than accepted lanes ({})",
                self.hello_binary, self.hello_lines, self.accepted
            ));
        }
        if self.version_skews > self.hello_binary {
            return Err(format!(
                "version skews ({}) exceed binary handshakes ({})",
                self.version_skews, self.hello_binary
            ));
        }
        if self.lanes_max > self.accepted {
            return Err(format!(
                "lane high-water ({}) exceeds accepted lanes ({})",
                self.lanes_max, self.accepted
            ));
        }
        Ok(())
    }

    /// Fold another pump's totals into this one. Counters sum;
    /// high-water marks take the max.
    pub fn absorb(&mut self, other: &WireStats) {
        self.accepted += other.accepted;
        self.refused += other.refused;
        self.hello_binary += other.hello_binary;
        self.hello_lines += other.hello_lines;
        self.version_skews += other.version_skews;
        self.routing_retries += other.routing_retries;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.decode_errors += other.decode_errors;
        self.engine_busy += other.engine_busy;
        self.stalled_skips += other.stalled_skips;
        self.lanes_max = self.lanes_max.max(other.lanes_max);
        self.sweeps += other.sweeps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_reconcile_and_absorb() {
        let a = WireStats {
            accepted: 4,
            hello_binary: 3,
            hello_lines: 1,
            version_skews: 1,
            frames_in: 10,
            frames_out: 9,
            lanes_max: 3,
            ..WireStats::default()
        };
        a.reconcile().unwrap();
        let b = WireStats {
            accepted: 2,
            hello_lines: 2,
            lanes_max: 2,
            ..WireStats::default()
        };
        let mut sum = a;
        sum.absorb(&b);
        assert_eq!(sum.accepted, 6);
        assert_eq!(sum.lanes_max, 3);
        sum.reconcile().unwrap();
        let bad = WireStats {
            accepted: 1,
            version_skews: 1,
            ..WireStats::default()
        };
        assert!(bad.reconcile().is_err());
    }

    #[test]
    fn reconcile_accepts_consistent_books() {
        let s = ServeStats {
            requests: 10,
            plot_requests: 8,
            extractions: 8,
            walks: 3,
            coalesced: 5,
            fulls_sent: 6,
            deltas_sent: 2,
            delta_bytes_saved: 1000,
            acks: 2,
            ..ServeStats::default()
        };
        s.reconcile().unwrap();
        assert!((s.coalesce_rate() - 0.625).abs() < 1e-9);
    }

    #[test]
    fn absorb_sums_counters_and_maxes_high_water() {
        let a = ServeStats {
            requests: 4,
            plot_requests: 3,
            extractions: 3,
            walks: 1,
            shared_hits: 2,
            fulls_sent: 3,
            queue_depth_max: 7,
            ..ServeStats::default()
        };
        let b = ServeStats {
            requests: 6,
            plot_requests: 5,
            extractions: 5,
            walks: 2,
            coalesced: 3,
            fulls_sent: 5,
            queue_depth_max: 3,
            ..ServeStats::default()
        };
        let mut sum = a;
        sum.absorb(&b);
        assert_eq!(sum.requests, 10);
        assert_eq!(sum.extractions, 8);
        assert_eq!(sum.shared_hits, 2);
        assert_eq!(sum.queue_depth_max, 7);
        sum.reconcile().unwrap();
    }

    #[test]
    fn reconcile_catches_lost_walks() {
        let s = ServeStats {
            extractions: 5,
            walks: 3,
            coalesced: 1,
            ..ServeStats::default()
        };
        assert!(s.reconcile().is_err());
    }

    #[test]
    fn reconcile_catches_unsaved_deltas() {
        let s = ServeStats {
            plot_requests: 2,
            extractions: 2,
            walks: 2,
            fulls_sent: 1,
            deltas_sent: 1,
            delta_bytes_saved: 0,
            requests: 2,
            ..ServeStats::default()
        };
        assert!(s.reconcile().is_err());
    }
}
