//! The evented wire pump: many connections, one poll thread.
//!
//! The old `Transport` pump was one blocking thread per client in
//! strict lock-step. [`WirePump`] replaces it with a readiness loop
//! over the same [`crate::Bounded`] primitives: every connection is a
//! *lane* (an [`Io`] plus decode/encode buffers and a small state
//! machine), and one thread sweeps all lanes round-robin, moving
//! whatever bytes and frames are ready and never parking on any single
//! peer. See DESIGN.md §17.
//!
//! **Fairness.** Each sweep visits the lanes in rotating round-robin
//! order and admits at most [`WireConfig::fair_budget`] frames per lane
//! into the engine, so a chatty client cannot starve its siblings.
//!
//! **The engine never blocks.** A lane only admits a frame while its
//! replies in flight are below the engine-side outbox capacity
//! ([`Connection::capacity`]) — so the engine's reply push always finds
//! room, no matter how stalled the client is. The full backpressure
//! chain: a client that stops reading fills the lane's out-buffer to
//! [`WireConfig::outbuf_limit`]; the pump then stops draining that
//! lane's outbox and stops admitting; the shared request queue fills
//! only with frames whose replies have reserved space. A stalled client
//! costs its siblings one skipped lane visit per sweep — measured by
//! the `serve_bench --soak` gate.
//!
//! **Framings.** The first byte of a lane picks its wire format
//! ([`crate::framing::sniff`]): a binary hello runs the version
//! handshake (skew → reject frame naming both versions, lane closed);
//! anything else is implicit newline-JSON. One endpoint serves both.
//!
//! **Routing.** Engine selection is a seam: [`ConnectRouter`] maps a
//! lane's first protocol frame to a [`Connection`]. The single-session
//! impl ([`SingleSession`]) connects everyone to one server and
//! forwards the frame; `vfleet` implements it with the `vattach`
//! handshake (consuming the frame, acking it, and pinning the engine
//! lease via the returned guard).

use std::any::Any;
use std::collections::VecDeque;
use std::io;
use std::sync::Arc;
use std::time::Duration;

use visualinux::proto::VResponse;

use crate::framing::{
    negotiate_server, parse_hello, sniff, BinaryFraming, DecodeBuf, Framing, LineFraming, Sniff,
    DEFAULT_MAX_FRAME, DEFAULT_MAX_LINE,
};
use crate::queue::Bounded;
use crate::server::{Connection, SendMode, ServerHandle};
use crate::stats::WireStats;
use crate::wire::Io;
use crate::ServeError;

/// Tuning knobs for a [`WirePump`].
#[derive(Debug, Clone, Copy)]
pub struct WireConfig {
    /// Lanes the pump will drive at once; connections beyond it are
    /// refused with a best-effort error payload.
    pub max_connections: usize,
    /// Frames admitted into the engine per lane per sweep — the
    /// round-robin fairness quantum.
    pub fair_budget: usize,
    /// Bytes buffered toward one client before the pump declares it
    /// stalled and skips its reads and reply drains.
    pub outbuf_limit: usize,
    /// Per-frame ceiling for binary lanes.
    pub max_frame: u32,
    /// Line-length ceiling for newline-JSON lanes.
    pub max_line: usize,
    /// Sleep when a full sweep moved nothing (the loop is poll-based).
    pub idle_sleep: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            max_connections: 1024,
            fair_budget: 4,
            outbuf_limit: 1 << 20,
            max_frame: DEFAULT_MAX_FRAME,
            max_line: DEFAULT_MAX_LINE,
            idle_sleep: Duration::from_micros(200),
        }
    }
}

/// Maps a fresh lane's first protocol frame to an engine connection.
pub trait ConnectRouter: Send {
    /// Decide where this lane's frames go. `first` is the lane's first
    /// decoded frame: a router that consumes it as a routing prefix
    /// (fleet `vattach`) returns `ack: Some(reply)`; a router that does
    /// not (single session) returns `ack: None` and the pump forwards
    /// `first` to the engine as an ordinary command. `Err(message)` is
    /// answered with a protocol error and the client may retry with
    /// another first frame.
    fn route(&self, first: &str) -> Result<RoutedConn, String>;
}

/// A routed engine connection plus whatever the router needs kept alive
/// for the lane's lifetime.
pub struct RoutedConn {
    /// The engine connection frames flow to.
    pub conn: Connection,
    /// Reply for the routing frame itself, if the router consumed it.
    pub ack: Option<String>,
    /// Dropped when the lane dies (e.g. a fleet's engine lease).
    pub guard: Option<Box<dyn Any + Send>>,
}

/// The trivial router: every lane connects to the same server, no
/// routing prefix.
pub struct SingleSession {
    handle: ServerHandle,
}

impl SingleSession {
    /// Route everything to `handle`'s server.
    pub fn new(handle: ServerHandle) -> SingleSession {
        SingleSession { handle }
    }
}

impl ConnectRouter for SingleSession {
    fn route(&self, _first: &str) -> Result<RoutedConn, String> {
        Ok(RoutedConn {
            conn: self.handle.connect(),
            ack: None,
            guard: None,
        })
    }
}

/// Where a lane is in its lifecycle.
enum Stage {
    /// Waiting for the first byte to pick the framing.
    Sniff,
    /// Binary: waiting for the 8-byte hello.
    Hello,
    /// Framing fixed; waiting for the first frame to route.
    Route,
    /// Routed: frames flow to the engine, replies flow back.
    Ready,
}

/// One connection under the pump.
struct Lane {
    io: Box<dyn Io>,
    stage: Stage,
    framing: Option<Box<dyn Framing>>,
    inbuf: DecodeBuf,
    outbuf: Vec<u8>,
    /// Decoded frames awaiting admission (bounded by `fair_budget`).
    pending: VecDeque<String>,
    conn: Option<Connection>,
    _guard: Option<Box<dyn Any + Send>>,
    /// Replies owed by the engine; admission stops at `window`.
    in_flight: usize,
    /// The engine-side outbox capacity (reply space reserved per admit).
    window: usize,
    /// Peer closed its write side; drain what remains, then finish.
    eof: bool,
    /// Flush the out-buffer, then die (fatal error or clean end).
    closing: bool,
    /// Remove this lane from the pump.
    dead: bool,
}

impl Lane {
    fn new(io: Box<dyn Io>) -> Lane {
        Lane {
            io,
            stage: Stage::Sniff,
            framing: None,
            inbuf: DecodeBuf::new(),
            outbuf: Vec::new(),
            pending: VecDeque::new(),
            conn: None,
            _guard: None,
            in_flight: 0,
            window: 0,
            eof: false,
            closing: false,
            dead: false,
        }
    }

    /// Encode a reply payload toward the client.
    fn push_reply(&mut self, payload: &str, stats: &mut WireStats) {
        if let Some(f) = &self.framing {
            f.encode(payload, &mut self.outbuf);
            stats.frames_out += 1;
        }
    }

    /// A fatal framing failure: answer with a positioned diagnostic (on
    /// lanes whose framing is known), then close.
    fn fail(&mut self, msg: String, stats: &mut WireStats) {
        stats.decode_errors += 1;
        let reply = VResponse::Err { message: msg }.to_json();
        self.push_reply(&reply, stats);
        self.closing = true;
    }
}

/// Hands new connections to a running pump. Clonable and `Send`.
#[derive(Clone)]
pub struct PumpHandle {
    intake: Arc<Bounded<Box<dyn Io>>>,
}

impl PumpHandle {
    /// Submit a freshly accepted connection; blocks while the intake
    /// queue is full. Fails once the pump is shutting down.
    pub fn add(&self, io: Box<dyn Io>) -> Result<(), ServeError> {
        self.intake.push(io).map_err(|_| ServeError::Closed)
    }

    /// Stop accepting connections; [`WirePump::run`] returns once every
    /// live lane has drained.
    pub fn shutdown(&self) {
        self.intake.close();
    }
}

/// The evented pump. Build it, clone a [`PumpHandle`] for the acceptor,
/// and give [`WirePump::run`] a thread.
pub struct WirePump {
    router: Box<dyn ConnectRouter>,
    cfg: WireConfig,
    intake: Arc<Bounded<Box<dyn Io>>>,
    lanes: Vec<Lane>,
    cursor: usize,
    stats: WireStats,
}

impl WirePump {
    /// A pump routing via `router`.
    pub fn new(router: Box<dyn ConnectRouter>, cfg: WireConfig) -> WirePump {
        WirePump {
            router,
            cfg,
            intake: Arc::new(Bounded::new(64)),
            lanes: Vec::new(),
            cursor: 0,
            stats: WireStats::default(),
        }
    }

    /// A handle for feeding connections in (and shutting the pump down).
    pub fn handle(&self) -> PumpHandle {
        PumpHandle {
            intake: self.intake.clone(),
        }
    }

    /// Drive every lane until the intake is shut down and the last lane
    /// drains. Returns the pump's wire totals.
    pub fn run(mut self) -> WireStats {
        loop {
            let mut progress = self.accept();
            let n = self.lanes.len();
            for i in 0..n {
                let idx = (self.cursor + i) % n;
                progress |= self.step(idx);
            }
            // Rotate the sweep's starting lane so admission budget
            // exhaustion (a full request queue) does not always bite the
            // same client.
            self.cursor = self.cursor.wrapping_add(1);
            self.lanes.retain(|l| !l.dead);
            self.stats.sweeps += 1;
            if self.lanes.is_empty() && self.intake.is_closed() && self.intake.is_empty() {
                return self.stats;
            }
            if !progress {
                std::thread::sleep(self.cfg.idle_sleep);
            }
        }
    }

    /// Pull newly accepted connections into lanes; refuse past the
    /// connection limit.
    fn accept(&mut self) -> bool {
        let mut progress = false;
        while let Some(mut io) = {
            // Only pop while there is room or we intend to refuse.
            self.intake.try_pop()
        } {
            progress = true;
            if self.lanes.len() >= self.cfg.max_connections {
                self.stats.refused += 1;
                // Best-effort: the framing is unknown this early, so the
                // refusal is a JSON line (legacy-readable) and the
                // connection is dropped either way.
                let msg = VResponse::Err {
                    message: format!("connection limit ({}) reached", self.cfg.max_connections),
                }
                .to_json();
                let _ = io.write(format!("{msg}\n").as_bytes());
                continue;
            }
            self.stats.accepted += 1;
            self.lanes.push(Lane::new(io));
            self.stats.lanes_max = self.stats.lanes_max.max(self.lanes.len() as u64);
        }
        progress
    }

    /// One visit to one lane: flush, drain replies, read, decode, admit.
    fn step(&mut self, idx: usize) -> bool {
        let mut progress = false;
        progress |= self.flush(idx);
        let lane = &mut self.lanes[idx];
        if lane.dead {
            return progress;
        }
        if lane.closing {
            if lane.outbuf.is_empty() {
                lane.dead = true;
            }
            return progress;
        }

        // Replies engine → client. A stalled client (out-buffer at the
        // limit) is skipped: its outbox keeps at most `window` replies —
        // space the admission gate already reserved — so the engine
        // still never blocks.
        let stalled = lane.outbuf.len() >= self.cfg.outbuf_limit;
        if stalled {
            self.stats.stalled_skips += 1;
        } else if let Some(conn) = &lane.conn {
            while lane.outbuf.len() < self.cfg.outbuf_limit {
                match conn.try_recv() {
                    Some(reply) => {
                        lane.in_flight = lane.in_flight.saturating_sub(1);
                        let f = lane.framing.as_ref().expect("routed lanes have a framing");
                        f.encode(&reply, &mut lane.outbuf);
                        self.stats.frames_out += 1;
                        progress = true;
                    }
                    None => {
                        if conn.is_closed() {
                            // Engine ended the stream (shutdown/evict);
                            // everything queued is drained.
                            lane.closing = true;
                        }
                        break;
                    }
                }
            }
        }

        // Bytes client → pump.
        if !stalled && !lane.eof {
            let mut chunk = [0u8; 16 * 1024];
            match self.lanes[idx].io.read(&mut chunk) {
                Ok(0) => {
                    self.lanes[idx].eof = true;
                    progress = true;
                }
                Ok(n) => {
                    self.lanes[idx].inbuf.extend(&chunk[..n]);
                    self.stats.bytes_in += n as u64;
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(_) => {
                    self.lanes[idx].dead = true;
                    return true;
                }
            }
        }

        progress |= self.advance(idx);
        progress
    }

    /// Decode and admit per the lane's stage.
    fn advance(&mut self, idx: usize) -> bool {
        let mut progress = false;
        loop {
            let lane = &mut self.lanes[idx];
            if lane.closing || lane.dead {
                return progress;
            }
            match lane.stage {
                Stage::Sniff => {
                    if lane.inbuf.is_empty() {
                        break;
                    }
                    let first = lane.inbuf.first_byte().expect("checked non-empty");
                    match sniff(first) {
                        Sniff::Binary => {
                            self.stats.hello_binary += 1;
                            lane.stage = Stage::Hello;
                        }
                        Sniff::Lines => {
                            self.stats.hello_lines += 1;
                            lane.framing =
                                Some(Box::new(LineFraming::with_max_line(self.cfg.max_line)));
                            lane.stage = Stage::Route;
                        }
                    }
                    progress = true;
                }
                Stage::Hello => match parse_hello(&mut lane.inbuf) {
                    Ok(None) => break,
                    Ok(Some(theirs)) => {
                        lane.framing =
                            Some(Box::new(BinaryFraming::with_max_frame(self.cfg.max_frame)));
                        match negotiate_server(theirs) {
                            Ok(accept) => {
                                lane.outbuf.extend_from_slice(&accept);
                                lane.stage = Stage::Route;
                            }
                            Err((_skew, reject)) => {
                                self.stats.version_skews += 1;
                                lane.outbuf.extend_from_slice(&reject);
                                lane.closing = true;
                            }
                        }
                        progress = true;
                    }
                    Err(_) => {
                        // A malformed hello: no framing was ever agreed,
                        // so there is nothing sensible to reply with.
                        self.stats.decode_errors += 1;
                        lane.closing = true;
                        progress = true;
                    }
                },
                Stage::Route => {
                    let f = lane.framing.as_ref().expect("set at sniff/hello");
                    match f.decode(&mut lane.inbuf) {
                        Ok(None) => break,
                        Ok(Some(frame)) => {
                            progress = true;
                            match self.router.route(&frame) {
                                Ok(routed) => {
                                    let lane = &mut self.lanes[idx];
                                    lane.window = routed.conn.capacity();
                                    lane.conn = Some(routed.conn);
                                    lane._guard = routed.guard;
                                    lane.stage = Stage::Ready;
                                    match routed.ack {
                                        Some(ack) => lane.push_reply(&ack, &mut self.stats),
                                        None => lane.pending.push_back(frame),
                                    }
                                }
                                Err(message) => {
                                    self.stats.routing_retries += 1;
                                    let reply = VResponse::Err { message }.to_json();
                                    self.lanes[idx].push_reply(&reply, &mut self.stats);
                                }
                            }
                        }
                        Err(e) => {
                            let msg = format!("frame error: {e}");
                            lane.fail(msg, &mut self.stats);
                            return true;
                        }
                    }
                }
                Stage::Ready => {
                    progress |= self.pump_ready(idx);
                    break;
                }
            }
        }
        self.finish_eof(idx);
        progress
    }

    /// Admit up to `fair_budget` frames from a routed lane.
    fn pump_ready(&mut self, idx: usize) -> bool {
        let budget = self.cfg.fair_budget;
        let mut admitted = 0;
        let mut progress = false;
        while admitted < budget {
            let lane = &mut self.lanes[idx];
            if lane.pending.is_empty() {
                let f = lane.framing.as_ref().expect("routed lanes have a framing");
                match f.decode(&mut lane.inbuf) {
                    Ok(Some(frame)) => lane.pending.push_back(frame),
                    Ok(None) => break,
                    Err(e) => {
                        let msg = format!("frame error: {e}");
                        lane.fail(msg, &mut self.stats);
                        return true;
                    }
                }
            }
            let lane = &mut self.lanes[idx];
            // Admission gate: only while replies in flight are below the
            // engine-side outbox capacity — the engine's reply push can
            // always land without blocking.
            if lane.in_flight >= lane.window {
                self.stats.engine_busy += 1;
                break;
            }
            let frame = lane.pending.front().expect("just ensured").clone();
            let conn = lane.conn.as_ref().expect("ready lanes are routed");
            match conn.send_frame(frame, SendMode::NonBlocking) {
                Ok(()) => {
                    lane.pending.pop_front();
                    lane.in_flight += 1;
                    admitted += 1;
                    self.stats.frames_in += 1;
                    progress = true;
                }
                Err(ServeError::Backpressure) => {
                    self.stats.engine_busy += 1;
                    break;
                }
                Err(_) => {
                    // Engine gone; flush what we owe and end the lane.
                    lane.closing = true;
                    return true;
                }
            }
        }
        progress
    }

    /// After EOF: check the residue is a clean frame boundary, wait out
    /// owed replies, then close.
    fn finish_eof(&mut self, idx: usize) {
        let lane = &mut self.lanes[idx];
        if !lane.eof || lane.closing || lane.dead {
            return;
        }
        if let Some(f) = &lane.framing {
            if !lane.inbuf.is_empty() {
                if let Err(e) = f.finish(&lane.inbuf) {
                    let msg = format!("frame error: {e}");
                    lane.fail(msg, &mut self.stats);
                    return;
                }
            }
        }
        let drained = lane.pending.is_empty() && lane.in_flight == 0;
        if drained {
            lane.closing = true;
        }
    }

    /// Push buffered bytes to the client; a stalled peer leaves them
    /// buffered (bounded by `outbuf_limit` upstream).
    fn flush(&mut self, idx: usize) -> bool {
        let lane = &mut self.lanes[idx];
        if lane.outbuf.is_empty() {
            return false;
        }
        let mut done = 0;
        loop {
            match lane.io.write(&lane.outbuf[done..]) {
                Ok(0) => break,
                Ok(n) => {
                    done += n;
                    self.stats.bytes_out += n as u64;
                    if done == lane.outbuf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    lane.dead = true;
                    return true;
                }
            }
        }
        lane.outbuf.drain(..done);
        done > 0
    }
}
