//! `kgen`: the corpus harness over [`ksim::corpus`].
//!
//! The corpus itself is *data* — [`ksim::corpus::ScenarioSpec`]s that dial
//! population scale and declare bug injections. This crate is the machinery
//! that turns a spec into checked artifacts:
//!
//! * **Ground truth** ([`check_ground_truth`]): the scenario's base image
//!   sweeps clean, the injected image's `kcheck` sweep reports exactly the
//!   declared findings (right class, right address where pinned) and
//!   nothing else.
//! * **Probes** ([`scoped_probe`] / [`FULL_PROBE`]): the two ViewCL
//!   programs the evaluation measures — a scoped per-process extraction
//!   whose wire-packet count must stay flat as the population grows, and
//!   a full task-list plot that is deliberately linear in it.
//! * **Captures** ([`record_scenario`] / [`replay_probe`]): record the
//!   scoped probe into a `.vrec` stamped with the spec's fingerprint, and
//!   replay it back to an identical graph with zero image access.
//!
//! CI drives all three for every corpus member (see `tests/prop_corpus.rs`
//! and `tests/corpus_replay.rs`).

use ksim::corpus::{ExpectedFinding, ScenarioSpec};
use visualinux::{PlotSpec, Session};

/// The deliberately population-linear probe: plot every task on the
/// system. Packet counts for this program must grow with the task count —
/// it is the control group that proves the scoped probe's flatness means
/// something.
pub const FULL_PROBE: &str = r#"
define T as Box<task_struct> [
    Text pid
    Text<string> comm
]
all = Box AllTasks [
    Container tasks: List(${&init_task.tasks}).forEach |node| {
        yield T<task_struct.tasks>(@node)
    }
]
plot @all
"#;

/// The scoped probe: the paper's Figure 9-2 (process 0's address space —
/// maple tree, VMAs, mapped files). Its cost depends on one process's
/// mm, not on the system population, so its wire-packet count must stay
/// (sub)flat from ~100 to ~10k tasks.
pub fn scoped_probe() -> &'static str {
    visualinux::figures::by_id("fig9-2")
        .expect("fig9-2 is a library figure")
        .viewcl
}

/// Convert a scenario's ground-truth findings into `kcheck` expectations.
pub fn to_expected(expected: &[ExpectedFinding]) -> Vec<kcheck::Expected> {
    expected
        .iter()
        .map(|e| kcheck::Expected {
            class: e.class.to_string(),
            addr: e.addr,
        })
        .collect()
}

/// Verify a corpus scenario's ground truth end to end:
///
/// 1. the scenario's *base* image (injections stripped) sweeps clean —
///    the generator itself plants no accidental corruption at any scale;
/// 2. the injected image's sweep reports every declared finding (same
///    checker class; same address where the spec pins one) and flags
///    nothing outside the declared classes.
///
/// Returns an error string naming the scenario and the first mismatch.
pub fn check_ground_truth(spec: &ScenarioSpec) -> Result<(), String> {
    if !spec.injections.is_empty() {
        let clean = ScenarioSpec {
            injections: Vec::new(),
            ..spec.clone()
        };
        let (builder, _) = Session::from_scenario(&clean);
        let s = builder
            .attach()
            .map_err(|e| format!("{}: base attach failed: {e:?}", spec.name))?;
        s.vcheck()
            .verify_expected(&[])
            .map_err(|e| format!("{}: pre-injection image not clean: {e}", spec.name))?;
    }
    let (builder, expected) = Session::from_scenario(spec);
    let s = builder
        .attach()
        .map_err(|e| format!("{}: attach failed: {e:?}", spec.name))?;
    s.vcheck()
        .verify_expected(&to_expected(&expected))
        .map_err(|e| format!("{}: {e}", spec.name))
}

/// Record the corpus probe for a scenario: attach a recording session
/// over the built (and injected) image, run the scoped probe, and return
/// the capture. The capture header carries the scenario name and spec
/// fingerprint, so a committed fixture can be refused when the spec it
/// was recorded from has changed.
pub fn record_scenario(spec: &ScenarioSpec) -> vbridge::Capture {
    let (builder, _) = Session::from_scenario(spec);
    // `.record` wants a save path, but we snapshot the tape in memory;
    // nothing is written unless the caller saves the capture itself.
    let mut s = builder
        .record("corpus.vrec")
        .attach()
        .expect("live attach cannot fail");
    s.plot(PlotSpec::Source(scoped_probe()))
        .expect("the scoped probe plots on every corpus image");
    s.capture().expect("recording session always has a capture")
}

/// Replay a corpus capture with zero image access and re-run the scoped
/// probe, returning the extracted graph's JSON. Byte-comparing this
/// against the live graph proves the `.vrec` is a complete, faithful
/// wire transcript of the scenario.
pub fn replay_probe(capture: vbridge::Capture) -> Result<String, String> {
    let s = Session::replay(capture)
        .attach()
        .map_err(|e| format!("replay attach failed: {e:?}"))?;
    let (graph, _) = s
        .extract(scoped_probe())
        .map_err(|e| format!("replayed probe extraction failed: {e:?}"))?;
    Ok(graph.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::corpus;

    #[test]
    fn ground_truth_holds_for_one_fault_and_one_clean_member() {
        check_ground_truth(&corpus::by_name("uaf-list").unwrap()).unwrap();
        check_ground_truth(&corpus::by_name("clean-100").unwrap()).unwrap();
    }

    #[test]
    fn recorded_capture_is_stamped_and_replays_identically() {
        let spec = corpus::by_name("refcount-leak").unwrap();
        let capture = record_scenario(&spec);
        let (name, fp) = capture.scenario().expect("capture must name its spec");
        assert_eq!(name, spec.name);
        assert_eq!(fp, spec.fingerprint());

        // Live graph == replayed graph, byte for byte.
        let (builder, _) = Session::from_scenario(&spec);
        let live = builder.attach().unwrap();
        let (live_graph, _) = live.extract(scoped_probe()).unwrap();
        assert_eq!(replay_probe(capture).unwrap(), live_graph.to_json());
    }

    #[test]
    fn recording_is_deterministic() {
        let spec = corpus::by_name("stale-pid").unwrap();
        let a = record_scenario(&spec).to_json();
        let b = record_scenario(&spec).to_json();
        assert_eq!(a, b, "same spec must record byte-identical captures");
    }
}
