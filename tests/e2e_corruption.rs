//! Fault-injection corpus end to end: `vcheck` flags every injected
//! corruption with a symbol-rooted path, a clean image stays silent, and
//! corrupted plots still render — annotated with diagnostics — within a
//! bounded packet budget.
//!
//! `FAULT_SEED` selects the corpus RNG seed so CI can sweep a matrix of
//! seeds over the same test body.

use ksim::faults::{self, FaultKind, ALL_FAULTS};
use ksim::workload::{build, Workload, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::{figures, PlotSpec, Session};

fn fault_seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

#[test]
fn clean_image_passes_every_checker() {
    let s = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .attach()
        .unwrap();
    let report = s.vcheck();
    assert!(report.is_clean(), "clean image: {}", report.summary());
    assert!(report.checkers_run > 10, "the sweep covers the image");
}

#[test]
fn every_injected_fault_is_flagged_with_a_symbol_rooted_path() {
    let seed = fault_seed();
    for kind in ALL_FAULTS {
        let mut w = build(&WorkloadConfig::default());
        let f = faults::inject(&mut w, kind, seed);
        let s = Session::builder(w)
            .profile(LatencyProfile::free())
            .attach()
            .unwrap();
        let report = s.vcheck();
        assert!(
            report.count_of(f.class()) >= 1,
            "{kind:?} (seed {seed}, {}) must be flagged as `{}`: {}",
            f.note,
            f.class(),
            report.summary()
        );
        for v in &report.violations {
            assert!(
                v.path.starts_with("init_task")
                    || v.path.starts_with("runqueues")
                    || v.path.starts_with("super_blocks")
                    || v.path.starts_with("slab_caches")
                    || v.path.starts_with("pid_hash"),
                "violation path must be symbol-rooted: {v:?}"
            );
        }
    }
}

/// An inline plot of the global task list — the structure the list
/// faults target.
const TASK_LIST_VIEWCL: &str = r#"
define T as Box<task_struct> [
    Text pid
    Text<string> comm
]
all = Box AllTasks [
    Container tasks: List(${&init_task.tasks}).forEach |node| {
        yield T<task_struct.tasks>(@node)
    }
]
plot @all
"#;

fn packets_of(w: Workload, viewcl: &str) -> (Session, vpanels::PaneId, u64, usize) {
    let mut s = Session::builder(w)
        .profile(LatencyProfile::free())
        .attach()
        .unwrap();
    let pane = s.plot(PlotSpec::Source(viewcl)).expect("plot must survive");
    let reads = s.plot_stats(pane).unwrap().target.reads;
    let diags = s
        .graph(pane)
        .unwrap()
        .boxes()
        .iter()
        .filter(|b| b.label == "Diag")
        .count();
    (s, pane, reads, diags)
}

#[test]
fn cross_linked_task_list_plots_with_diagnostic_within_packet_budget() {
    let (_, _, clean_reads, clean_diags) =
        packets_of(build(&WorkloadConfig::default()), TASK_LIST_VIEWCL);
    assert_eq!(clean_diags, 0, "clean plot carries no diagnostics");

    let mut w = build(&WorkloadConfig::default());
    let f = faults::inject(&mut w, FaultKind::ListCrossLink, fault_seed());
    let (s, pane, reads, diags) = packets_of(w, TASK_LIST_VIEWCL);
    assert!(diags >= 1, "the truncated list is annotated ({})", f.note);
    assert!(
        reads <= 2 * clean_reads,
        "corrupted plot must stay within 2x the clean packet count: {reads} vs {clean_reads}"
    );
    // The diagnostic names the cycle.
    let g = s.graph(pane).unwrap();
    let diag_text = g
        .boxes()
        .iter()
        .filter(|b| b.label == "Diag")
        .flat_map(|b| b.views.iter().flat_map(|v| &v.items))
        .find_map(|i| match i {
            vgraph::Item::Text { value, .. } => Some(value.clone()),
            _ => None,
        })
        .unwrap();
    assert!(diag_text.contains("cycle"), "{diag_text}");
}

/// Rewire the plotted (first leader's) address-space tree so its root
/// slot dangles into unmapped memory — the same mutation as
/// [`FaultKind::MapleEnodeDangle`], pinned to the tree `fig9-2` plots
/// (`current_task->mm`).
fn dangle_plotted_maple_root(w: &mut Workload) {
    use ksim::maple;
    let (mm_off, _) =
        w.kb.types
            .field_path(w.types.task.task_struct, "mm")
            .unwrap();
    let mm = w.kb.mem.read_uint(w.roots.leaders[0] + mm_off, 8).unwrap();
    let (mt_off, _) =
        w.kb.types
            .field_path(w.types.mm.mm_struct, "mm_mt")
            .unwrap();
    let (root_off, _) =
        w.kb.types
            .field_path(w.types.maple.maple_tree, "ma_root")
            .unwrap();
    let root = w.kb.mem.read_uint(mm + mt_off + root_off, 8).unwrap();
    assert!(maple::xa_is_node(root));
    let node = maple::mte_to_node(root);
    let slot0 = node + 8 + 8 * (maple::MAPLE_ARANGE64_SLOTS - 1);
    let dangling = maple::mt_mk_node(0xdead_0000_0000, maple::MapleType::Leaf64);
    w.kb.mem.write_uint(slot0, 8, dangling);
}

#[test]
fn dangling_maple_node_plots_with_diagnostic_within_packet_budget() {
    let fig = figures::by_id("fig9-2").unwrap();
    let (_, _, clean_reads, clean_diags) =
        packets_of(build(&WorkloadConfig::default()), fig.viewcl);
    assert_eq!(clean_diags, 0);

    let mut w = build(&WorkloadConfig::default());
    dangle_plotted_maple_root(&mut w);
    let (s, pane, reads, diags) = packets_of(w, fig.viewcl);
    assert!(diags >= 1, "the dangling subtree is annotated");
    assert!(
        reads <= 2 * clean_reads,
        "corrupted plot must stay within 2x the clean packet count: {reads} vs {clean_reads}"
    );
    // The wild reads were metered as faults, and vcheck sees the damage.
    assert!(s.plot_stats(pane).unwrap().target.faults >= 1);
    let report = s.vcheck();
    assert!(report.count_of("maple") >= 1, "{}", report.summary());
}

#[test]
fn scoped_vcheck_annotates_only_the_damaged_objects() {
    let mut w = build(&WorkloadConfig::default());
    faults::inject(&mut w, FaultKind::MaplePivotCorrupt, fault_seed());
    let mut s = Session::builder(w)
        .profile(LatencyProfile::free())
        .attach()
        .unwrap();
    let pane = s.plot(PlotSpec::Figure("fig3-4")).unwrap();
    let report = s
        .vcheck_scoped(
            pane,
            "t = SELECT task_struct FROM *\nm = SELECT mm_struct FROM REACHABLE(t)",
        )
        .unwrap();
    assert!(report.count_of("maple") >= 1, "{}", report.summary());
    let g = s.graph(pane).unwrap();
    let annotated: Vec<_> = g
        .boxes()
        .iter()
        .filter(|b| b.attrs.extra.contains_key("violations"))
        .collect();
    assert!(!annotated.is_empty());
    assert!(
        annotated.iter().all(|b| b.ctype == "mm_struct"),
        "only the damaged address spaces are marked"
    );
}
