//! Corpus properties: random scenario specs build valid (clean) images
//! at any dial setting, every declared injection is caught by `kcheck`
//! with the right class — and the right address where the spec pins one
//! — and corrupted corpus images never panic the distillers.

use kgen::{check_ground_truth, scoped_probe, to_expected, FULL_PROBE};
use ksim::corpus::{self, InjectionSpec, ScenarioSpec};
use ksim::faults::ALL_FAULTS;
use ksim::workload::WorkloadConfig;
use proptest::prelude::*;
use visualinux::Session;

fn arb_workload() -> impl Strategy<Value = WorkloadConfig> {
    (
        1usize..10,
        0usize..3,
        1usize..4,
        1usize..6,
        1usize..8,
        0usize..5,
        any::<u64>(),
    )
        .prop_map(
            |(
                processes,
                extra_threads,
                files_per_process,
                pages_per_file,
                anon_vmas,
                kthreads,
                seed,
            )| {
                WorkloadConfig {
                    processes,
                    extra_threads,
                    files_per_process,
                    pages_per_file,
                    anon_vmas,
                    kthreads,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Any dial setting generates a *valid* image: the full `kcheck`
    // sweep over a random clean spec finds nothing.
    #[test]
    fn random_clean_specs_build_valid_images(workload in arb_workload()) {
        let spec = ScenarioSpec {
            name: "prop-clean".into(),
            workload,
            injections: vec![],
        };
        if let Err(e) = check_ground_truth(&spec) {
            prop_assert!(false, "{:?}: {e}", spec.workload);
        }
    }

    // Every spec — any dials, any injection — round-trips through JSON
    // losslessly, with a content-stable fingerprint.
    #[test]
    fn random_specs_round_trip_through_json(
        workload in arb_workload(),
        pick in 0..ALL_FAULTS.len(),
        seed in any::<u64>(),
    ) {
        let spec = ScenarioSpec {
            name: "prop-roundtrip".into(),
            workload,
            injections: vec![InjectionSpec::Fault { kind: ALL_FAULTS[pick], seed }],
        };
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    // Every declared fault, at any victim-selection seed, is caught by
    // the sweep with the declared class (and exact address where the
    // spec pins one) — and nothing outside the declared classes fires.
    #[test]
    fn every_injected_fault_is_caught_with_the_right_ground_truth(
        pick in 0..ALL_FAULTS.len(),
        seed in 0u64..64,
    ) {
        let spec = ScenarioSpec {
            name: "prop-fault".into(),
            workload: WorkloadConfig::default(),
            injections: vec![InjectionSpec::Fault { kind: ALL_FAULTS[pick], seed }],
        };
        if let Err(e) = check_ground_truth(&spec) {
            prop_assert!(false, "{} seed {seed}: {e}", ALL_FAULTS[pick].name());
        }
    }

    // Distillers are corruption-tolerant: both evaluation probes run to
    // a verdict (graph or error) over any single-fault image — no panic,
    // no hang.
    #[test]
    fn probes_never_panic_on_corrupted_images(
        pick in 0..ALL_FAULTS.len(),
        seed in 0u64..32,
    ) {
        let spec = ScenarioSpec {
            name: "prop-tolerant".into(),
            workload: WorkloadConfig::default(),
            injections: vec![InjectionSpec::Fault { kind: ALL_FAULTS[pick], seed }],
        };
        let (builder, _) = Session::from_scenario(&spec);
        let s = builder.attach().unwrap();
        let _ = s.extract(scoped_probe());
        let _ = s.extract(FULL_PROBE);
    }
}

/// The whole shipped corpus honors its contract: base image clean,
/// injected sweep reports exactly the declared findings. This is the
/// ground-truth gate CI runs over all corpus members (the 10k rung's
/// sweep is covered by `e2e_performance_shape`, which builds it anyway).
#[test]
fn shipped_corpus_ground_truth_holds() {
    for spec in corpus::corpus() {
        if spec.name == "clean-10k" {
            continue;
        }
        check_ground_truth(&spec).unwrap();
    }
}

/// The CVE members re-express the hand-written case studies: StackRot
/// must be flagged as maple corruption, Dirty Pipe is structurally clean
/// (its empty expected-finding list *asserts* the sweep stays silent).
#[test]
fn cve_members_declare_the_case_study_ground_truth() {
    let sr = corpus::by_name("cve-2023-3269-stackrot").unwrap();
    let built = sr.build();
    assert_eq!(to_expected(&built.expected).len(), 1);
    assert_eq!(built.expected[0].class, "maple");

    let dp = corpus::by_name("cve-2022-0847-dirty-pipe").unwrap();
    assert!(dp.build().expected.is_empty());
}
