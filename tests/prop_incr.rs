//! Property: ksim dirty sets are sound and tight, and incremental
//! refresh is extraction-transparent.
//!
//! 1. **Sound & tight.** For any random tick sequence, the image's
//!    write log covers every byte the ticks changed (each
//!    `TickReport.dirty` range falls inside the logged set) and covers
//!    *nothing else* (every logged range falls inside the union of the
//!    reported tick writes) — the log neither misses a mutation nor
//!    pads one.
//!
//! 2. **Transparent.** For a random pane subset extracted between the
//!    stops of a random tick sequence, an incremental session's graphs
//!    are byte-identical to a plain session's fresh extractions at
//!    every stop — whether the refresh decision was a keep or a
//!    re-walk, and under either latency profile.

use ksim::workload::{build, WorkloadConfig};
use proptest::prelude::*;
use vbridge::{CacheConfig, DirtySet, LatencyProfile};
use visualinux::{figures, Session};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dirty_sets_are_sound_and_tight(
        steps in proptest::collection::vec(0u64..64, 1..8),
        processes in 2usize..7,
        seed in 0u64..32,
    ) {
        let cfg = WorkloadConfig { processes, seed, ..WorkloadConfig::default() };
        let (mut img, _types, roots) = build(&cfg).finish();
        img.mem.enable_dirty_tracking();
        let mut written: Vec<(u64, u64)> = Vec::new();
        for &step in &steps {
            let report = ksim::tick::tick(&mut img, &roots, step);
            written.extend_from_slice(&report.dirty);
        }
        let logged = DirtySet::from_ranges(
            img.mem.take_dirty().expect("tracking is on"),
        );
        let reported = DirtySet::from_ranges(written.iter().copied());
        // Sound: every byte a tick reported writing is in the log.
        for &(addr, len) in reported.ranges() {
            for b in addr..addr + len {
                prop_assert!(logged.covers(b), "changed byte {b:#x} not logged");
            }
        }
        // Tight: the log contains nothing the ticks did not write.
        for &(addr, len) in logged.ranges() {
            for b in addr..addr + len {
                prop_assert!(reported.covers(b), "logged byte {b:#x} never written");
            }
        }
    }

    #[test]
    fn incremental_refresh_equals_fresh_extraction(
        subset in proptest::collection::vec(0usize..21, 1..5),
        steps in proptest::collection::vec(0u64..64, 1..4),
        profile_coin in 0u8..2,
        seed in 0u64..32,
    ) {
        let profile = if profile_coin == 0 {
            LatencyProfile::gdb_qemu()
        } else {
            LatencyProfile::kgdb_rpi400()
        };
        let cfg = WorkloadConfig { seed, ..WorkloadConfig::default() };
        let mut incr = Session::builder(build(&cfg))
            .profile(profile)
            .cache(CacheConfig::default())
            .incremental()
            .attach()
            .unwrap();
        let mut fresh = Session::builder(build(&cfg)).profile(profile).attach().unwrap();

        let extract_all = |incr: &Session, fresh: &Session| -> Result<(), TestCaseError> {
            for &idx in &subset {
                let fig = &figures::all()[idx];
                let (g_i, _) = incr.extract(fig.viewcl).expect(fig.id);
                let (g_f, _) = fresh.extract(fig.viewcl).expect(fig.id);
                prop_assert_eq!(
                    g_i.to_json(),
                    g_f.to_json(),
                    "incremental drift on {}",
                    fig.id
                );
            }
            Ok(())
        };

        extract_all(&incr, &fresh)?;
        for &step in &steps {
            let roots = incr.roots.clone();
            incr.stop_event(|img| { ksim::tick::tick(img, &roots, step); }).unwrap();
            let roots = fresh.roots.clone();
            fresh.stop_event(|img| { ksim::tick::tick(img, &roots, step); }).unwrap();
            extract_all(&incr, &fresh)?;
        }
    }
}
