//! Property: under any fault-injection sequence at any seed, every
//! distiller terminates without panicking, ViewQL `REACHABLE()` queries
//! terminate, and the `vcheck` sweep flags each injected fault class.

use std::collections::HashSet;

use ksim::faults::{self, ALL_FAULTS};
use ksim::workload::{build, WorkloadConfig};
use proptest::prelude::*;
use vbridge::LatencyProfile;
use visualinux::{PlotSpec, Session};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn distillers_and_queries_survive_any_fault_mix(
        picks in proptest::collection::vec(0..ALL_FAULTS.len(), 1..4),
        seed in 0u64..64,
    ) {
        // Inject at most one fault per checker class (stacking faults of
        // the same class can make the second injection's own victim
        // selection chase the first corruption).
        let mut w = build(&WorkloadConfig::default());
        let mut classes: HashSet<&'static str> = HashSet::new();
        for (i, p) in picks.iter().enumerate() {
            let kind = ALL_FAULTS[*p];
            if !classes.insert(kind.class()) {
                continue;
            }
            faults::inject(&mut w, kind, seed.wrapping_add(i as u64));
        }

        let mut s = Session::builder(w).profile(LatencyProfile::free()).attach().unwrap();
        // Every figure distiller family terminates and plots: lists +
        // rbtree (fig3-4 children, fig7-1 timeline), maple tree +
        // xarray + fd tables (fig9-2, fig12-3).
        for fig in ["fig3-4", "fig7-1", "fig9-2", "fig12-3"] {
            let pane = s.plot(PlotSpec::Figure(fig));
            prop_assert!(pane.is_ok(), "{fig} must plot: {:?}", pane.err());
        }
        // REACHABLE() over the corrupted plots terminates.
        let report = s.vcheck_scoped(
            vpanels::PaneId(0),
            "t = SELECT task_struct FROM *\nr = SELECT mm_struct FROM REACHABLE(t)",
        );
        prop_assert!(report.is_ok(), "{:?}", report.err());

        // The full sweep flags every injected class.
        let sweep = s.vcheck();
        for class in classes {
            prop_assert!(
                sweep.count_of(class) >= 1,
                "class `{class}` not flagged (seed {seed}): {}",
                sweep.summary()
            );
        }
    }

    #[test]
    fn clean_images_stay_clean_at_any_seed(seed in 0u64..256) {
        let w = build(&WorkloadConfig { seed, ..Default::default() });
        let s = Session::builder(w).profile(LatencyProfile::free()).attach().unwrap();
        let report = s.vcheck();
        prop_assert!(report.is_clean(), "seed {seed}: {}", report.summary());
    }
}
