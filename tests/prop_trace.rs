//! Property: vtrace span trees are well-formed and their counters
//! reconcile with `TargetStats` *exactly*, under any workload shape,
//! latency profile, cache mode, and figure.
//!
//! The tracer's clock is advanced only by the bridge's own metering
//! callbacks — one mirrored increment per `TargetStats` cell update —
//! and spans record clock deltas, so the sums must telescope: for every
//! pane, Σ own-counters over the span tree == the root's inclusive
//! counters == the extraction's `TargetStats` projection, in integer
//! nanoseconds with no rounding anywhere.

use ksim::workload::{build, WorkloadConfig};
use proptest::prelude::*;
use vbridge::{CacheConfig, LatencyProfile, TargetStats};
use visualinux::{figures, PlotSpec, Session};
use vtrace::{Counters, SpanKind, TraceSpan};

fn assert_reconciles(trace: &TraceSpan, target: TargetStats) -> Result<(), TestCaseError> {
    prop_assert!(
        trace.check_well_formed().is_ok(),
        "ill-formed: {:?}",
        trace.check_well_formed()
    );
    let tot = trace.totals();
    prop_assert_eq!(tot.packets, target.reads, "packets != reads");
    prop_assert_eq!(tot.bytes, target.bytes, "bytes drift");
    prop_assert_eq!(tot.virtual_ns, target.virtual_ns, "virtual time drift");
    prop_assert_eq!(tot.cache_hits, target.cache_hits, "cache hit drift");
    prop_assert_eq!(tot.faults, target.faults, "fault drift");
    // Telescoping: exclusive shares sum back to the inclusive root.
    prop_assert_eq!(trace.leaf_totals(), tot);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn span_trees_reconcile_with_target_stats(
        fig_idx in 0usize..21,
        profile_idx in 0usize..3,
        cached_coin in 0u8..2,
        processes in 2usize..7,
        seed in 0u64..32,
    ) {
        let profile = match profile_idx {
            0 => LatencyProfile::free(),
            1 => LatencyProfile::gdb_qemu(),
            _ => LatencyProfile::kgdb_rpi400(),
        };
        let cached = cached_coin == 1;
        let cfg = WorkloadConfig { processes, seed, ..WorkloadConfig::default() };
        let mut s = if cached {
            Session::builder(build(&cfg)).profile(profile).cache(CacheConfig::default()).attach().unwrap()
        } else {
            Session::builder(build(&cfg)).profile(profile).attach().unwrap()
        };
        s.enable_tracing();

        let fig = &figures::all()[fig_idx];
        let pane = s.plot(PlotSpec::Figure(fig.id)).unwrap();
        let stats = s.plot_stats(pane).unwrap().target;
        let trace = s.vtrace(pane).expect("trace recorded for the pane");
        assert_reconciles(&trace, stats)?;

        // Timestamps are monotone along any root-to-leaf path and the
        // extraction decomposes into parse + interp stages.
        let flat = trace.flatten();
        prop_assert!(flat.iter().all(|sp| sp.start_ns <= sp.end_ns));
        let kinds: Vec<SpanKind> = flat.iter().map(|sp| sp.kind).collect();
        prop_assert!(kinds.contains(&SpanKind::Extract));
        prop_assert!(kinds.contains(&SpanKind::Parse));
        prop_assert!(kinds.contains(&SpanKind::Interp));

        // A wire-silent refinement lands a Query span on the pane and
        // changes no counter.
        s.vctrl_refine(pane, "a = SELECT task_struct FROM *").unwrap();
        let refined = s.vtrace(pane).unwrap();
        assert_reconciles(&refined, stats)?;
        prop_assert!(refined.flatten().iter().any(|sp| sp.kind == SpanKind::Query));

        // Cached sessions: a warm re-plot of the same figure reconciles
        // against its own (cache-hit heavy) stats too.
        if cached {
            let warm = s.plot(PlotSpec::Figure(fig.id)).unwrap();
            let warm_stats = s.plot_stats(warm).unwrap().target;
            let warm_trace = s.vtrace(warm).unwrap();
            assert_reconciles(&warm_trace, warm_stats)?;
            if profile_idx != 0 {
                prop_assert!(warm_stats.virtual_ns <= stats.virtual_ns);
            }
        }

        // The wire log saw every packet and every cache hit (plus at
        // most one standalone probe per fault), even if the ring only
        // retains the newest entries.
        let tracer = s.tracer().unwrap();
        let clock: Counters = tracer.clock();
        prop_assert!(tracer.wire_seen() >= clock.packets + clock.cache_hits);
        prop_assert!(tracer.wire_seen() <= clock.packets + clock.cache_hits + clock.faults);
    }
}
