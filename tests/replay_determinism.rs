//! Record/replay determinism (the tentpole property of the `.vrec`
//! capture format): every library figure, recorded under both latency
//! profiles, must replay from the capture alone — zero live image
//! access — with byte-identical graph JSON and bit-identical
//! `TargetStats` (modulo the backend tag). And a *truncated* capture
//! must fail with a diagnostic, never a panic.

use std::sync::OnceLock;

use ksim::workload::{build, WorkloadConfig};
use proptest::prelude::*;
use vbridge::{BackendKind, CacheConfig, Capture, LatencyProfile, TargetStats};
use visualinux::{figures, Session};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("visualinux-{name}-{}.vrec", std::process::id()))
}

/// Record all 21 figures (with a `resume()` before each, so every
/// figure starts from a fresh cache epoch), then replay the identical
/// sequence from the saved capture and demand byte/bit identity.
fn round_trip(name: &str, profile: LatencyProfile, cache: Option<CacheConfig>) {
    let path = tmp(name);
    let mut builder = Session::builder(build(&WorkloadConfig::default()))
        .profile(profile)
        .record(&path);
    if let Some(cfg) = cache {
        builder = builder.cache(cfg);
    }
    let mut live = builder.attach().expect("live attach cannot fail");

    let mut recorded: Vec<(&str, String, TargetStats)> = Vec::new();
    for fig in figures::all() {
        live.resume();
        let (graph, stats) = live.extract(fig.viewcl).expect(fig.id);
        recorded.push((fig.id, graph.to_json(), stats.target));
    }
    let saved = live.save_recording().expect("write capture");
    drop(live);

    let cap = Capture::load(&saved).expect("reload capture");
    let mut rep = Session::replay(cap).attach().expect("replay attach");
    assert_eq!(rep.backend_kind(), BackendKind::Replay);
    assert_eq!(
        rep.image().mem.mapped_pages(),
        0,
        "replay session must not hold live memory"
    );
    for (id, want_json, want_stats) in &recorded {
        rep.resume();
        let fig = figures::by_id(id).unwrap();
        let (graph, stats) = rep.extract(fig.viewcl).expect(id);
        assert_eq!(&graph.to_json(), want_json, "{id}: graph JSON drifted");
        assert_eq!(
            TargetStats {
                backend: want_stats.backend,
                ..stats.target
            },
            *want_stats,
            "{id}: TargetStats drifted"
        );
        assert_eq!(stats.target.backend, BackendKind::Replay);
    }
    assert_eq!(
        rep.replay_state().unwrap().remaining(),
        0,
        "capture has unconsumed wire events"
    );
    std::fs::remove_file(&saved).ok();
}

#[test]
fn all_figures_replay_bit_identical_kgdb_cached() {
    round_trip(
        "kgdb",
        LatencyProfile::kgdb_rpi400(),
        Some(CacheConfig::default()),
    );
}

#[test]
fn all_figures_replay_bit_identical_qemu_uncached() {
    round_trip("qemu", LatencyProfile::gdb_qemu(), None);
}

/// One figure's worth of wire events, recorded once and shared across
/// proptest cases (each case still rebuilds its own replay session).
fn one_figure_capture() -> &'static Capture {
    static CAPTURE: OnceLock<Capture> = OnceLock::new();
    CAPTURE.get_or_init(|| {
        let session = Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::free())
            .record(tmp("truncate"))
            .attach()
            .unwrap();
        let fig = figures::by_id("fig3-4").unwrap();
        session.extract(fig.viewcl).unwrap();
        session.capture().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    // Replaying any strict prefix of a capture fails loudly: the
    // extraction returns a capture error naming the exhaustion point,
    // the replay state is poisoned, and nothing panics.
    #[test]
    fn truncated_captures_fail_with_a_diagnostic_never_a_panic(cut in 0usize..10_000) {
        let cap = one_figure_capture();
        let cut = cut % cap.events.len();
        let mut truncated = cap.clone();
        truncated.events.truncate(cut);

        let rep = Session::replay(truncated)
            .attach()
            .expect("attach succeeds; the failure must surface at read time");
        let fig = figures::by_id("fig3-4").unwrap();
        let err = rep
            .extract(fig.viewcl)
            .expect_err("extracting past a truncated capture must fail");
        let msg = err.to_string();
        prop_assert!(
            msg.contains("capture exhausted"),
            "diagnostic does not name the exhaustion: {msg}"
        );
        prop_assert!(
            rep.replay_state().unwrap().poisoned().is_some(),
            "replay state not poisoned after exhaustion"
        );
    }
}
