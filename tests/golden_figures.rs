//! Golden-snapshot lockdown of all 21 paper figures (Table 2).
//!
//! For every figure in `figures::all()` the test renders the default
//! workload as text and Graphviz DOT and compares against the committed
//! goldens under `tests/goldens/<id>.txt` / `tests/goldens/<id>.dot`.
//! A drift in any distiller, decorator, layout, or renderer shows up as
//! a diff here instead of silently reshaping 21 figures.
//!
//! Regenerating after an *intentional* rendering change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p visualinux --test golden_figures
//! git diff tests/goldens/   # review every changed figure, then commit
//! ```
//!
//! The workload builder and the virtual-time bridge are fully
//! deterministic (no ASLR, no wall clock), so the goldens are
//! byte-stable across machines.

use std::fs;
use std::path::PathBuf;

use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::{figures, PlotSpec, Session};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

fn check_or_update(id: &str, ext: &str, rendered: &str, drift: &mut Vec<String>) {
    let path = golden_dir().join(format!("{id}.{ext}"));
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&path, rendered).unwrap();
        return;
    }
    match fs::read_to_string(&path) {
        Err(_) => drift.push(format!("{id}.{ext}: golden missing (run UPDATE_GOLDENS=1)")),
        Ok(golden) => {
            if golden != rendered {
                let first = golden
                    .lines()
                    .zip(rendered.lines())
                    .position(|(g, r)| g != r)
                    .map(|n| n + 1)
                    .unwrap_or_else(|| golden.lines().count().min(rendered.lines().count()) + 1);
                drift.push(format!(
                    "{id}.{ext}: differs from golden starting at line {first} \
                     ({} golden lines vs {} rendered)",
                    golden.lines().count(),
                    rendered.lines().count()
                ));
            }
        }
    }
}

#[test]
fn all_figures_match_goldens() {
    let mut s = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .attach()
        .unwrap();
    let figs = figures::all();
    assert_eq!(figs.len(), 21, "Table 2 has 21 figures");
    let mut drift = Vec::new();
    for fig in &figs {
        let pane = s
            .plot(PlotSpec::Figure(fig.id))
            .unwrap_or_else(|e| panic!("{} must plot: {e}", fig.id));
        let text = s.render_text(pane).unwrap();
        let dot = s.render_dot(pane).unwrap();
        check_or_update(fig.id, "txt", &text, &mut drift);
        check_or_update(fig.id, "dot", &dot, &mut drift);
    }
    assert!(
        drift.is_empty(),
        "{} golden mismatches:\n  {}",
        drift.len(),
        drift.join("\n  ")
    );
}

#[test]
fn goldens_have_no_stray_files() {
    // Every file under tests/goldens/ must correspond to a live figure —
    // a renamed or deleted figure may not leave a stale golden behind.
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        return;
    }
    let ids: Vec<&str> = figures::all().iter().map(|f| f.id).collect();
    let mut stray = Vec::new();
    for entry in fs::read_dir(golden_dir()).expect("tests/goldens exists") {
        let name = entry.unwrap().file_name().into_string().unwrap();
        let stem = name.rsplit_once('.').map(|(s, _)| s).unwrap_or(&name);
        if !ids.contains(&stem) {
            stray.push(name);
        }
    }
    assert!(stray.is_empty(), "stale goldens: {stray:?}");
}
