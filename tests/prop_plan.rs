//! Property: plan-mode extraction is graph-transparent and
//! schedule-deterministic for *any* pane subset.
//!
//! The walk plan only warms the cache; the interpreter that follows is
//! the source of truth. So for a randomized subset of Table 2 figures,
//! extracted in randomized order, over a randomized workload:
//!
//! 1. the plan-mode vgraph JSON is byte-identical to the interp-mode
//!    JSON, figure by figure, and
//! 2. two independent plan-mode runs of the same subset report
//!    *identical* `TargetStats` — including `plan_nodes`,
//!    `dedup_walks` and `parallel_batches`, which must derive from the
//!    deterministic schedule and never from worker-thread timing.

use ksim::workload::{build, WorkloadConfig};
use proptest::prelude::*;
use vbridge::{CacheConfig, LatencyProfile, TargetStats};
use visualinux::{figures, Session};

fn plan_session(cfg: &WorkloadConfig, profile: LatencyProfile) -> Session {
    Session::builder(build(cfg))
        .profile(profile)
        .cache(CacheConfig::default())
        .plan()
        .attach()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_pane_subsets_plan_equals_interp(
        subset in proptest::collection::vec(0usize..21, 1..6),
        profile_coin in 0u8..2,
        processes in 2usize..7,
        seed in 0u64..32,
    ) {
        let profile = if profile_coin == 0 {
            LatencyProfile::gdb_qemu()
        } else {
            LatencyProfile::kgdb_rpi400()
        };
        let cfg = WorkloadConfig { processes, seed, ..WorkloadConfig::default() };

        let interp = Session::builder(build(&cfg)).profile(profile).attach().unwrap();
        let plan_a = plan_session(&cfg, profile);
        let plan_b = plan_session(&cfg, profile);

        let mut stats_a: Vec<TargetStats> = Vec::new();
        let mut stats_b: Vec<TargetStats> = Vec::new();
        for &idx in &subset {
            let fig = &figures::all()[idx];
            let (g_i, _) = interp.extract(fig.viewcl).expect(fig.id);
            let (g_a, s_a) = plan_a.extract(fig.viewcl).expect(fig.id);
            let (g_b, s_b) = plan_b.extract(fig.viewcl).expect(fig.id);
            prop_assert_eq!(g_i.to_json(), g_a.to_json(), "plan graph drift on {}", fig.id);
            prop_assert_eq!(g_a.to_json(), g_b.to_json(), "plan runs disagree on {}", fig.id);
            stats_a.push(s_a.target);
            stats_b.push(s_b.target);
        }
        // Determinism: the full stats vectors — wire costs and plan
        // counters alike — match across independent parallel runs.
        prop_assert_eq!(stats_a, stats_b);
    }
}
