//! Every inline listing of the paper, §1–§3, executed end to end against
//! the simulated kernel.

use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use vgraph::Item;
use visualinux::{PlotSpec, Session};

fn session() -> Session {
    Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .attach()
        .unwrap()
}

/// §1: the intro's ViewCL + ViewQL pair.
#[test]
fn section1_runqueue_listing() {
    let mut s = session();
    let pane = s
        .plot(PlotSpec::Source(
            r#"
define Task as Box<task_struct> [
    Text pid, comm
    Text ppid: ${@this.parent != NULL ? @this.parent->pid : 0}
    Text<string> state: ${task_state(@this)}
    Text se.vruntime
]
root = ${cpu_rq(0)->cfs.tasks_timeline}
sched_tree = RBTree(@root).forEach |node| {
    yield Task<task_struct.se.run_node>(@node)
}
plot @sched_tree
"#,
        ))
        .unwrap();
    let n_before = s.graph(pane).unwrap().boxes().len();
    assert!(n_before >= 3);

    // §1's ViewQL: keep process 100 and its children, collapse the rest.
    s.vctrl_refine(
        pane,
        r#"
task_all = SELECT task_struct FROM *
task_2 = SELECT task_struct FROM task_all WHERE pid == 100 OR ppid == 100
UPDATE task_all \ task_2 WITH collapsed: true
"#,
    )
    .unwrap();
    let g = s.graph(pane).unwrap();
    for b in g.boxes().iter().filter(|b| b.ctype == "task_struct") {
        let pid = b.member_raw("pid", g).unwrap();
        let ppid = b.member_raw("ppid", g).unwrap();
        assert_eq!(
            b.attrs.collapsed,
            pid != 100 && ppid != 100,
            "pid {pid} ppid {ppid}"
        );
    }
}

/// §2.2: three views of a task_struct with `=>` inheritance.
#[test]
fn section2_2_view_inheritance_listing() {
    let mut s = session();
    let pane = s
        .plot(PlotSpec::Source(
            r#"
define RQ as Box<rq> [
    Text cpu, nr_running
]
define Task as Box<task_struct> {
    :default [
        Text pid, comm
    ]
    :default => :sched [
        Text se.vruntime
    ]
    :sched => :sched_rq [
        Link runqueue -> @rq
    ] where {
        rq = RQ(${cpu_rq(0)})
    }
}
t = Task(${current_task})
plot @t
"#,
        ))
        .unwrap();
    let g = s.graph(pane).unwrap();
    let b = g.get(g.roots[0]);
    assert_eq!(b.views.len(), 3);
    // :sched_rq includes pid, comm, se.vruntime and the runqueue link.
    let names: Vec<&str> = b.views[2].items.iter().map(|i| i.name()).collect();
    assert_eq!(names, vec!["pid", "comm", "se.vruntime", "runqueue"]);
}

/// §2.3: the user-threads / writable-areas customization pair.
#[test]
fn section2_3_customization_listings() {
    let mut s = session();
    let pane = s.plot(PlotSpec::Figure("fig3-4")).unwrap();
    s.vctrl_refine(
        pane,
        r#"
user_threads = SELECT task_struct FROM * WHERE mm != NULL
UPDATE user_threads WITH view: show_children
"#,
    )
    .unwrap();
    let g = s.graph(pane).unwrap();
    let (user, kernel): (Vec<_>, Vec<_>) = g
        .boxes()
        .iter()
        .filter(|b| b.ctype == "task_struct")
        .partition(|b| b.member_raw("mm", g).unwrap_or(0) != 0);
    assert!(user
        .iter()
        .all(|b| b.attrs.view.as_deref() == Some("show_children")));
    assert!(kernel.iter().all(|b| b.attrs.view.is_none()));

    // Writable-VMA trim on the address-space figure.
    let pane = s.plot(PlotSpec::Figure("fig9-2")).unwrap();
    s.vctrl_refine(
        pane,
        r#"
non_writable_vmas = SELECT vm_area_struct FROM * WHERE is_writable != true
UPDATE non_writable_vmas WITH collapsed: true
"#,
    )
    .unwrap();
    let g = s.graph(pane).unwrap();
    for b in g.boxes().iter().filter(|b| b.ctype == "vm_area_struct") {
        let writable = b.member_raw("is_writable", g).unwrap_or(0) == 1;
        assert_eq!(b.attrs.collapsed, !writable);
    }
}

/// §2.4: the natural-language request of the paper, verbatim.
#[test]
fn section2_4_vchat_listing() {
    let mut s = session();
    let pane = s.plot(PlotSpec::Figure("fig3-4")).unwrap();
    let out = s
        .vchat(
            pane,
            "display the task_structs that have non-null mm members with the show_mm view",
            true,
        )
        .unwrap();
    assert!(out.viewql.contains("mm != NULL"), "{}", out.viewql);
    assert!(out.viewql.contains("view: show_mm"), "{}", out.viewql);
}

/// §5.2: the LLM-generated superblock program from the paper, verbatim.
#[test]
fn section5_2_superblock_listing() {
    let mut s = session();
    let pane = s.plot(PlotSpec::Figure("fig14-3")).unwrap();
    s.vctrl_refine(
        pane,
        r#"
a = SELECT List FROM *
UPDATE a WITH direction: vertical
b = SELECT super_block FROM * WHERE s_bdev == NULL
UPDATE b WITH collapsed: true
"#,
    )
    .unwrap();
    let g = s.graph(pane).unwrap();
    // The List virtual box's container is vertical now.
    let list = g.boxes().iter().find(|b| b.label == "List").unwrap();
    let vertical = list.views.iter().flat_map(|v| &v.items).any(|i| {
        matches!(i, Item::Container { attrs, .. } if attrs.direction.as_deref() == Some("vertical"))
    }) || list.attrs.direction.as_deref() == Some("vertical");
    assert!(vertical);
    // tmpfs and proc collapsed; ext4 (disk-backed) not.
    let collapsed: Vec<bool> = g
        .boxes()
        .iter()
        .filter(|b| b.ctype == "super_block")
        .map(|b| b.attrs.collapsed)
        .collect();
    assert_eq!(collapsed, vec![false, true, true]);
}

/// The detached front-end speaks JSON (§4.2): a plotted graph survives
/// the wire format with its ViewQL attributes.
#[test]
fn graph_json_wire_format_round_trip() {
    let mut s = session();
    let pane = s.plot(PlotSpec::Figure("fig7-1")).unwrap();
    s.vctrl_refine(
        pane,
        "a = SELECT task_struct FROM *\nUPDATE a WITH view: sched",
    )
    .unwrap();
    let g = s.graph(pane).unwrap();
    let json = g.to_json();
    let g2 = vgraph::Graph::from_json(&json).unwrap();
    assert_eq!(g.len(), g2.len());
    for (a, b) in g.boxes().iter().zip(g2.boxes()) {
        assert_eq!(a.attrs.view, b.attrs.view);
        assert_eq!(a.views, b.views);
    }
}
