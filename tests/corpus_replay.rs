//! The corpus replay matrix: every corpus scenario records a `.vrec` of
//! the scoped evaluation probe, the small ones are committed as fixtures
//! under `tests/fixtures/corpus/`, and CI proves that
//!
//! 1. a fresh recording is **byte-identical** to the committed fixture
//!    (so the generator, the wire stack and the serializer are all
//!    deterministic — and a spec change without a fixture refresh fails
//!    loudly, because the capture embeds the spec fingerprint);
//! 2. replaying the fixture with zero image access reproduces the exact
//!    graph the live session extracted.
//!
//! Refresh after an intentional change with:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test -p kgen --test corpus_replay
//! ```

use std::path::PathBuf;

use kgen::{record_scenario, replay_probe, scoped_probe};
use ksim::corpus;
use vbridge::Capture;
use visualinux::Session;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/corpus")
}

/// Scenarios whose fixtures are committed: every fault/CVE member plus
/// the smallest clean rung. The 1k/10k rungs record multi-hundred-KB
/// captures for the same flat probe, so they round-trip through a temp
/// file instead of the repository (`big_rungs_replay_byte_identically`).
fn committed(name: &str) -> bool {
    !matches!(name, "clean-1k" | "clean-10k")
}

#[test]
fn committed_fixtures_are_current_and_replay_byte_identically() {
    let dir = fixture_dir();
    let update = std::env::var_os("UPDATE_FIXTURES").is_some();
    if update {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut drift = Vec::new();
    for spec in corpus::corpus().into_iter().filter(|s| committed(&s.name)) {
        let fresh = record_scenario(&spec);
        let path = dir.join(format!("{}.vrec", spec.name));
        if update {
            std::fs::write(&path, fresh.to_json()).unwrap();
            continue;
        }
        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                drift.push(format!(
                    "{}: fixture missing (run UPDATE_FIXTURES=1)",
                    spec.name
                ));
                continue;
            }
        };
        // Byte-identical: generator + wire stack + serializer are all
        // deterministic, and the committed fixture is current.
        if fresh.to_json() != committed {
            drift.push(format!(
                "{}: fresh recording differs from committed fixture \
                 (spec changed? run UPDATE_FIXTURES=1 and review)",
                spec.name
            ));
            continue;
        }

        // The fixture names the spec it was recorded from.
        let capture = Capture::from_json(&committed).unwrap();
        let (name, fp) = capture.scenario().expect("corpus fixtures are stamped");
        assert_eq!(name, spec.name);
        assert_eq!(
            fp,
            spec.fingerprint(),
            "{}: fixture was recorded from a different spec revision",
            spec.name
        );

        // Replaying the committed bytes reproduces the live graph.
        let (builder, _) = Session::from_scenario(&spec);
        let live = builder.attach().unwrap();
        let (live_graph, _) = live.extract(scoped_probe()).unwrap();
        assert_eq!(
            replay_probe(capture).unwrap(),
            live_graph.to_json(),
            "{}: replayed graph differs from live graph",
            spec.name
        );
    }
    assert!(drift.is_empty(), "{}", drift.join("\n"));
}

#[test]
fn big_rungs_replay_byte_identically() {
    // The 1k rung stands in for the uncommitted scale rungs: save the
    // capture, reload it, and require byte-identity plus a faithful
    // replay. (The 10k rung runs the same path in `corpus_bench`, which
    // CI gates separately — building it twice here would dominate the
    // test suite's wall clock.)
    let spec = corpus::by_name("clean-1k").unwrap();
    let fresh = record_scenario(&spec);
    let dir = std::env::temp_dir().join("visualinux-corpus-replay");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("clean-1k.vrec");
    fresh.save(&path).unwrap();
    let reloaded = Capture::load(&path).unwrap();
    assert_eq!(fresh.to_json(), reloaded.to_json());

    let (builder, _) = Session::from_scenario(&spec);
    let live = builder.attach().unwrap();
    let (live_graph, _) = live.extract(scoped_probe()).unwrap();
    assert_eq!(replay_probe(reloaded).unwrap(), live_graph.to_json());
    std::fs::remove_file(&path).ok();
}

#[test]
fn replayed_sessions_inherit_the_scenario_identity() {
    let spec = corpus::by_name("dangling-rb").unwrap();
    let capture = record_scenario(&spec);
    let replayed = Session::replay(capture).attach().unwrap();
    assert_eq!(
        replayed.scenario(),
        Some((spec.name.as_str(), spec.fingerprint())),
        "replay must recover the scenario stamp from the capture header"
    );
}
