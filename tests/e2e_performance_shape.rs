//! Table 4's qualitative claims as assertions (paper claim C4):
//! the latency-profile cost model must preserve the published shape.

use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::{figures, PlotSpec, Session};

fn measure(profile: LatencyProfile) -> Vec<(String, f64, f64, f64)> {
    let mut s = Session::builder(build(&WorkloadConfig::default()))
        .profile(profile)
        .attach()
        .unwrap();
    figures::all()
        .iter()
        .map(|f| {
            let pane = s.plot(PlotSpec::Source(f.viewcl)).unwrap();
            let st = s.plot_stats(pane).unwrap();
            (
                f.id.to_string(),
                st.total_ms(),
                st.ms_per_object(),
                st.ms_per_kb(),
            )
        })
        .collect()
}

#[test]
fn kgdb_is_tens_of_times_slower_per_object() {
    let q = measure(LatencyProfile::gdb_qemu());
    let k = measure(LatencyProfile::kgdb_rpi400());
    let ratios: Vec<f64> = q
        .iter()
        .zip(&k)
        .filter(|(a, _)| a.2 > 0.0)
        .map(|(a, b)| b.2 / a.2)
        .collect();
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (30.0..120.0).contains(&mean),
        "per-object KGDB/QEMU ratio {mean:.0}x out of the paper's ~50x band"
    );
}

#[test]
fn qemu_costs_land_in_the_published_bands() {
    let q = measure(LatencyProfile::gdb_qemu());
    for (id, total, per_obj, _) in &q {
        assert!(
            (0.1..500.0).contains(total),
            "{id}: total {total:.1} ms outside the paper's 10-326 ms order"
        );
        assert!(
            (0.05..5.0).contains(per_obj),
            "{id}: {per_obj:.2} ms/object outside the paper's 0.12-1.11 band order"
        );
    }
}

#[test]
fn kgdb_per_kb_is_three_orders_above_qemu_per_kb() {
    let q = measure(LatencyProfile::gdb_qemu());
    let k = measure(LatencyProfile::kgdb_rpi400());
    for ((id, _, _, qkb), (_, _, _, kkb)) in q.iter().zip(&k) {
        assert!(
            kkb / qkb > 20.0,
            "{id}: per-KB gap {:.0}x too small",
            kkb / qkb
        );
        assert!(
            (100.0..2000.0).contains(kkb),
            "{id}: KGDB {kkb:.0} ms/KB outside the paper's second-per-KB order"
        );
    }
}

#[test]
fn bigger_workload_costs_more() {
    let small = {
        let mut s = Session::builder(build(&WorkloadConfig {
            processes: 2,
            ..Default::default()
        }))
        .profile(LatencyProfile::gdb_qemu())
        .attach()
        .unwrap();
        let pane = s.plot(PlotSpec::Figure("fig3-4")).unwrap();
        s.plot_stats(pane).unwrap().total_ms()
    };
    let big = {
        let mut s = Session::builder(build(&WorkloadConfig {
            processes: 20,
            ..Default::default()
        }))
        .profile(LatencyProfile::gdb_qemu())
        .attach()
        .unwrap();
        let pane = s.plot(PlotSpec::Figure("fig3-4")).unwrap();
        s.plot_stats(pane).unwrap().total_ms()
    };
    assert!(
        big > small * 3.0,
        "cost must scale with state size: {small} vs {big}"
    );
}

#[test]
fn warm_cache_cuts_kgdb_task_list_cost_5x() {
    // The PR's acceptance floor: a warm-cache re-extraction of the task
    // list (fig3-4) on the slow transport must use >=5x less virtual
    // time and >=3x fewer wire packets than the uncached baseline —
    // while producing byte-identical graph JSON.
    let fig = figures::by_id("fig3-4").unwrap();
    let uncached = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .attach()
        .unwrap();
    let (g_base, base) = uncached.extract(fig.viewcl).unwrap();
    let cached = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .cache(vbridge::CacheConfig::default())
        .attach()
        .unwrap();
    let (g_cold, _) = cached.extract(fig.viewcl).unwrap();
    let (g_warm, warm) = cached.extract(fig.viewcl).unwrap();
    assert_eq!(g_base.to_json(), g_cold.to_json());
    assert_eq!(g_base.to_json(), g_warm.to_json());
    assert!(
        warm.target.virtual_ns * 5 <= base.target.virtual_ns,
        "warm {} ns vs uncached {} ns: less than 5x",
        warm.target.virtual_ns,
        base.target.virtual_ns
    );
    assert!(
        warm.target.reads * 3 <= base.target.reads,
        "warm {} packets vs uncached {}: less than 3x",
        warm.target.reads,
        base.target.reads
    );
}

#[test]
fn extraction_cost_is_deterministic() {
    let a = measure(LatencyProfile::kgdb_rpi400());
    let b = measure(LatencyProfile::kgdb_rpi400());
    assert_eq!(a, b, "virtual time must be exactly reproducible");
}
