//! Table 4's qualitative claims as assertions (paper claim C4):
//! the latency-profile cost model must preserve the published shape.

use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::{figures, PlotSpec, Session};

fn measure(profile: LatencyProfile) -> Vec<(String, f64, f64, f64)> {
    let mut s = Session::builder(build(&WorkloadConfig::default()))
        .profile(profile)
        .attach()
        .unwrap();
    figures::all()
        .iter()
        .map(|f| {
            let pane = s.plot(PlotSpec::Source(f.viewcl)).unwrap();
            let st = s.plot_stats(pane).unwrap();
            (
                f.id.to_string(),
                st.total_ms(),
                st.ms_per_object(),
                st.ms_per_kb(),
            )
        })
        .collect()
}

#[test]
fn kgdb_is_tens_of_times_slower_per_object() {
    let q = measure(LatencyProfile::gdb_qemu());
    let k = measure(LatencyProfile::kgdb_rpi400());
    let ratios: Vec<f64> = q
        .iter()
        .zip(&k)
        .filter(|(a, _)| a.2 > 0.0)
        .map(|(a, b)| b.2 / a.2)
        .collect();
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (30.0..120.0).contains(&mean),
        "per-object KGDB/QEMU ratio {mean:.0}x out of the paper's ~50x band"
    );
}

#[test]
fn qemu_costs_land_in_the_published_bands() {
    let q = measure(LatencyProfile::gdb_qemu());
    for (id, total, per_obj, _) in &q {
        assert!(
            (0.1..500.0).contains(total),
            "{id}: total {total:.1} ms outside the paper's 10-326 ms order"
        );
        assert!(
            (0.05..5.0).contains(per_obj),
            "{id}: {per_obj:.2} ms/object outside the paper's 0.12-1.11 band order"
        );
    }
}

#[test]
fn kgdb_per_kb_is_three_orders_above_qemu_per_kb() {
    let q = measure(LatencyProfile::gdb_qemu());
    let k = measure(LatencyProfile::kgdb_rpi400());
    for ((id, _, _, qkb), (_, _, _, kkb)) in q.iter().zip(&k) {
        assert!(
            kkb / qkb > 20.0,
            "{id}: per-KB gap {:.0}x too small",
            kkb / qkb
        );
        assert!(
            (100.0..2000.0).contains(kkb),
            "{id}: KGDB {kkb:.0} ms/KB outside the paper's second-per-KB order"
        );
    }
}

#[test]
fn bigger_workload_costs_more() {
    let small = {
        let mut s = Session::builder(build(&WorkloadConfig {
            processes: 2,
            ..Default::default()
        }))
        .profile(LatencyProfile::gdb_qemu())
        .attach()
        .unwrap();
        let pane = s.plot(PlotSpec::Figure("fig3-4")).unwrap();
        s.plot_stats(pane).unwrap().total_ms()
    };
    let big = {
        let mut s = Session::builder(build(&WorkloadConfig {
            processes: 20,
            ..Default::default()
        }))
        .profile(LatencyProfile::gdb_qemu())
        .attach()
        .unwrap();
        let pane = s.plot(PlotSpec::Figure("fig3-4")).unwrap();
        s.plot_stats(pane).unwrap().total_ms()
    };
    assert!(
        big > small * 3.0,
        "cost must scale with state size: {small} vs {big}"
    );
}

#[test]
fn warm_cache_cuts_kgdb_task_list_cost_5x() {
    // The PR's acceptance floor: a warm-cache re-extraction of the task
    // list (fig3-4) on the slow transport must use >=5x less virtual
    // time and >=3x fewer wire packets than the uncached baseline —
    // while producing byte-identical graph JSON.
    let fig = figures::by_id("fig3-4").unwrap();
    let uncached = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .attach()
        .unwrap();
    let (g_base, base) = uncached.extract(fig.viewcl).unwrap();
    let cached = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .cache(vbridge::CacheConfig::default())
        .attach()
        .unwrap();
    let (g_cold, _) = cached.extract(fig.viewcl).unwrap();
    let (g_warm, warm) = cached.extract(fig.viewcl).unwrap();
    assert_eq!(g_base.to_json(), g_cold.to_json());
    assert_eq!(g_base.to_json(), g_warm.to_json());
    assert!(
        warm.target.virtual_ns * 5 <= base.target.virtual_ns,
        "warm {} ns vs uncached {} ns: less than 5x",
        warm.target.virtual_ns,
        base.target.virtual_ns
    );
    assert!(
        warm.target.reads * 3 <= base.target.reads,
        "warm {} packets vs uncached {}: less than 3x",
        warm.target.reads,
        base.target.reads
    );
}

#[test]
fn extraction_cost_is_deterministic() {
    let a = measure(LatencyProfile::kgdb_rpi400());
    let b = measure(LatencyProfile::kgdb_rpi400());
    assert_eq!(a, b, "virtual time must be exactly reproducible");
}

/// The deliberately population-linear control probe for the scale rungs:
/// plot every task on the system (mirrors `kgen::FULL_PROBE`; inlined
/// because `kgen` depends on this crate).
const FULL_PROBE: &str = r#"
define T as Box<task_struct> [
    Text pid
    Text<string> comm
]
all = Box AllTasks [
    Container tasks: List(${&init_task.tasks}).forEach |node| {
        yield T<task_struct.tasks>(@node)
    }
]
plot @all
"#;

#[test]
fn scoped_extraction_is_sublinear_across_the_corpus_scale_rungs() {
    // The corpus scale gate: across the clean-100 → clean-1k → clean-10k
    // rungs (101 → 1007 → 10007 tasks, a 99x population growth) the
    // scoped probe — one process's address space, the paper's Figure 9-2
    // — must keep its wire-packet and walked-object counts essentially
    // flat, while the full task-list plot on the *same images* grows
    // linearly. The linear control is what makes the flat line evidence
    // of scoping rather than of a broken meter.
    let fig = figures::by_id("fig9-2").unwrap();
    let mut rungs = Vec::new();
    for name in ["clean-100", "clean-1k", "clean-10k"] {
        let spec = ksim::corpus::by_name(name).unwrap();
        let tasks = spec.tasks();
        let (builder, _) = Session::from_scenario(&spec);
        let mut s = builder.attach().unwrap();
        let scoped = s.plot(PlotSpec::Source(fig.viewcl)).unwrap();
        let sst = s.plot_stats(scoped).unwrap();
        let full = s.plot(PlotSpec::Source(FULL_PROBE)).unwrap();
        let fst = s.plot_stats(full).unwrap();
        rungs.push((
            name,
            tasks as u64,
            sst.target.reads,
            sst.graph.objects,
            fst.target.reads,
        ));
    }
    let (_, t0, s0, w0, f0) = rungs[0];
    let (_, t2, s2, w2, f2) = rungs[2];
    assert_eq!((t0, t2), (101, 10007), "rungs must hit their populations");

    // Scoped probe: <= 1.5x packets and walks across a ~99x population.
    assert!(
        s2 as f64 <= s0 as f64 * 1.5,
        "scoped packets must stay flat: {s0} at 101 tasks vs {s2} at 10007"
    );
    assert!(
        w2 as f64 <= w0 as f64 * 1.5,
        "scoped walks must stay flat: {w0} at 101 tasks vs {w2} at 10007"
    );
    // Full task-list control: >= 50x packets over the same growth.
    assert!(
        f2 as f64 >= f0 as f64 * 50.0,
        "full-pane packets must grow with the population: {f0} vs {f2}"
    );
    // And the middle rung sits between the endpoints for the control.
    let (_, _, s1, _, f1) = rungs[1];
    assert!(f0 < f1 && f1 < f2, "control must grow monotonically");
    assert!(
        s1 as f64 <= s0 as f64 * 1.5,
        "scoped packets must stay flat at the 1k rung too: {s0} vs {s1}"
    );
}
