//! StackRot (CVE-2023-3269) end to end: the §3.2 debugging session.

use vbridge::LatencyProfile;
use visualinux::casestudies;

#[test]
fn stackrot_full_investigation() {
    let r = casestudies::stackrot(LatencyProfile::gdb_qemu()).unwrap();

    // The paper's two pieces of evidence, both visible in one plot:
    // the node is simultaneously (1) reachable from mm_mt and (2) queued
    // for freeing on the RCU callback list with mt_free_rcu.
    assert!(r.node_in_tree);
    assert!(r.node_on_rcu_list);

    // The §3.2 natural-language pin collapsed everything else.
    assert_eq!(r.visible_vmas, 1);
    assert!(r.pin_viewql.contains("collapsed: true"));

    // The plot is renderable and contains both data structures.
    let text = r.session.render_text(r.pane).unwrap();
    assert!(text.contains("MapleNode") || text.contains("maple_node"));
    assert!(
        text.contains("mt_free_rcu"),
        "the destructor is named in the plot"
    );

    // Cost was metered (this ran under the QEMU profile).
    let stats = r.session.plot_stats(r.pane).unwrap();
    assert!(stats.total_ms() > 0.0);
}

#[test]
fn stackrot_rcu_lists_differ_across_cpus() {
    let r = casestudies::stackrot(LatencyProfile::free()).unwrap();
    let g = r.session.graph(r.pane).unwrap();
    // CPU 0 carries the deferred free; CPU 1's list exists but shorter.
    let rcu_datas: Vec<_> = g.boxes().iter().filter(|b| b.label == "RcuData").collect();
    assert_eq!(rcu_datas.len(), 2);
    let heads: Vec<i64> = rcu_datas
        .iter()
        .map(|b| b.member_raw("len", g).unwrap_or(0))
        .collect();
    assert!(
        heads[0] > heads[1],
        "cpu0 has the extra callback: {heads:?}"
    );
}

/// After the grace period expires, the plot *shows* the corruption: the
/// tree dangles into slab poison — the visual manifestation of the UAF
/// that textual debuggers make so hard to spot.
#[test]
fn stackrot_after_grace_period_plots_the_poison() {
    use ksim::scenarios;
    use ksim::workload::{build, WorkloadConfig};
    use visualinux::{figures, PlotSpec, Session};

    let mut w = build(&WorkloadConfig::default());
    let sr = scenarios::inject_stackrot(&mut w);
    scenarios::expire_rcu_grace_period(&mut w, &sr);
    let mut session = Session::builder(w)
        .profile(LatencyProfile::free())
        .attach()
        .unwrap();

    // The plot still completes (a debugger must not crash on corrupt
    // state); the poisoned node shows garbage where structure used to be.
    let fig = figures::by_id("fig9-2").unwrap();
    let pane = session
        .plot(PlotSpec::Source(fig.viewcl))
        .expect("plot survives the corrupt tree");
    let g = session.graph(pane).unwrap();

    // The victim node's box exists (linked from its parent) but its slot
    // entries decode as poison-pattern pointers, visibly bogus.
    let victim = g
        .boxes()
        .iter()
        .find(|b| b.label == "MapleNode" && ksim::maple::mte_to_node(b.addr) == sr.victim_node)
        .expect("the dangling node is still plotted");
    let ntype = victim
        .views
        .iter()
        .flat_map(|v| &v.items)
        .find_map(|i| match i {
            vgraph::Item::Text { name, value, .. } if name == "ntype" => Some(value.clone()),
            _ => None,
        })
        .unwrap();
    // The tag bits come from the (dangling) parent slot, so the displayed
    // type is still plausible — but the *pivot cells* read 0x6b... poison.
    let _ = ntype;
    let poisoned_cells = g
        .boxes()
        .iter()
        .filter(|b| b.label == "Pivot")
        .filter(|b| {
            b.views.iter().flat_map(|v| &v.items).any(|i| match i {
                vgraph::Item::Text { value, .. } => value.contains("0x6b6b6b6b6b6b6b6b"),
                _ => false,
            })
        })
        .count();
    assert!(
        poisoned_cells > 0,
        "pivot cells must display the 0x6b6b… poison value"
    );
}
