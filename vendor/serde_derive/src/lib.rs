//! Offline stand-in for `serde_derive`, written against the bare
//! `proc_macro` API (the container has no syn/quote either).
//!
//! Generates impls of the *stub* serde's value-based `Serialize` /
//! `Deserialize` traits. Supported shapes are exactly what this workspace
//! uses: named-field structs, newtype/tuple structs, and enums with unit,
//! newtype, tuple, and struct variants. Supported attributes:
//! `#[serde(skip)]` and `#[serde(default)]` on fields, and
//! `#[serde(tag = "...")]` plus `#[serde(rename_all = "snake_case")]`
//! on enums.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug, Clone)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug, Default)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all_snake: bool,
}

struct Input {
    name: String,
    kind: Kind,
    attrs: ContainerAttrs,
}

/// Derive the stub `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the stub `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------ parse --

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = ContainerAttrs::default();
    let mut i = 0;
    // Container attributes and visibility precede `struct` / `enum`.
    let mut is_enum = false;
    loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_container_attr(&g.stream(), &mut attrs);
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    // No generics in this workspace's derived types; body is the next group.
    let kind = if is_enum {
        let body = expect_group(&tokens[i..], Delimiter::Brace);
        Kind::Enum(parse_variants(&body))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_fields(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_elems(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => Kind::UnitStruct,
        }
    };
    Input { name, kind, attrs }
}

fn expect_group(tokens: &[TokenTree], delim: Delimiter) -> Vec<TokenTree> {
    for t in tokens {
        if let TokenTree::Group(g) = t {
            if g.delimiter() == delim {
                return g.stream().into_iter().collect();
            }
        }
    }
    panic!("expected a {delim:?} group");
}

fn parse_container_attr(stream: &TokenStream, attrs: &mut ContainerAttrs) {
    // Looks for serde(...) among the attribute tokens.
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.len() < 2 {
        return;
    }
    if let (TokenTree::Ident(id), TokenTree::Group(g)) = (&tokens[0], &tokens[1]) {
        if id.to_string() != "serde" {
            return;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        let mut j = 0;
        while j < inner.len() {
            if let TokenTree::Ident(key) = &inner[j] {
                match key.to_string().as_str() {
                    "tag" => {
                        if let Some(TokenTree::Literal(l)) = inner.get(j + 2) {
                            attrs.tag = Some(unquote(&l.to_string()));
                        }
                    }
                    "rename_all" => {
                        if let Some(TokenTree::Literal(l)) = inner.get(j + 2) {
                            if unquote(&l.to_string()) == "snake_case" {
                                attrs.rename_all_snake = true;
                            }
                        }
                    }
                    _ => {}
                }
            }
            j += 1;
        }
    }
}

/// Whether an attribute token stream is `serde(...)` containing the
/// given bare word (e.g. `skip`, `default`).
fn attr_has_word(stream: &TokenStream, word: &str) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.len() < 2 {
        return false;
    }
    if let (TokenTree::Ident(id), TokenTree::Group(g)) = (&tokens[0], &tokens[1]) {
        if id.to_string() == "serde" {
            return g.stream().into_iter().any(|t| match t {
                TokenTree::Ident(i) => i.to_string() == word,
                _ => false,
            });
        }
    }
    false
}

fn parse_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Collect field attributes.
        let mut skip = false;
        let mut default = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        skip |= attr_has_word(&g.stream(), "skip");
                        default |= attr_has_word(&g.stream(), "default");
                    }
                    i += 2;
                }
                _ => break,
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        i += 1;
        // Skip `:` then the type, up to a comma at angle-bracket depth 0.
        i += 1;
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn count_tuple_elems(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    commas + usize::from(!trailing_comma)
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_fields(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_elems(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => VariantShape::Unit,
        };
        // Skip `= discr`? (not used) and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------- codegen --

fn wire_variant_name(v: &Variant, attrs: &ContainerAttrs) -> String {
    if attrs.rename_all_snake {
        snake_case(&v.name)
    } else {
        v.name.clone()
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "m.insert(\"{0}\".to_string(), ::serde::Serialize::serialize_value(&self.{0}));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Kind::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = wire_variant_name(v, &input.attrs);
                match (&v.shape, &input.attrs.tag) {
                    (VariantShape::Unit, None) => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{wire}\".to_string()),\n",
                        v = v.name
                    )),
                    (VariantShape::Unit, Some(tag)) => arms.push_str(&format!(
                        "{name}::{v} => {{ let mut m = ::serde::Map::new(); \
                         m.insert(\"{tag}\".to_string(), ::serde::Value::String(\"{wire}\".to_string())); \
                         ::serde::Value::Object(m) }}\n",
                        v = v.name
                    )),
                    (VariantShape::Tuple(n), tag) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize_value(x0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        if tag.is_some() {
                            panic!("#[serde(tag)] with tuple variants is unsupported");
                        }
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{ let mut m = ::serde::Map::new(); \
                             m.insert(\"{wire}\".to_string(), {inner}); ::serde::Value::Object(m) }}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                    (VariantShape::Named(fields), tag) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("let mut f = ::serde::Map::new();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "f.insert(\"{0}\".to_string(), ::serde::Serialize::serialize_value({0}));\n",
                                f.name
                            ));
                        }
                        let wrap = match tag {
                            Some(tag) => format!(
                                "{{ let mut m = ::serde::Map::new(); \
                                 m.insert(\"{tag}\".to_string(), ::serde::Value::String(\"{wire}\".to_string())); \
                                 for (k, v) in f.iter() {{ m.insert(k.clone(), v.clone()); }} \
                                 ::serde::Value::Object(m) }}"
                            ),
                            None => format!(
                                "{{ let mut m = ::serde::Map::new(); \
                                 m.insert(\"{wire}\".to_string(), ::serde::Value::Object(f)); \
                                 ::serde::Value::Object(m) }}"
                            ),
                        };
                        arms.push_str(&format!(
                            "#[allow(unused_variables)] {name}::{v} {{ {binds} }} => {{ {inner} {wrap} }}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut s = format!(
                "let o = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"{name}: expected object, got {{v:?}}\")))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                if f.skip {
                    s.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.default {
                    s.push_str(&format!(
                        "{0}: match o.get(\"{0}\") {{\n\
                         Some(v) => ::serde::Deserialize::deserialize_value(v)\
                         .map_err(|e| e.in_field(\"{0}\"))?,\n\
                         None => ::core::default::Default::default(),\n}},\n",
                        f.name
                    ));
                } else {
                    s.push_str(&format!(
                        "{0}: ::serde::Deserialize::deserialize_value(\
                         o.get(\"{0}\").unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| e.in_field(\"{0}\"))?,\n",
                        f.name
                    ));
                }
            }
            s.push_str("})");
            s
        }
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(v)?))")
        }
        Kind::TupleStruct(n) => {
            let mut s = format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::custom(\
                 \"{name}: expected array\"))?;\nOk({name}("
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::Deserialize::deserialize_value(\
                     a.get({i}).unwrap_or(&::serde::Value::Null))?,"
                ));
            }
            s.push_str("))");
            s
        }
        Kind::UnitStruct => format!("Ok({name})"),
        Kind::Enum(variants) => match &input.attrs.tag {
            Some(tag) => gen_deserialize_tagged_enum(name, variants, tag, &input.attrs),
            None => gen_deserialize_external_enum(name, variants, &input.attrs),
        },
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn gen_named_variant_ctor(name: &str, v: &Variant, fields: &[Field], src: &str) -> String {
    let mut s = format!("Ok({name}::{} {{\n", v.name);
    for f in fields {
        if f.skip {
            s.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
        } else if f.default {
            s.push_str(&format!(
                "{0}: match {src}.get(\"{0}\") {{\n\
                 Some(v) => ::serde::Deserialize::deserialize_value(v)\
                 .map_err(|e| e.in_field(\"{0}\"))?,\n\
                 None => ::core::default::Default::default(),\n}},\n",
                f.name
            ));
        } else {
            s.push_str(&format!(
                "{0}: ::serde::Deserialize::deserialize_value(\
                 {src}.get(\"{0}\").unwrap_or(&::serde::Value::Null))\
                 .map_err(|e| e.in_field(\"{0}\"))?,\n",
                f.name
            ));
        }
    }
    s.push_str("})");
    s
}

fn gen_deserialize_external_enum(
    name: &str,
    variants: &[Variant],
    attrs: &ContainerAttrs,
) -> String {
    let mut unit_arms = String::new();
    let mut keyed_arms = String::new();
    for v in variants {
        let wire = wire_variant_name(v, attrs);
        match &v.shape {
            VariantShape::Unit => {
                unit_arms.push_str(&format!("\"{wire}\" => return Ok({name}::{}),\n", v.name));
            }
            VariantShape::Tuple(1) => keyed_arms.push_str(&format!(
                "\"{wire}\" => return Ok({name}::{}(\
                 ::serde::Deserialize::deserialize_value(inner)?)),\n",
                v.name
            )),
            VariantShape::Tuple(n) => {
                let mut elems = String::new();
                for i in 0..*n {
                    elems.push_str(&format!(
                        "::serde::Deserialize::deserialize_value(\
                         a.get({i}).unwrap_or(&::serde::Value::Null))?,"
                    ));
                }
                keyed_arms.push_str(&format!(
                    "\"{wire}\" => {{ let a = inner.as_array().ok_or_else(|| \
                     ::serde::Error::custom(\"expected array\"))?; \
                     return Ok({name}::{}({elems})); }}\n",
                    v.name
                ));
            }
            VariantShape::Named(fields) => {
                let ctor = gen_named_variant_ctor(name, v, fields, "fo");
                keyed_arms.push_str(&format!(
                    "\"{wire}\" => {{ let fo = inner.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"expected object\"))?; return {ctor}; }}\n"
                ));
            }
        }
    }
    format!(
        "if let ::serde::Value::String(s) = v {{\n\
             match s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
         }}\n\
         if let Some(o) = v.as_object() {{\n\
             if let Some((k, inner)) = o.first() {{\n\
                 match k.as_str() {{\n{keyed_arms}_ => {{}}\n}}\n\
             }}\n\
         }}\n\
         Err(::serde::Error::custom(format!(\"{name}: unrecognized variant in {{v:?}}\")))"
    )
}

fn gen_deserialize_tagged_enum(
    name: &str,
    variants: &[Variant],
    tag: &str,
    attrs: &ContainerAttrs,
) -> String {
    let mut arms = String::new();
    for v in variants {
        let wire = wire_variant_name(v, attrs);
        match &v.shape {
            VariantShape::Unit => {
                arms.push_str(&format!("\"{wire}\" => Ok({name}::{}),\n", v.name));
            }
            VariantShape::Named(fields) => {
                let ctor = gen_named_variant_ctor(name, v, fields, "o");
                arms.push_str(&format!("\"{wire}\" => {ctor},\n"));
            }
            VariantShape::Tuple(_) => {
                panic!("#[serde(tag)] with tuple variants is unsupported")
            }
        }
    }
    format!(
        "let o = v.as_object().ok_or_else(|| ::serde::Error::custom(\
         format!(\"{name}: expected object, got {{v:?}}\")))?;\n\
         let tag = o.get(\"{tag}\").and_then(|t| t.as_str()).ok_or_else(|| \
         ::serde::Error::custom(\"{name}: missing tag `{tag}`\"))?;\n\
         match tag {{\n{arms}\
         other => Err(::serde::Error::custom(format!(\"{name}: unknown variant `{{other}}`\"))),\n\
         }}"
    )
}
