//! The `Strategy` trait and combinators (generation-only, no shrinking).

use std::marker::PhantomData;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a clonable, reference-counted strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Build recursive values: `self` is the leaf strategy and `recurse`
    /// wraps an inner strategy one level deeper. The stub nests exactly
    /// `depth` levels (the real crate mixes depths probabilistically; the
    /// extra knobs are accepted for signature compatibility and ignored).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat.clone()).boxed();
        }
        strat
    }
}

/// A clonable type-erased strategy (the real crate's `BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_map` adaptor.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($T:ident . $idx:tt),+))*) => {$(
        impl<$($T: Strategy),+> Strategy for ($($T,)+) {
            type Value = ($($T::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
