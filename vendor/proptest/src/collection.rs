//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A `Vec` of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

fn draw_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(size.start < size.end, "collection size range is empty");
    size.start + rng.index(size.end - size.start)
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = draw_len(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` of `element` values; up to `size` insertions are attempted,
/// so duplicates can make the set smaller (matching real proptest's
/// tolerance of under-filled sets).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = draw_len(&self.size, rng);
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(self.element.generate(rng));
        }
        out
    }
}
