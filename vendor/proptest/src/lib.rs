//! Minimal offline stand-in for `proptest`.
//!
//! Same shape as the real crate — `proptest!` test blocks, `Strategy`
//! combinators, `prop_assert*` macros — but generation-only: inputs are
//! drawn from a deterministic per-test RNG and failures are reported
//! without shrinking. Deterministic seeds make failures reproducible,
//! which is what this workspace's property tests rely on.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declare property tests. Supports `name in strategy` and plain
/// `name: Type` (≙ `name in any::<Type>()`) parameters, mixed freely,
/// plus an optional leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) #[test] fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            $crate::__proptest_run!(($cfg) [] [$($params)*] $body);
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    // Normalize `name in strategy`.
    (($cfg:expr) [$($acc:tt)*] [$n:ident in $s:expr, $($rest:tt)*] $body:block) => {
        $crate::__proptest_run!(($cfg) [$($acc)* ($n, $s)] [$($rest)*] $body)
    };
    (($cfg:expr) [$($acc:tt)*] [$n:ident in $s:expr] $body:block) => {
        $crate::__proptest_run!(($cfg) [$($acc)* ($n, $s)] [] $body)
    };
    // Normalize `name: Type` into `name in any::<Type>()`.
    (($cfg:expr) [$($acc:tt)*] [$n:ident : $t:ty, $($rest:tt)*] $body:block) => {
        $crate::__proptest_run!(($cfg) [$($acc)* ($n, $crate::strategy::any::<$t>())] [$($rest)*] $body)
    };
    (($cfg:expr) [$($acc:tt)*] [$n:ident : $t:ty] $body:block) => {
        $crate::__proptest_run!(($cfg) [$($acc)* ($n, $crate::strategy::any::<$t>())] [] $body)
    };
    // All params normalized: run the cases.
    (($cfg:expr) [$(($n:ident, $s:expr))*] [] $body:block) => {{
        let __config: $crate::test_runner::ProptestConfig = $cfg;
        let mut __rng =
            $crate::test_runner::TestRng::from_seed_str(concat!(module_path!(), ":", line!()));
        let mut __ran: u32 = 0;
        let mut __attempts: u32 = 0;
        while __ran < __config.cases && __attempts < __config.cases.saturating_mul(16) {
            __attempts += 1;
            $(let $n = $crate::strategy::Strategy::generate(&($s), &mut __rng);)*
            let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
            match __result {
                ::std::result::Result::Ok(()) => __ran += 1,
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                    panic!("proptest case {} failed: {}", __ran, __msg);
                }
            }
        }
    }};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?} == {:?}`: {}",
                    __a,
                    __b,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __a, __b
            )));
        }
    }};
}

/// Discard the current case (re-drawn, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn mixed_params(v: u64, size in 1usize..=8, flag: bool) {
            prop_assert!(size >= 1 && size <= 8);
            let _ = (v, flag);
        }

        #[test]
        fn vec_sizes(data in crate::collection::vec(any::<u8>(), 1..64)) {
            prop_assert!(!data.is_empty() && data.len() < 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn assume_discards(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn oneof_and_recursive_cover_arms() {
        #[derive(Debug, Clone, PartialEq)]
        enum E {
            Leaf(i64),
            Add(Box<E>, Box<E>),
            Neg(Box<E>),
        }
        fn depth(e: &E) -> u32 {
            match e {
                E::Leaf(_) => 0,
                E::Add(a, b) => 1 + depth(a).max(depth(b)),
                E::Neg(a) => 1 + depth(a),
            }
        }
        let leaf = any::<i32>().prop_map(|n| E::Leaf(n as i64));
        let strat = leaf.prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
                inner.prop_map(|a| E::Neg(Box::new(a))),
            ]
        });
        let mut rng = TestRng::from_seed_str("cover");
        let mut saw_add = false;
        let mut saw_neg = false;
        for _ in 0..64 {
            let e = strat.generate(&mut rng);
            assert_eq!(depth(&e), 4);
            match e {
                E::Add(..) => saw_add = true,
                E::Neg(..) => saw_neg = true,
                E::Leaf(_) => unreachable!("depth-4 tree has no leaf root"),
            }
        }
        assert!(saw_add && saw_neg);
    }
}
