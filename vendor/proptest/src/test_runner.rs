//! Deterministic RNG, per-run config, and case-level error signalling.

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case is discarded, not counted.
    Reject(String),
    /// An assertion failed: the whole test fails.
    Fail(String),
}

/// Runner configuration (only the `cases` knob is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 32 keeps the suite quick while
        // still exercising each property broadly (tests that want more
        // pass `with_cases` explicitly).
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic splitmix64 generator seeded from the test's location, so
/// every run draws the same inputs and failures reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a hash).
    pub fn from_seed_str(s: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)`. Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty domain");
        (self.next_u64() % n as u64) as usize
    }
}
