//! Minimal offline stand-in for `serde_json`.
//!
//! Works against the vendored `serde` stub's [`Value`] data model: `to_string`
//! lowers a `Serialize` type to a `Value` and renders compact JSON text;
//! `from_str` parses JSON text into a `Value` and rebuilds via `Deserialize`.
//! Object keys keep insertion order (structs serialize fields in declaration
//! order), so output is deterministic.

pub use serde::{Map, Number, Value};

/// JSON error (parse or data-model mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&value.serialize_value(), 0, &mut out);
    Ok(out)
}

/// Lower any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Rebuild a `Deserialize` type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    Ok(T::deserialize_value(&value)?)
}

/// Parse JSON text into a `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize_value(&v)?)
}

/// Build a [`Value`] from any serializable expression (scalar subset of the
/// real `json!` macro — this workspace never uses object/array literals).
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($e:expr) => {
        $crate::__private_serialize(&$e)
    };
}

#[doc(hidden)]
pub fn __private_serialize<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.serialize_value()
}

// ---------------------------------------------------------------- render --

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

// ----------------------------------------------------------------- parse --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    m.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_lit("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            out.push(c);
                            // parse_hex4 leaves pos just past the digits;
                            // compensate for the +1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for src in ["null", "true", "false", "42", "-7", "3.5", "\"hi\\n\""] {
            let v: Value = from_str(src).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{src}");
        }
    }

    #[test]
    fn object_preserves_order() {
        let v: Value = from_str(r#"{"z":1,"a":[1,2,{"k":"v"}]}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"z":1,"a":[1,2,{"k":"v"}]}"#);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "A\u{1f600}");
    }
}
