//! Minimal offline stand-in for `rand` 0.8.
//!
//! Provides exactly what the workspace uses: a deterministic, seedable
//! `StdRng` plus `Rng::gen_range` over integer ranges. The generator is
//! splitmix64 — statistically fine for workload synthesis, NOT a
//! reproduction of the real `StdRng` stream (seeded workloads are stable
//! across runs of this workspace, which is all the simulator needs).

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A random bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw a value from the rng.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Uniform sample from the range. Panics when empty.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
        }
    }
}
