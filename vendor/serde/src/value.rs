//! The self-describing JSON value tree shared by the `serde` and
//! `serde_json` stand-ins (re-exported by `serde_json` as its `Value`).

/// An arbitrary-precision-ish JSON number: signed, unsigned, or float.
#[derive(Debug, Clone, Copy)]
pub struct Number(N);

#[derive(Debug, Clone, Copy)]
enum N {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    /// Wrap an unsigned integer.
    pub fn from_u64(n: u64) -> Number {
        Number(N::U(n))
    }

    /// Wrap a signed integer (non-negative values normalize to unsigned).
    pub fn from_i64(n: i64) -> Number {
        if n >= 0 {
            Number(N::U(n as u64))
        } else {
            Number(N::I(n))
        }
    }

    /// Wrap a float.
    pub fn from_f64(n: f64) -> Number {
        Number(N::F(n))
    }

    /// The value as `i64`, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::I(n) => Some(n),
            N::U(n) => i64::try_from(n).ok(),
            N::F(_) => None,
        }
    }

    /// The value as `u64`, if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::I(n) => u64::try_from(n).ok(),
            N::U(n) => Some(n),
            N::F(_) => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::I(n) => Some(n as f64),
            N::U(n) => Some(n as f64),
            N::F(n) => Some(n),
        }
    }

    /// Whether the number is an integer (not a float).
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// Whether the number is a non-negative integer.
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.0, other.0) {
            (N::F(a), N::F(b)) => a == b,
            (N::F(_), _) | (_, N::F(_)) => false,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                (None, None) => self.as_i64() == other.as_i64(),
                _ => false,
            },
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            N::I(n) => write!(f, "{n}"),
            N::U(n) => write!(f, "{n}"),
            N::F(n) => {
                if n == n.trunc() && n.is_finite() && n.abs() < 1e15 {
                    write!(f, "{n:.1}")
                } else {
                    write!(f, "{n}")
                }
            }
        }
    }
}

macro_rules! number_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(n: $t) -> Number {
                #[allow(unused_comparisons)]
                if (n as i128) >= 0 {
                    Number::from_u64(n as u64)
                } else {
                    Number::from_i64(n as i64)
                }
            }
        }
    )*};
}

number_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// An order-preserving string-keyed object (what real `serde_json` calls
/// `Map<String, Value>`; insertion order is kept so struct serialization
/// emits fields in declaration order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Create an empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert, replacing in place if the key exists.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// The first entry (used for externally tagged enums).
    pub fn first(&self) -> Option<(&String, &Value)> {
        self.entries.first().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// String payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Bool payload, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Numeric payload as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Array payload, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object payload, if an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member access (`None` when not an object or missing).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}
