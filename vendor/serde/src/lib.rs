//! Minimal offline stand-in for `serde`.
//!
//! The build container has no route to crates.io, so the workspace vendors
//! an API-compatible subset of the serde ecosystem (see `vendor/README.md`).
//! Instead of serde's visitor-based architecture, this stub uses a
//! self-describing [`Value`] data model: `Serialize` lowers a value into a
//! [`Value`] tree and `Deserialize` rebuilds one from it. `serde_json` (the
//! sibling stub) renders and parses that tree. Only the surface this
//! workspace exercises is provided.

pub mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error (a message, like `serde::de::Error::custom`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Prefix the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        Error(format!("{field}: {}", self.0))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias for deserialization.
pub type Result<T> = std::result::Result<T, Error>;

/// Lower `self` into the [`Value`] data model.
pub trait Serialize {
    /// Produce the value tree for `self`.
    fn serialize_value(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse the value tree into `Self`.
    fn deserialize_value(v: &Value) -> Result<Self>;
}

// ------------------------------------------------------------ primitives --

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        "expected unsigned integer, got {v:?}"
                    )))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        "expected integer, got {v:?}"
                    )))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_ser_de_uint!(u8, u16, u32, u64, usize);
impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self> {
        Ok(f64::deserialize_value(v)? as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self> {
        let s = String::deserialize_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ------------------------------------------------------------- composite --

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self> {
        Ok(Box::new(T::deserialize_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(Error::custom(format!("expected array, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

/// Render a serialized key as a JSON object key (strings and numbers only,
/// mirroring `serde_json`'s map-key restriction).
fn key_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string or number, got {other:?}"),
    }
}

/// Rebuild a key of type `K` from a JSON object key.
fn key_from_str<K: Deserialize>(k: &str) -> Result<K> {
    match K::deserialize_value(&Value::String(k.to_string())) {
        Ok(key) => Ok(key),
        Err(first) => {
            if let Ok(u) = k.parse::<u64>() {
                if let Ok(key) = K::deserialize_value(&Value::Number(Number::from_u64(u))) {
                    return Ok(key);
                }
            }
            if let Ok(i) = k.parse::<i64>() {
                if let Ok(key) = K::deserialize_value(&Value::Number(Number::from_i64(i))) {
                    return Ok(key);
                }
            }
            if let Ok(b) = k.parse::<bool>() {
                if let Ok(key) = K::deserialize_value(&Value::Bool(b)) {
                    return Ok(key);
                }
            }
            Err(first)
        }
    }
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: Serialize,
    V: Serialize,
{
    fn serialize_value(&self) -> Value {
        // Sort keys so serialization is deterministic regardless of the
        // hasher (stricter than real serde_json, never weaker).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.serialize_value()), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k, v);
        }
        Value::Object(m)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self> {
        match v {
            Value::Object(m) => {
                let mut out = Self::default();
                for (k, val) in m.iter() {
                    out.insert(key_from_str(k)?, V::deserialize_value(val)?);
                }
                Ok(out)
            }
            _ => Err(Error::custom(format!("expected object, got {v:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_string(&k.serialize_value()), v.serialize_value());
        }
        Value::Object(m)
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn deserialize_value(v: &Value) -> Result<Self> {
        match v {
            Value::Object(m) => {
                let mut out = Self::new();
                for (k, val) in m.iter() {
                    out.insert(key_from_str(k)?, V::deserialize_value(val)?);
                }
                Ok(out)
            }
            _ => Err(Error::custom(format!("expected object, got {v:?}"))),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self> {
        Ok(v.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self> {
                match v {
                    Value::Array(items) => Ok(($(
                        $t::deserialize_value(
                            items.get($n).unwrap_or(&Value::Null),
                        )?,
                    )+)),
                    _ => Err(Error::custom("expected array for tuple")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
