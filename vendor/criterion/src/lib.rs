//! Minimal offline stand-in for `criterion`.
//!
//! Same macros and builder surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`), but measurement is a
//! plain warm-up + timed-batch mean printed to stdout — no statistics,
//! HTML reports, or baseline comparison.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export of the std
/// implementation, which the real crate's version predates).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        ns_per_iter: 0.0,
    };
    f(&mut b);
    println!("{name:<44} time: {}", fmt_ns(b.ns_per_iter));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`, recording the mean nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and a first estimate of per-call cost.
        let warmup = Instant::now();
        std::hint::black_box(f());
        let estimate = warmup.elapsed().max(Duration::from_nanos(1));

        // Size batches so a sample lasts roughly 5 ms, then take the mean
        // over `sample_size` batches (capped to keep total runtime sane).
        let per_batch = (Duration::from_millis(5).as_nanos() / estimate.as_nanos()).max(1) as u64;
        let per_batch = per_batch.min(100_000);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            iters += per_batch;
            if total > Duration::from_millis(500) {
                break;
            }
        }
        self.ns_per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
